//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro (with `#![proptest_config(..)]`),
//! range / tuple / `collection::vec` strategies, `Just`, and the
//! `prop_assert*` macros. Sampling is deterministic — the RNG is seeded
//! from the test's module path and name — so failures reproduce exactly.
//! The real crate's shrinking, persistence, and combinator zoo are
//! intentionally absent; a failing case reports its index and values via
//! the panic message instead of a minimised counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner plumbing: config, RNG, failure type.
pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property case (carried out of the test body by
    /// `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 RNG used for sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the RNG from an arbitrary string (FNV-1a hash).
        pub fn from_seed_str(s: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in s.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(h | 1)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Strategy trait and primitive implementations.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, usize);

    impl Strategy for Range<u64> {
        type Value = u64;

        fn sample(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_u64() % (self.end - self.start)
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;

        fn sample(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty range strategy");
            let span = (i64::from(self.end) - i64::from(self.start)) as u64;
            (i64::from(self.start) + (rng.next_u64() % span) as i64) as i32
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.sample(rng),)*)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy yielding vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values drawn from `element`, with length drawn from
    /// `size` (a `usize` for an exact length, or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random samples of the strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_seed_str(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case_index in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case_index + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the enclosing property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "{} ({:?} vs {:?})", format!($($fmt)*), lhs, rhs);
    }};
}

/// Fails the enclosing property case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f32..2.0, z in 1u64..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..4).contains(&z));
        }

        #[test]
        fn tuples_and_vecs_compose((a, b) in (1usize..4, 1usize..4),
                                   v in crate::collection::vec(0.0f32..1.0, 1..8)) {
            prop_assert!(a * b < 16);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::from_seed_str("seed");
        let mut r2 = crate::test_runner::TestRng::from_seed_str("seed");
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u32..10) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
