//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker — nothing serialises through serde at
//! runtime (checkpoints and datasets use the hand-rolled little-endian
//! format in `alf-data`/`alf-core`). These derives therefore accept the
//! same syntax as the real crate, including `#[serde(...)]` field
//! attributes, and expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
