//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the cursor/builder subset the workspace codecs
//! (`alf-data::encode`, `alf-core::checkpoint`) rely on: `BytesMut` as an
//! append-only builder, `Bytes` as an owned read cursor, and the `Buf` /
//! `BufMut` traits carrying the little-endian accessors. Semantics match
//! the real crate for this subset (including panics on over-reads); the
//! zero-copy `Arc`-sharing machinery of the real crate is intentionally
//! absent — blobs here are plain owned vectors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// Read side: sequential byte access over a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread portion of the buffer.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: {} bytes remaining, {} requested",
            self.remaining(),
            dst.len()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 4 bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a single byte.
    ///
    /// # Panics
    ///
    /// Panics when no bytes remain.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }
}

/// Write side: sequential byte appends.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// Immutable byte blob with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Empty blob.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte string.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Copies an arbitrary slice into an owned blob.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length (alias of [`Buf::remaining`] usable without the trait).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread portion into a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// Owned copy of a sub-range of the unread bytes.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.chunk()[range].to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(
            n <= self.remaining(),
            "advance past end: {} remaining, {n} requested",
            self.remaining()
        );
        self.pos += n;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

/// Growable byte builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u32_f32() {
        let mut b = BytesMut::new();
        b.put_slice(b"HDR");
        b.put_u32_le(0xdead_beef);
        b.put_f32_le(1.5);
        let mut r = b.freeze();
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn over_read_panics() {
        let mut r = Bytes::from_static(b"ab");
        r.get_u32_le();
    }

    #[test]
    fn deref_exposes_unread_tail() {
        let mut r = Bytes::from(vec![1u8, 2, 3, 4]);
        r.advance(1);
        assert_eq!(&r[..], &[2, 3, 4]);
    }
}
