//! Offline stand-in for `crossbeam`, backed by `std::thread::scope`.
//!
//! The workspace only uses crossbeam's scoped-thread API
//! (`crossbeam::thread::scope` + `Scope::spawn` + `ScopedJoinHandle::join`),
//! which `std` has provided natively since 1.63. This facade preserves the
//! crossbeam call shape — the spawn closure receives a `&Scope` for nested
//! spawns, `scope` returns `thread::Result` — so call sites compile
//! unchanged against either implementation.

#![warn(missing_docs)]

/// Scoped threads (crossbeam-utils API shape over `std::thread::scope`).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Borrow-friendly thread scope; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread, returning `Err` if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, exactly like crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// every spawned thread is joined before this returns.
    ///
    /// Returns `Err` when `f` itself (or an unjoined child) panics, matching
    /// crossbeam's contract of not unwinding through the caller.
    ///
    /// # Errors
    ///
    /// The `Err` payload is the panic value, as with [`std::thread::Result`].
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawn_and_join_borrowing_threads() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let r = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert!(r.unwrap());
    }
}
