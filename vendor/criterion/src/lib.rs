//! Offline stand-in for `criterion`.
//!
//! Supports the API surface the workspace benches use — `Criterion`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! time-capped measurement loop and a plain-text report instead of the
//! real crate's statistical machinery. Median-of-samples keeps the
//! numbers stable enough for the relative comparisons the benches make.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent per benchmark function.
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// Benchmark driver; collects samples and prints one line per benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

/// Hint for how expensive batched setup inputs are; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

impl Criterion {
    /// Sets the target number of timing samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints `name  median/iter (samples)`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{name:<44} (no samples)");
            return self;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{name:<44} {:>14} /iter  ({} samples)",
            format_duration(median),
            samples.len()
        );
        self
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collects per-iteration timings for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` repeatedly (one warm-up call, then up to the
    /// configured sample count within the time budget).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),* $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),*
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group!(
        name = group;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    );

    #[test]
    fn group_runs_without_panicking() {
        group();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(50)).ends_with("s"));
    }
}
