//! Offline stand-in for `serde`.
//!
//! This container has no access to crates.io, so the workspace vendors a
//! minimal facade: the `Serialize`/`Deserialize` derive macros expand to
//! nothing (see `serde_derive`), which is sufficient because no code in
//! the workspace serialises through serde — persistence goes through the
//! explicit binary codecs in `alf-data::encode` and
//! `alf-core::checkpoint`. Swapping the real serde back in requires no
//! source changes, only a `Cargo.toml` edit.

pub use serde_derive::{Deserialize, Serialize};
