//! Compares the compression baselines on one trained model: structured
//! magnitude pruning, FPGM, the AMC-style learned policy, LCNN dictionary
//! sharing, and ALF — accuracy vs chained Params/OPs.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use alf::baselines::api::{apply_keep_ratios, chained_cost};
use alf::baselines::{lcnn, AmcAgent, AmcConfig};
use alf::core::block::AlfBlockConfig;
use alf::core::models::{plain20, plain20_alf};
use alf::core::train::{evaluate, AlfHyper, AlfTrainer};
use alf::core::{deploy, NetworkCost};
use alf::data::{Split, SynthVision};
use alf::nn::LrSchedule;

fn main() -> alf::Result<()> {
    let data = SynthVision::cifar_like(31)
        .with_image_size(16)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(256)
        .with_test_size(96)
        .build()?;
    let hyper = AlfHyper {
        task_lr: 0.05,
        batch_size: 16,
        ae_lr: 5e-2,
        ae_steps_per_batch: 8,
        lr_schedule: LrSchedule::Step {
            every: 12,
            gamma: 0.1,
        },
        ..AlfHyper::default()
    };
    println!("training the reference Plain-20 …");
    let mut trainer = AlfTrainer::new(plain20(4, 8)?, hyper.clone(), 3)?;
    trainer.run(&data, 16)?;
    let reference = trainer.into_model();
    let shapes = reference.conv_shapes(16, 16);
    let baseline = NetworkCost::of_layers(&shapes);
    let ref_acc = evaluate(&reference, &data, Split::Test, 32)?;

    let mut rows: Vec<(String, u64, u64, f32)> = vec![(
        "uncompressed".into(),
        baseline.params,
        baseline.ops(),
        ref_acc,
    )];

    // Structured pruning needs a brief fine-tune after silencing channels;
    // re-silence after each epoch so pruned channels stay dead.
    let finetune = |model: alf::core::CnnModel,
                    reprune: &dyn Fn(&mut alf::core::CnnModel)|
     -> alf::Result<alf::core::CnnModel> {
        let mut ft = AlfTrainer::new(model, hyper.clone(), 9)?;
        for _ in 0..4 {
            ft.run_epoch(&data)?;
            reprune(ft.model_mut());
        }
        Ok(ft.into_model())
    };

    // Magnitude (structured, keep 60%).
    let mut m = reference.clone();
    let report = alf::baselines::magnitude::prune_filters(&mut m, 0.6);
    let keep: Vec<usize> = report.iter().map(|(_, k, _)| *k).collect();
    let cost = chained_cost(&shapes, &keep);
    let m = finetune(m, &|model| {
        alf::baselines::magnitude::prune_filters(model, 0.6);
    })?;
    rows.push((
        "magnitude (keep 60%)".into(),
        cost.params,
        cost.ops(),
        evaluate(&m, &data, Split::Test, 32)?,
    ));

    // FPGM (keep 60%).
    let mut m = reference.clone();
    let report = alf::baselines::fpgm::prune_filters(&mut m, 0.6);
    let keep: Vec<usize> = report.iter().map(|(_, k, _)| *k).collect();
    let cost = chained_cost(&shapes, &keep);
    let m = finetune(m, &|model| {
        alf::baselines::fpgm::prune_filters(model, 0.6);
    })?;
    rows.push((
        "fpgm (keep 60%)".into(),
        cost.params,
        cost.ops(),
        evaluate(&m, &data, Split::Test, 32)?,
    ));

    // AMC-style learned policy.
    println!("running the AMC-style search …");
    let amc = AmcAgent::new(
        AmcConfig {
            population: 8,
            elites: 2,
            iterations: 3,
            eval_batch: 32,
            ..AmcConfig::default()
        },
        4,
    )
    .search(&reference, &data)?;
    let mut m = reference.clone();
    apply_keep_ratios(&mut m, &amc.keep_ratios);
    let ratios = amc.keep_ratios.clone();
    let m = finetune(m, &|model| {
        apply_keep_ratios(model, &ratios);
    })?;
    rows.push((
        "amc (learned)".into(),
        amc.cost.params,
        amc.cost.ops(),
        evaluate(&m, &data, Split::Test, 32)?,
    ));

    // LCNN dictionary sharing. Fine-tuned by projected descent: train a few
    // epochs, re-project the weights onto a learned dictionary each epoch.
    let mut m = reference.clone();
    let cost = lcnn::compress_model(&mut m, 0.3, 16, 16, 5)?;
    let m = finetune(m, &|model| {
        lcnn::compress_model(model, 0.3, 16, 16, 5).expect("lcnn projection");
    })?;
    rows.push((
        "lcnn (dict 30%)".into(),
        cost.params,
        cost.ops(),
        evaluate(&m, &data, Split::Test, 32)?,
    ));

    // ALF (trained from scratch, then deployed).
    println!("training ALF …");
    let block = AlfBlockConfig {
        threshold: 2e-2,
        ..AlfBlockConfig::paper_default()
    };
    let mut alf_trainer = AlfTrainer::new(plain20_alf(4, 8, block, 6)?, hyper, 6)?;
    alf_trainer.run(&data, 16)?;
    let alf = alf_trainer.into_model();
    let deployed = deploy::Pipeline::new().run(&alf)?.model;
    let cost = deploy::cost(&deployed, 16, 16);
    rows.push((
        "alf (automatic)".into(),
        cost.params,
        cost.ops(),
        evaluate(&deployed, &data, Split::Test, 32)?,
    ));

    println!(
        "\n{:<24}{:>10}{:>12}{:>8}{:>12}",
        "method", "params", "OPs", "acc", "Δops"
    );
    for (name, params, ops, acc) in &rows {
        println!(
            "{:<24}{:>10}{:>12}{:>7.1}%{:>11.0}%",
            name,
            params,
            ops,
            100.0 * acc,
            100.0 * (1.0 - *ops as f64 / baseline.ops() as f64)
        );
    }
    Ok(())
}
