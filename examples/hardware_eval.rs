//! Hardware evaluation: maps a CNN onto the Eyeriss-like accelerator model
//! and prints the per-layer energy breakdown, latency and PE utilisation —
//! the methodology behind the paper's Fig. 3.
//!
//! Run with: `cargo run --release --example hardware_eval`

use alf::core::models::geometry;
use alf::core::ConvShape;
use alf::hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};

fn main() -> alf::Result<()> {
    let accelerator = Accelerator::eyeriss();
    println!(
        "accelerator: {} ({}x{} PEs, {} RF words/PE, {} KiB buffer)",
        accelerator.name,
        accelerator.pe_rows,
        accelerator.pe_cols,
        accelerator.rf_words_per_pe,
        accelerator.global_buffer_words * accelerator.word_bytes / 1024,
    );
    let mapper = Mapper::new(accelerator, Dataflow::RowStationary);

    // Vanilla Plain-20 at the paper geometry, batch 16.
    let layers = geometry::plain20_layers(32, 3);
    let workloads: Vec<ConvWorkload> = layers
        .iter()
        .map(|s| ConvWorkload::from_shape(s, 16))
        .collect();
    let report = NetworkReport::evaluate(&mapper, &workloads)?;
    println!(
        "\n{:<10}{:>12}{:>12}{:>12}{:>12}{:>8}",
        "layer", "RF", "buffer", "DRAM", "latency", "util"
    );
    for l in &report.layers {
        println!(
            "{:<10}{:>12.3e}{:>12.3e}{:>12.3e}{:>12.3e}{:>7.0}%",
            l.name,
            l.energy_rf,
            l.energy_buffer,
            l.energy_dram,
            l.latency_cycles,
            100.0 * l.utilization
        );
    }
    println!(
        "\ntotal energy {:.3e} (RF-normalised), total latency {:.3e} cycles",
        report.total_energy(),
        report.total_latency()
    );

    // What-if: compress conv321 to 40% of its filters (an ALF block).
    let target = &layers[9];
    let c_code = (target.c_out as f32 * 0.4).round() as usize;
    let code = ConvWorkload::from_shape(
        &ConvShape::new(
            "conv321+code",
            target.c_in,
            c_code,
            target.kernel,
            target.stride,
            target.h_out,
            target.w_out,
        ),
        16,
    );
    let expansion = ConvWorkload::from_shape(
        &ConvShape::new(
            "conv321+exp",
            c_code,
            target.c_out,
            1,
            1,
            target.h_out,
            target.w_out,
        ),
        16,
    );
    let alf_layer = NetworkReport::evaluate(&mapper, &[code, expansion])?.merged();
    let vanilla_layer = &report.layers[9];
    println!(
        "\nwhat-if, conv321 at 40% filters: energy {:.3e} → {:.3e}, latency {:.3e} → {:.3e}",
        vanilla_layer.total_energy(),
        alf_layer.layers[0].total_energy(),
        vanilla_layer.latency_cycles,
        alf_layer.layers[0].latency_cycles
    );
    Ok(())
}
