//! End-to-end compression study on synth-CIFAR: trains the vanilla
//! ResNet-20 and its ALF counterpart, deploys the compressed model,
//! verifies the deployment computes the same function, and prints a
//! Table-II-style comparison.
//!
//! Run with: `cargo run --release --example compress_cifar`

use alf::core::block::AlfBlockConfig;
use alf::core::models::{resnet20, resnet20_alf};
use alf::core::train::{evaluate, AlfHyper, AlfTrainer};
use alf::core::{deploy, NetworkCost};
use alf::data::{Split, SynthVision};
use alf::nn::{Layer, LrSchedule, RunCtx};
use alf::tensor::init::Init;
use alf::tensor::rng::Rng;
use alf::tensor::Tensor;

fn main() -> alf::Result<()> {
    let data = SynthVision::cifar_like(21)
        .with_image_size(16)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(256)
        .with_test_size(96)
        .build()?;
    let hyper = AlfHyper {
        task_lr: 0.05,
        batch_size: 16,
        ae_lr: 5e-2,
        ae_steps_per_batch: 8,
        lr_schedule: LrSchedule::Step {
            every: 12,
            gamma: 0.1,
        },
        ..AlfHyper::default()
    };
    let epochs = 16;

    println!("training vanilla ResNet-20 …");
    let mut vanilla_trainer = AlfTrainer::new(resnet20(4, 8)?, hyper.clone(), 5)?;
    let vanilla_report = vanilla_trainer.run(&data, epochs)?;
    let vanilla = vanilla_trainer.into_model();

    println!("training ALF-ResNet-20 …");
    let block = AlfBlockConfig {
        threshold: 2e-2,
        ..AlfBlockConfig::paper_default()
    };
    let mut alf_trainer = AlfTrainer::new(resnet20_alf(4, 8, block, 6)?, hyper, 6)?;
    let alf_report = alf_trainer.run(&data, epochs)?;
    let alf = alf_trainer.into_model();

    // Deploy and verify exact functional equivalence.
    let mut deployed = deploy::Pipeline::new().run(&alf)?.model;
    let mut alf_eval = alf.clone();
    let probe = Tensor::randn(&[4, 3, 16, 16], Init::Rand, &mut Rng::new(9));
    let mut ctx = RunCtx::eval();
    let y_train_form = alf_eval.forward(&probe, &mut ctx)?;
    let y_deployed = deployed.forward(&probe, &mut ctx)?;
    assert!(
        y_deployed.allclose(&y_train_form, 1e-4),
        "deployment must not change the function"
    );
    println!("deployment verified: identical outputs on a random probe batch");

    let deployed_acc = evaluate(&deployed, &data, Split::Test, 32)?;
    let vanilla_cost = NetworkCost::of_layers(&vanilla.conv_shapes(16, 16));
    let alf_cost = deploy::cost(&deployed, 16, 16);
    let (dp, dm) = alf_cost.reduction_vs(&vanilla_cost);
    println!(
        "\n{:<22}{:>10}{:>12}{:>10}",
        "model", "params", "MACs", "acc"
    );
    println!(
        "{:<22}{:>10}{:>12}{:>9.1}%",
        "resnet20",
        vanilla_cost.params,
        vanilla_cost.macs,
        100.0 * vanilla_report.final_accuracy()
    );
    println!(
        "{:<22}{:>10}{:>12}{:>9.1}%",
        "alf-resnet20 (deployed)",
        alf_cost.params,
        alf_cost.macs,
        100.0 * deployed_acc
    );
    println!(
        "\nALF: −{dp:.0}% params, −{dm:.0}% MACs, remaining filters {:.0}%, Δacc {:.1} pts",
        100.0 * alf_report.final_remaining_filters(),
        100.0 * (vanilla_report.final_accuracy() - alf_report.final_accuracy())
    );
    Ok(())
}
