//! Quickstart: train an ALF-compressed CNN on a synthetic dataset, watch
//! it prune itself, then deploy the dense compressed model.
//!
//! Run with: `cargo run --release --example quickstart`

use alf::core::block::AlfBlockConfig;
use alf::core::models::plain20_alf;
use alf::core::train::{AlfHyper, AlfTrainer};
use alf::core::{deploy, NetworkCost};
use alf::data::SynthVision;
use alf::nn::LrSchedule;

fn main() -> alf::Result<()> {
    // 1. A small synthetic CIFAR-like classification task.
    let data = SynthVision::cifar_like(7)
        .with_image_size(16)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(256)
        .with_test_size(96)
        .build()?;

    // 2. Plain-20 where every convolution is an ALF block (paper config,
    //    with the clip threshold / autoencoder rate sped up for this demo).
    let block = AlfBlockConfig {
        threshold: 2e-2,
        ..AlfBlockConfig::paper_default()
    };
    let model = plain20_alf(data.num_classes(), 8, block, 1)?;

    // 3. Two-player training: task SGD vs per-block autoencoder SGD.
    let hyper = AlfHyper {
        task_lr: 0.05,
        batch_size: 16,
        ae_lr: 5e-2,
        ae_steps_per_batch: 8,
        lr_schedule: LrSchedule::Step {
            every: 12,
            gamma: 0.1,
        },
        ..AlfHyper::default()
    };
    let mut trainer = AlfTrainer::new(model, hyper, 1)?;
    println!("epoch  loss   test-acc  remaining-filters");
    for _ in 0..16 {
        let s = trainer.run_epoch(&data)?;
        println!(
            "{:>5}  {:>5.2}  {:>7.1}%  {:>16.0}%",
            s.epoch,
            s.train_loss,
            100.0 * s.test_accuracy,
            100.0 * s.remaining_filters
        );
    }

    // 4. Deployment: strip the zero code filters (and the matching
    //    expansion channels) into a dense compressed model.
    let trained = trainer.into_model();
    let deployed = deploy::Pipeline::new().run(&trained)?.model;
    let vanilla_cost = NetworkCost::of_layers(&trained.conv_shapes(16, 16));
    let deployed_cost = deploy::cost(&deployed, 16, 16);
    let (dp, dm) = deployed_cost.reduction_vs(&vanilla_cost);
    println!(
        "\ndeployed model: {:.0}% fewer parameters, {:.0}% fewer MACs than the uncompressed net",
        dp, dm
    );
    Ok(())
}
