//! Register-tiled GEMM micro-kernels for the blocked matrix multiply in
//! `alf-tensor`.
//!
//! # Why these few functions live in their own crate
//!
//! The kernels are deliberately written as plain nested iterator loops and
//! rely on LLVM's loop vectorizer to lower them to the classic
//! outer-product form: one vector register per row of the `MR`×`NR`
//! accumulator tile, updated with embedded-broadcast multiplies
//! (`vmulps mem{1to8}, ymm, ymm` on AVX-512 hosts). That shape keeps the
//! whole accumulator in registers with no shuffles and was measured at
//! ~45 GF/s single-threaded on the development host.
//!
//! When the very same source is compiled *in the same LLVM module as its
//! callers*, interprocedural analysis feeds call-site facts (argument
//! ranges, alignment, points-to) into the cost models, and the SLP
//! vectorizer instead rewrites the loop nest into a shuffle-heavy form —
//! four 512-bit accumulators juggled with `vpermt2ps` — that runs ~3x
//! slower (~15 GF/s). Which form wins depends on which codegen unit the
//! callers land in, so performance silently flips with unrelated edits
//! (`#[inline(never)]` does not help: the function body is not inlined,
//! but its callers still inform the analysis). Keeping the kernels in a
//! dedicated crate with LTO disabled severs that channel: rustc compiles
//! this crate as its own LLVM module with no callers in sight, and the
//! fast form is reproduced deterministically.
//!
//! Note for anyone inspecting the output: `rustc --emit asm` (or
//! `--emit obj`) perturbs codegen-unit handling and shows the *slow* form
//! even for this crate. Disassemble the `.rcgu.o` inside the built rlib
//! (or the final binary) instead; the genuine artifact contains the
//! broadcast form.
//!
//! The multiply-accumulate is kept as `c + a * b` on purpose: Rust does
//! not contract it into an FMA, so results are bit-identical to the seed
//! loops' evaluation order requirements (per-element accumulation stays
//! in ascending-`k` order, one accumulator per element).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Rows of the register tile (and of packed `A` panels).
///
/// With `NR = 8` the accumulator is an 8×8 = 64-float block — eight
/// 256-bit registers — which LLVM keeps entirely register-resident.
/// Wider or taller tiles were measured to push it onto the stack and run
/// several times slower.
pub const MR: usize = 8;

/// Columns of the register tile (and of packed `B` panels).
pub const NR: usize = 8;

/// Multiplies one packed `A` panel by one packed `B` panel and adds the
/// `MR`×`NR` product tile into `c`, whose rows are `n` apart.
///
/// * `apanel` holds `kc` steps of `MR` values each: `apanel[p*MR + r]` is
///   `A[row0 + r, p]`. Its length must be a multiple of `MR`.
/// * `bpanel` holds `kc` steps of `NR` values each: `bpanel[p*NR + j]` is
///   `B[p, col0 + j]`. Its length must be a multiple of `NR`.
/// * `c` must hold the tile at row stride `n`: element `(r, j)` of the
///   tile lives at `c[r*n + j]`, so `c.len()` must be at least
///   `(MR-1)*n + NR`.
///
/// The accumulator is row-major (`acc[r][j]`), matching the `NR`-wide
/// contiguous rows of both the packed `B` panel and `C`, so the loop
/// vectorizer maps each row to one vector register and broadcasts the
/// `A` scalar — and the write-back needs no transpose.
///
/// `#[inline(never)]` is belt-and-braces on top of the crate isolation:
/// inlining the kernel into a caller would re-expose it to exactly the
/// context-sensitive vectorizer behaviour the crate boundary exists to
/// prevent.
#[inline(never)]
pub fn microkernel_into(apanel: &[f32], bpanel: &[f32], c: &mut [f32], n: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (ap, bp) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for (accr, &av) in acc.iter_mut().zip(ap.iter()) {
            for (o, &bv) in accr.iter_mut().zip(bp.iter()) {
                *o += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = &mut c[r * n..r * n + NR];
        for (o, &v) in crow.iter_mut().zip(accr.iter()) {
            *o += v;
        }
    }
}

/// [`microkernel_into`] for edge tiles: identical compute on the
/// zero-padded panels, write-back clipped to the `rlim`×`clim` live
/// region of `C` (`c.len()` must be at least `(rlim-1)*n + clim`).
///
/// Kept separate so the full-tile kernel's write-back keeps compile-time
/// trip counts; this clipped variant is only reached on the ragged last
/// row/column block of a matrix whose dimension is not a tile multiple.
#[inline(never)]
pub fn microkernel_into_clipped(
    apanel: &[f32],
    bpanel: &[f32],
    c: &mut [f32],
    n: usize,
    rlim: usize,
    clim: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (ap, bp) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for (accr, &av) in acc.iter_mut().zip(ap.iter()) {
            for (o, &bv) in accr.iter_mut().zip(bp.iter()) {
                *o += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(rlim) {
        let crow = &mut c[r * n..r * n + clim];
        for (o, &v) in crow.iter_mut().zip(accr.iter()) {
            *o += v;
        }
    }
}

/// Int8 companion of [`microkernel_into`]: multiplies one packed `A`
/// panel by one packed `B` panel — both holding *exact small-integer
/// values* in f32 slots, as produced by the i8 packing routines in
/// `alf-tensor` — and adds the `MR`×`NR` product tile into the i32 `c`,
/// whose rows are `n` apart. Write-back is clipped to the `rlim`×`clim`
/// live region, so one definition serves both full tiles (`rlim = MR`,
/// `clim = NR`; the zero-padded panel tails contribute exact zeroes) and
/// ragged edge tiles. Panel layouts match the f32 kernel:
/// `apanel[p*MR + r]` is `A[row0 + r, p]`, `bpanel[p*NR + j]` is
/// `B[p, col0 + j]`.
///
/// # Why the accumulator is f32 (and why that is still exact)
///
/// A direct `i8×i8→i32` loop nest forces LLVM into sign-extension
/// shuffles plus the slow vector i32 multiply and was measured at roughly
/// half the f32 kernel's throughput. Holding the i8 values in f32 lanes
/// instead reproduces the f32 kernel's broadcast outer-product lowering
/// exactly — and loses nothing: every product of two i8 values has
/// magnitude ≤ 127² = 16129, so a panel of up to `kc = 1040` steps keeps
/// every partial sum below 2²⁴, where f32 represents every integer
/// exactly. No rounding can occur, and the i32 write-back (`v as i32`) is
/// an exact conversion. The blocked driver's `KC = 256` is far inside
/// that bound; the kernel debug-asserts the panel depth so a future
/// re-blocking cannot silently break exactness.
#[inline(never)]
pub fn microkernel_i8_into(
    apanel: &[f32],
    bpanel: &[f32],
    c: &mut [i32],
    n: usize,
    rlim: usize,
    clim: usize,
) {
    // 2²⁴ / 127² = 1040.6: at kc ≤ 1040 every partial sum stays an
    // exactly representable f32 integer.
    debug_assert!(
        apanel.len() <= 1040 * MR,
        "i8 panel too deep for exact f32 accumulation"
    );
    let mut acc = [[0.0f32; NR]; MR];
    for (ap, bp) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for (accr, &av) in acc.iter_mut().zip(ap.iter()) {
            for (o, &bv) in accr.iter_mut().zip(bp.iter()) {
                *o += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(rlim) {
        let crow = &mut c[r * n..r * n + clim];
        for (o, &v) in crow.iter_mut().zip(accr.iter()) {
            *o += v as i32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_tile(apanel: &[f32], bpanel: &[f32], kc: usize) -> Vec<f32> {
        let mut tile = vec![0.0f32; MR * NR];
        for p in 0..kc {
            for r in 0..MR {
                for j in 0..NR {
                    tile[r * NR + j] += apanel[p * MR + r] * bpanel[p * NR + j];
                }
            }
        }
        tile
    }

    fn panels(kc: usize) -> (Vec<f32>, Vec<f32>) {
        let apanel: Vec<f32> = (0..kc * MR).map(|i| (i % 13) as f32 * 0.25 - 1.5).collect();
        let bpanel: Vec<f32> = (0..kc * NR).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
        (apanel, bpanel)
    }

    #[test]
    fn full_tile_matches_reference() {
        let kc = 37;
        let (apanel, bpanel) = panels(kc);
        let n = 11;
        let mut c = vec![1.0f32; (MR - 1) * n + NR];
        microkernel_into(&apanel, &bpanel, &mut c, n);
        let tile = reference_tile(&apanel, &bpanel, kc);
        for r in 0..MR {
            for j in 0..NR {
                let got = c[r * n + j];
                let want = 1.0 + tile[r * NR + j];
                assert!(
                    (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "tile ({r},{j}): got {got}, want {want}"
                );
            }
        }
        // Gaps between rows must be untouched.
        for r in 0..MR - 1 {
            for j in NR..n {
                assert_eq!(c[r * n + j], 1.0, "gap ({r},{j}) clobbered");
            }
        }
    }

    #[test]
    fn clipped_tile_writes_only_live_region() {
        let kc = 16;
        let (apanel, bpanel) = panels(kc);
        let (n, rlim, clim) = (9, 5, 3);
        let mut c = vec![0.5f32; (rlim - 1) * n + clim];
        microkernel_into_clipped(&apanel, &bpanel, &mut c, n, rlim, clim);
        let tile = reference_tile(&apanel, &bpanel, kc);
        for r in 0..rlim {
            for j in 0..clim {
                let got = c[r * n + j];
                let want = 0.5 + tile[r * NR + j];
                assert!(
                    (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "clipped ({r},{j}): got {got}, want {want}"
                );
            }
        }
        for r in 0..rlim - 1 {
            for j in clim..n {
                assert_eq!(c[r * n + j], 0.5, "clipped gap ({r},{j}) clobbered");
            }
        }
    }

    #[test]
    fn empty_panels_leave_c_unchanged() {
        let mut c = vec![2.0f32; (MR - 1) * 8 + NR];
        microkernel_into(&[], &[], &mut c, 8);
        assert!(c.iter().all(|&v| v == 2.0));
    }

    /// i8 values widened into the f32 panel slots the int8 kernel takes.
    fn i8_panels(kc: usize) -> (Vec<f32>, Vec<f32>) {
        let apanel: Vec<f32> = (0..kc * MR)
            .map(|i| f32::from(((i * 37) % 255) as i8))
            .collect();
        let bpanel: Vec<f32> = (0..kc * NR)
            .map(|i| f32::from(((i * 91 + 13) % 255) as i8))
            .collect();
        (apanel, bpanel)
    }

    fn reference_i8_tile(apanel: &[f32], bpanel: &[f32], kc: usize) -> Vec<i32> {
        let mut tile = vec![0i32; MR * NR];
        for p in 0..kc {
            for r in 0..MR {
                for j in 0..NR {
                    tile[r * NR + j] += apanel[p * MR + r] as i32 * bpanel[p * NR + j] as i32;
                }
            }
        }
        tile
    }

    #[test]
    fn i8_full_tile_is_bitwise_exact() {
        let kc = 41;
        let (apanel, bpanel) = i8_panels(kc);
        let n = 11;
        let mut c = vec![7i32; (MR - 1) * n + NR];
        microkernel_i8_into(&apanel, &bpanel, &mut c, n, MR, NR);
        let tile = reference_i8_tile(&apanel, &bpanel, kc);
        for r in 0..MR {
            for j in 0..NR {
                assert_eq!(c[r * n + j], 7 + tile[r * NR + j], "tile ({r},{j})");
            }
        }
        for r in 0..MR - 1 {
            for j in NR..n {
                assert_eq!(c[r * n + j], 7, "gap ({r},{j}) clobbered");
            }
        }
    }

    #[test]
    fn i8_clipped_tile_writes_only_live_region() {
        let kc = 23;
        let (apanel, bpanel) = i8_panels(kc);
        let (n, rlim, clim) = (9, 5, 3);
        let mut c = vec![-2i32; (rlim - 1) * n + clim];
        microkernel_i8_into(&apanel, &bpanel, &mut c, n, rlim, clim);
        let tile = reference_i8_tile(&apanel, &bpanel, kc);
        for r in 0..rlim {
            for j in 0..clim {
                assert_eq!(c[r * n + j], -2 + tile[r * NR + j], "clipped ({r},{j})");
            }
        }
        for r in 0..rlim - 1 {
            for j in clim..n {
                assert_eq!(c[r * n + j], -2, "clipped gap ({r},{j}) clobbered");
            }
        }
    }

    #[test]
    fn i8_extreme_values_do_not_overflow_i32() {
        // ±127 · ∓127 over a full KC-depth panel drives every partial sum
        // to its worst case; the kernel must still be exact.
        let kc = 256;
        let apanel = vec![127.0f32; kc * MR];
        let bpanel = vec![-127.0f32; kc * NR];
        let mut c = vec![0i32; (MR - 1) * NR + NR];
        microkernel_i8_into(&apanel, &bpanel, &mut c, NR, MR, NR);
        assert!(c.iter().all(|&v| v == -16129 * kc as i32));
    }
}
