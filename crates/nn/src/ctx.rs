//! Per-run execution context threaded through every [`Layer`](crate::Layer).
//!
//! A [`RunCtx`] bundles the three things a layer needs from its caller but
//! should not own privately:
//!
//! * the forward-pass [`Mode`] (train vs eval),
//! * a shared [`Workspace`] arena that *all* layers draw transient scratch
//!   from (column matrices, GEMM packing panels, gradient staging buffers),
//!   so one warm arena serves a whole model instead of one arena per conv,
//! * an optional [`Profiler`] sink recording per-layer wall time, FLOPs,
//!   bytes moved and the arena's high-water mark.
//!
//! Ownership rules: the *caller* (trainer, evaluator, test harness) owns the
//! `RunCtx` and keeps it alive across steps — that is what makes the arena
//! reach a steady state where `take`/`give` never allocate. Layers only
//! borrow it for the duration of one `forward`/`backward` call and must
//! return every buffer they take before returning. Buffers that have to
//! survive from `forward` to `backward` (conv's column matrix, BN's
//! normalised activations) are layer-owned caches, *not* arena slots —
//! two layers sharing a slot name would otherwise evict each other.
//!
//! Profiling overhead budget: with the profiler disabled every hook is a
//! single branch on an `Option` discriminant — no clocks are read, no
//! strings touched — keeping the disabled-path overhead well under the 2%
//! budget. With it enabled, each profiled scope costs two `Instant::now()`
//! calls and a linear scan over the (small) entry table.

use std::time::Instant;

use alf_obs::json::JsonWriter;
use alf_obs::metrics::MetricsRegistry;
use alf_tensor::ops::Workspace;

use crate::layer::Mode;

/// Which half of the cache-and-replay contract a profiled scope covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// A `forward` call.
    Forward,
    /// A `backward` call.
    Backward,
}

/// Execution context passed to every [`Layer::forward`](crate::Layer::forward)
/// and [`Layer::backward`](crate::Layer::backward) call.
///
/// # Example
///
/// ```
/// use alf_nn::{Activation, ActivationKind, Layer, RunCtx};
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut ctx = RunCtx::train();
/// let mut relu = Activation::new(ActivationKind::Relu);
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2])?;
/// let y = relu.forward(&x, &mut ctx)?;
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RunCtx {
    mode: Mode,
    /// Shared scratch arena. Public so layers can pass `&mut ctx.ws`
    /// straight into kernel entry points while still calling profiling
    /// hooks on `ctx` itself.
    pub ws: Workspace,
    profiler: Option<Profiler>,
    freeze_norm: bool,
}

impl RunCtx {
    /// Fresh context in the given mode with an empty arena, no profiler.
    pub fn new(mode: Mode) -> Self {
        Self {
            mode,
            ws: Workspace::new(),
            profiler: None,
            freeze_norm: false,
        }
    }

    /// Fresh training-mode context.
    pub fn train() -> Self {
        Self::new(Mode::Train)
    }

    /// Fresh evaluation-mode context.
    pub fn eval() -> Self {
        Self::new(Mode::Eval)
    }

    /// Current forward-pass mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Switches the mode in place (the arena and profiler are kept — a
    /// trainer flips one long-lived context between train and eval).
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Whether the context is in training mode.
    pub fn is_train(&self) -> bool {
        self.mode == Mode::Train
    }

    /// Whether normalisation layers should *freeze* their statistics in
    /// training mode: normalise with the tracked running statistics
    /// (exactly as evaluation does) instead of batch statistics, and
    /// leave the running statistics untouched. Gradients then treat the
    /// statistics as constants.
    ///
    /// This is the knob behind `alf-dp`'s per-sample workers: batch
    /// statistics over a single-sample shard would make the normalisation
    /// (and so the whole run) depend on the shard layout, while frozen
    /// statistics are a pure function of the synced weights. Off by
    /// default; ignored in [`Mode::Eval`] (eval always uses running
    /// statistics).
    pub fn freeze_norm(&self) -> bool {
        self.freeze_norm
    }

    /// Turns frozen-statistics normalisation on or off (see
    /// [`RunCtx::freeze_norm`]).
    pub fn set_freeze_norm(&mut self, on: bool) {
        self.freeze_norm = on;
    }

    /// Builder-style: enables profiling and returns the context.
    pub fn with_profiler(mut self) -> Self {
        self.enable_profiler();
        self
    }

    /// Attaches a fresh [`Profiler`] (replacing any existing one).
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(Profiler::default());
    }

    /// Detaches and returns the profiler, disabling profiling.
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.profiler.take()
    }

    /// Whether a profiler is attached.
    pub fn profiling(&self) -> bool {
        self.profiler.is_some()
    }

    /// Records `n` floating-point operations against the innermost open
    /// profiled scope. A single branch when profiling is disabled.
    #[inline]
    pub fn count_flops(&mut self, n: u64) {
        if let Some(p) = self.profiler.as_mut() {
            p.pending_flops += n;
        }
    }

    /// Records `n` bytes moved (reads + writes of tensor payloads) against
    /// the innermost open profiled scope.
    #[inline]
    pub fn count_bytes(&mut self, n: u64) {
        if let Some(p) = self.profiler.as_mut() {
            p.pending_bytes += n;
        }
    }

    /// Opens a profiled scope. Returns `None` (for free) when profiling is
    /// disabled; pass the token to [`RunCtx::scope_end`] with the layer
    /// name once the work is done.
    ///
    /// The start/end pair is deliberately not a closure-taking wrapper:
    /// callers usually need to name the scope from a field of the same
    /// struct whose other fields the body mutates, which a closure would
    /// make a borrow-checker fight.
    #[inline]
    pub fn scope_start(&mut self) -> Option<ScopeToken> {
        self.profiler.as_ref().map(|p| ScopeToken {
            start: Instant::now(),
            flops0: p.pending_flops,
            bytes0: p.pending_bytes,
        })
    }

    /// Closes a profiled scope, attributing elapsed wall time and all
    /// FLOPs/bytes counted since `scope_start` to `name`. A no-op when the
    /// token is `None`.
    pub fn scope_end(&mut self, token: Option<ScopeToken>, name: &str, pass: Pass) {
        let Some(token) = token else { return };
        let elapsed = token.start.elapsed().as_nanos() as u64;
        let Some(p) = self.profiler.as_mut() else {
            return;
        };
        let flops = p.pending_flops - token.flops0;
        let bytes = p.pending_bytes - token.bytes0;
        // Reset so an enclosing scope only attributes its own direct counts.
        p.pending_flops = token.flops0;
        p.pending_bytes = token.bytes0;
        let entry = p.entry_mut(name);
        entry.flops += flops;
        entry.bytes += bytes;
        match pass {
            Pass::Forward => {
                entry.fwd_ns += elapsed;
                entry.fwd_calls += 1;
            }
            Pass::Backward => {
                entry.bwd_ns += elapsed;
                entry.bwd_calls += 1;
            }
        }
    }

    /// Snapshot of everything profiled so far, including the arena's
    /// current high-water mark. `None` when profiling is disabled.
    pub fn report(&self) -> Option<ProfileReport> {
        self.profiler.as_ref().map(|p| ProfileReport {
            layers: p.entries.clone(),
            ws_high_water_bytes: self.ws.high_water_bytes(),
        })
    }

    /// Like [`RunCtx::report`], but also clears the accumulated entries so
    /// the next epoch starts fresh (the profiler stays attached).
    pub fn take_report(&mut self) -> Option<ProfileReport> {
        let hw = self.ws.high_water_bytes();
        self.profiler.as_mut().map(|p| ProfileReport {
            layers: std::mem::take(&mut p.entries),
            ws_high_water_bytes: hw,
        })
    }
}

/// Opaque handle returned by [`RunCtx::scope_start`].
#[derive(Debug)]
pub struct ScopeToken {
    start: Instant,
    flops0: u64,
    bytes0: u64,
}

/// Accumulates per-layer timing and operation counts.
#[derive(Debug, Default, Clone)]
pub struct Profiler {
    entries: Vec<LayerProfile>,
    pending_flops: u64,
    pending_bytes: u64,
}

impl Profiler {
    fn entry_mut(&mut self, name: &str) -> &mut LayerProfile {
        if let Some(i) = self.entries.iter().position(|e| e.name == name) {
            return &mut self.entries[i];
        }
        self.entries.push(LayerProfile::new(name));
        self.entries.last_mut().expect("just pushed")
    }

    /// Accumulated entries in first-seen order.
    pub fn layers(&self) -> &[LayerProfile] {
        &self.entries
    }
}

/// Accumulated measurements for one named layer (or scope).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Scope name — conv-unit names for model layers (`conv1`, `res2b_1`,
    /// …) or static labels (`maxpool`, `fc`).
    pub name: String,
    /// Total wall time spent in `forward`, nanoseconds.
    pub fwd_ns: u64,
    /// Total wall time spent in `backward`, nanoseconds.
    pub bwd_ns: u64,
    /// Number of `forward` calls.
    pub fwd_calls: u64,
    /// Number of `backward` calls.
    pub bwd_calls: u64,
    /// Floating-point operations counted inside this scope (both passes).
    pub flops: u64,
    /// Tensor payload bytes moved inside this scope (both passes).
    pub bytes: u64,
}

impl LayerProfile {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            fwd_ns: 0,
            bwd_ns: 0,
            fwd_calls: 0,
            bwd_calls: 0,
            flops: 0,
            bytes: 0,
        }
    }

    /// Total wall time across both passes, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.fwd_ns + self.bwd_ns
    }

    /// Writes this layer as one JSON object into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("name", &self.name);
        w.field_u64("fwd_ns", self.fwd_ns);
        w.field_u64("bwd_ns", self.bwd_ns);
        w.field_u64("fwd_calls", self.fwd_calls);
        w.field_u64("bwd_calls", self.bwd_calls);
        w.field_u64("flops", self.flops);
        w.field_u64("bytes", self.bytes);
        w.end_object();
    }

    /// One JSON object for this layer.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Point-in-time snapshot of a [`Profiler`] plus arena footprint.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Per-layer entries in first-seen (i.e. network) order.
    pub layers: Vec<LayerProfile>,
    /// Shared arena high-water mark at snapshot time, bytes.
    pub ws_high_water_bytes: usize,
}

impl ProfileReport {
    /// Entry for `name`, if that scope was ever closed.
    pub fn layer(&self, name: &str) -> Option<&LayerProfile> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Total wall time across all layers and both passes, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.layers.iter().map(LayerProfile::total_ns).sum()
    }

    /// Writes the whole report as one JSON object into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("ws_high_water_bytes", self.ws_high_water_bytes as u64);
        w.key("layers");
        w.begin_array();
        for l in &self.layers {
            l.write_json(w);
        }
        w.end_array();
        w.end_object();
    }

    /// Serialises the whole report as a JSON object through the shared
    /// workspace writer (`alf_obs::json`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Exports the report into `registry` as gauges, one per layer and
    /// measurement (`profile.<layer>.fwd_ns`, `.bwd_ns`, `.flops`,
    /// `.bytes`) plus `profile.ws_high_water_bytes`, so profiler snapshots
    /// travel through the same [`MetricsRegistry`] surface as server and
    /// trainer metrics.
    pub fn export_into(&self, registry: &MetricsRegistry) {
        for l in &self.layers {
            registry
                .gauge(&format!("profile.{}.fwd_ns", l.name))
                .set(l.fwd_ns as f64);
            registry
                .gauge(&format!("profile.{}.bwd_ns", l.name))
                .set(l.bwd_ns as f64);
            registry
                .gauge(&format!("profile.{}.flops", l.name))
                .set(l.flops as f64);
            registry
                .gauge(&format!("profile.{}.bytes", l.name))
                .set(l.bytes as f64);
        }
        registry
            .gauge("profile.ws_high_water_bytes")
            .set(self.ws_high_water_bytes as f64);
    }

    /// Renders a fixed-width text table of per-layer measurements.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>12} {:>12}\n",
            "layer", "fwd ms", "bwd ms", "MFLOPs", "MB moved"
        ));
        for l in &self.layers {
            out.push_str(&format!(
                "{:<14} {:>10.3} {:>10.3} {:>12.2} {:>12.2}\n",
                l.name,
                l.fwd_ns as f64 / 1e6,
                l.bwd_ns as f64 / 1e6,
                l.flops as f64 / 1e6,
                l.bytes as f64 / 1e6,
            ));
        }
        out.push_str(&format!(
            "arena high water: {:.2} MB\n",
            self.ws_high_water_bytes as f64 / 1e6
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut ctx = RunCtx::train();
        let t = ctx.scope_start();
        assert!(t.is_none());
        ctx.count_flops(100);
        ctx.scope_end(t, "conv1", Pass::Forward);
        assert!(ctx.report().is_none());
    }

    #[test]
    fn scopes_attribute_time_flops_and_bytes() {
        let mut ctx = RunCtx::train().with_profiler();
        let t = ctx.scope_start();
        ctx.count_flops(1000);
        ctx.count_bytes(64);
        ctx.scope_end(t, "conv1", Pass::Forward);
        let t = ctx.scope_start();
        ctx.count_flops(500);
        ctx.scope_end(t, "conv1", Pass::Backward);
        let report = ctx.report().unwrap();
        let l = report.layer("conv1").unwrap();
        assert_eq!(l.flops, 1500);
        assert_eq!(l.bytes, 64);
        assert_eq!(l.fwd_calls, 1);
        assert_eq!(l.bwd_calls, 1);
    }

    #[test]
    fn counts_outside_any_scope_are_dropped_on_next_scope() {
        let mut ctx = RunCtx::eval().with_profiler();
        ctx.count_flops(42); // no scope open — attributed to nothing
        let t = ctx.scope_start();
        ctx.count_flops(8);
        ctx.scope_end(t, "fc", Pass::Forward);
        let report = ctx.report().unwrap();
        assert_eq!(report.layer("fc").unwrap().flops, 8);
    }

    #[test]
    fn nested_scopes_split_counts() {
        let mut ctx = RunCtx::train().with_profiler();
        let outer = ctx.scope_start();
        ctx.count_flops(10);
        let inner = ctx.scope_start();
        ctx.count_flops(100);
        ctx.scope_end(inner, "inner", Pass::Forward);
        ctx.count_flops(1);
        ctx.scope_end(outer, "outer", Pass::Forward);
        let report = ctx.report().unwrap();
        assert_eq!(report.layer("inner").unwrap().flops, 100);
        assert_eq!(report.layer("outer").unwrap().flops, 11);
    }

    #[test]
    fn take_report_resets_entries_but_keeps_profiler() {
        let mut ctx = RunCtx::train().with_profiler();
        let t = ctx.scope_start();
        ctx.scope_end(t, "a", Pass::Forward);
        let first = ctx.take_report().unwrap();
        assert_eq!(first.layers.len(), 1);
        assert!(ctx.profiling());
        let second = ctx.report().unwrap();
        assert!(second.layers.is_empty());
    }

    #[test]
    fn report_includes_arena_high_water() {
        let mut ctx = RunCtx::train().with_profiler();
        let b = ctx.ws.take("scratch", 256);
        ctx.ws.give("scratch", b);
        let report = ctx.report().unwrap();
        assert!(report.ws_high_water_bytes >= 256 * 4);
    }

    #[test]
    fn json_round_trips_key_fields() {
        let mut ctx = RunCtx::train().with_profiler();
        let t = ctx.scope_start();
        ctx.count_flops(7);
        ctx.scope_end(t, "conv1", Pass::Forward);
        let json = ctx.report().unwrap().to_json();
        assert!(json.contains("\"name\":\"conv1\""));
        assert!(json.contains("\"flops\":7"));
        assert!(json.contains("\"ws_high_water_bytes\""));
        let table = ctx.report().unwrap().table();
        assert!(table.contains("conv1"));
    }

    #[test]
    fn report_exports_gauges_into_registry() {
        let mut ctx = RunCtx::train().with_profiler();
        let t = ctx.scope_start();
        ctx.count_flops(7);
        ctx.count_bytes(32);
        ctx.scope_end(t, "conv1", Pass::Forward);
        let registry = MetricsRegistry::new();
        ctx.report().unwrap().export_into(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("profile.conv1.flops"), Some(7.0));
        assert_eq!(snap.gauge("profile.conv1.bytes"), Some(32.0));
        assert!(snap.gauge("profile.ws_high_water_bytes").is_some());
    }

    #[test]
    fn mode_flips_in_place() {
        let mut ctx = RunCtx::eval();
        assert!(!ctx.is_train());
        ctx.set_mode(Mode::Train);
        assert!(ctx.is_train());
        assert_eq!(ctx.mode(), Mode::Train);
    }
}
