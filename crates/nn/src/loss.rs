//! Loss functions: softmax cross-entropy (`LCE` of the task player) and
//! mean squared error (`Lrec` of the autoencoder player).

use alf_tensor::{ShapeError, Tensor};

use crate::Result;

/// Softmax cross-entropy over a batch of logits.
///
/// Returns `(mean loss, gradient w.r.t. logits)`. The gradient is already
/// divided by the batch size, so it feeds straight into `backward`.
/// Numerically stabilised with the max-subtraction trick.
///
/// # Errors
///
/// Returns an error unless `logits` is `[n, classes]`, `labels.len() == n`
/// and every label is within range.
///
/// # Example
///
/// ```
/// use alf_nn::softmax_cross_entropy;
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_nn::Result<()> {
/// let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2])?;
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0])?;
/// assert!(loss < 1e-6);           // confident and correct
/// assert!(grad.data()[0].abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[allow(clippy::needless_range_loop)] // index `i` addresses three parallel buffers
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let (n, c) = match logits.dims() {
        &[n, c] => (n, c),
        _ => {
            return Err(ShapeError::new(
                "softmax_cross_entropy",
                format!("logits {} not rank 2", logits.shape()),
            ))
        }
    };
    if labels.len() != n {
        return Err(ShapeError::new(
            "softmax_cross_entropy",
            format!("{} labels for batch of {n}", labels.len()),
        ));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
        return Err(ShapeError::new(
            "softmax_cross_entropy",
            format!("label {bad} out of range for {c} classes"),
        ));
    }
    let mut grad = Tensor::zeros(&[n, c]);
    let mut total = 0.0;
    for i in 0..n {
        let row = &logits.data()[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        let label = labels[i];
        total += z.ln() - (row[label] - max);
        let grow = &mut grad.data_mut()[i * c..(i + 1) * c];
        for (j, g) in grow.iter_mut().enumerate() {
            let p = exps[j] / z;
            *g = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    Ok((total / n as f32, grad))
}

/// Number of rows whose argmax equals the label, as an exact integer.
///
/// Aggregating correct counts as `usize` avoids the lossy round-trip of
/// multiplying a per-batch accuracy back by the batch size in `f32`, which
/// can drift by whole samples over a large evaluation set.
///
/// # Errors
///
/// Returns an error on shape/label mismatches (same contract as
/// [`softmax_cross_entropy`]).
#[allow(clippy::needless_range_loop)] // index `i` addresses two parallel buffers
pub fn correct_count(logits: &Tensor, labels: &[usize]) -> Result<usize> {
    let (n, c) = match logits.dims() {
        &[n, c] => (n, c),
        _ => {
            return Err(ShapeError::new(
                "correct_count",
                format!("logits {} not rank 2", logits.shape()),
            ))
        }
    };
    if labels.len() != n || n == 0 {
        return Err(ShapeError::new(
            "correct_count",
            format!("{} labels for batch of {n}", labels.len()),
        ));
    }
    let mut correct = 0;
    for i in 0..n {
        let row = &logits.data()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .fold((0, f32::NEG_INFINITY), |(bi, bv), (j, &v)| {
                if v > bv {
                    (j, v)
                } else {
                    (bi, bv)
                }
            })
            .0;
        if pred == labels[i] {
            correct += 1;
        }
    }
    Ok(correct)
}

/// Classification accuracy of a batch of logits: fraction of rows whose
/// argmax equals the label.
///
/// # Errors
///
/// Returns an error on shape/label mismatches (same contract as
/// [`softmax_cross_entropy`]).
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    Ok(correct_count(logits, labels)? as f32 / labels.len() as f32)
}

/// Mean squared error between a prediction and a target of equal shape.
///
/// Returns `(loss, gradient w.r.t. prediction)`; the gradient is
/// `2·(pred − target)/len`, matching `d/dpred mean((pred − target)²)`.
///
/// # Errors
///
/// Returns an error when the shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    pred.shape().expect_same(target.shape(), "mse_loss")?;
    let n = pred.len().max(1) as f32;
    let diff = pred.sub(target)?;
    let loss = diff.sq_norm() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[3, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2]).unwrap();
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_sums_to_zero_per_row() {
        let mut rng = Rng::new(0);
        let logits = Tensor::randn(&[2, 5], Init::He, &mut rng);
        let (_, grad) = softmax_cross_entropy(&logits, &[3, 1]).unwrap();
        for i in 0..2 {
            let row_sum: f32 = grad.data()[i * 5..(i + 1) * 5].iter().sum();
            assert!(row_sum.abs() < 1e-6);
        }
    }

    #[test]
    fn ce_gradcheck() {
        let mut rng = Rng::new(1);
        let logits = Tensor::randn(&[3, 4], Init::He, &mut rng);
        let labels = [0, 2, 3];
        let (a, n) = gradcheck::input_gradients(
            &logits,
            |l| Ok(softmax_cross_entropy(l, &labels)?.0),
            |l| Ok(softmax_cross_entropy(l, &labels)?.1),
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 1e-2);
    }

    #[test]
    fn ce_is_stable_for_huge_logits() {
        let logits = Tensor::from_vec(vec![1e4, -1e4], &[1, 2]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn ce_validates_inputs() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[6]), &[0]).is_err());
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.0, 5.0, 1.0, 1.0], &[2, 3]).unwrap();
        assert_eq!(accuracy(&logits, &[1, 0]).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &[0, 0]).unwrap(), 0.5);
        assert_eq!(correct_count(&logits, &[1, 0]).unwrap(), 2);
        assert_eq!(correct_count(&logits, &[0, 1]).unwrap(), 0);
    }

    #[test]
    fn mse_zero_when_equal() {
        let t = Tensor::ones(&[4]);
        let (loss, grad) = mse_loss(&t, &t).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn mse_gradcheck() {
        let mut rng = Rng::new(2);
        let pred = Tensor::randn(&[6], Init::Rand, &mut rng);
        let target = Tensor::randn(&[6], Init::Rand, &mut rng);
        let (a, n) = gradcheck::input_gradients(
            &pred,
            |p| Ok(mse_loss(p, &target)?.0),
            |p| Ok(mse_loss(p, &target)?.1),
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 1e-2);
    }

    #[test]
    fn mse_validates_shapes() {
        assert!(mse_loss(&Tensor::zeros(&[2]), &Tensor::zeros(&[3])).is_err());
    }
}
