//! Neural-network building blocks with hand-written backpropagation.
//!
//! This crate supplies everything the ALF training scheme needs from a deep
//! learning framework, implemented from scratch on top of
//! [`alf_tensor`]:
//!
//! * [`layer::Layer`] — the forward/backward/param-visitor contract.
//! * [`ctx::RunCtx`] — the per-run execution context every `forward`/
//!   `backward` call receives: the [`layer::Mode`], the shared scratch
//!   arena all layers draw from, and an optional per-layer profiler.
//! * [`conv::Conv2d`], [`linear::Linear`], [`norm::BatchNorm2d`],
//!   [`activation`] layers, [`pool`] layers and a [`seq::Sequential`]
//!   container.
//! * [`loss`] — softmax cross-entropy (`Ltask`'s data term) and MSE
//!   (`Lrec`, the autoencoder reconstruction loss).
//! * [`optim::Sgd`] — SGD with momentum and L2 weight decay, the optimizer
//!   used by both players of the two-player game, plus learning-rate
//!   schedules.
//! * [`ste`] — straight-through-estimator primitives (clipped mask gate,
//!   saturating identities) used by the ALF block.
//! * [`gradcheck`] — finite-difference gradient verification used by the
//!   test-suite to validate every backward pass.
//!
//! The crate deliberately has no autodiff tape: each layer caches what its
//! backward pass needs during `forward`, mirroring how the paper's method is
//! described (explicit gradients, Eq. 5/6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod conv;
pub mod ctx;
pub mod dropout;
pub mod gradcheck;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod optim;
pub mod pool;
pub mod seq;
pub mod ste;

pub use activation::{Activation, ActivationKind};
pub use conv::Conv2d;
pub use ctx::{LayerProfile, Pass, ProfileReport, Profiler, RunCtx};
pub use layer::{Layer, Mode, Param};
pub use linear::Linear;
pub use loss::{correct_count, mse_loss, softmax_cross_entropy};
pub use norm::BatchNorm2d;
pub use optim::{Adam, LrSchedule, Sgd};
pub use seq::Sequential;

/// Crate-wide result alias; all fallible layer operations yield
/// [`alf_tensor::ShapeError`].
pub type Result<T> = alf_tensor::Result<T>;
