//! Stochastic gradient descent with momentum, L2 weight decay and
//! learning-rate schedules.
//!
//! Both players of the ALF game use this optimizer: the *task optimizer*
//! (momentum + weight decay, stepped LR) and the per-block *autoencoder
//! optimizers* (plain SGD at `lrae`, per the paper §III-B).

use alf_tensor::Tensor;

use crate::layer::Param;

/// Learning-rate schedule evaluated per epoch.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    Step {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing from the base LR to `floor` over `total` epochs.
    Cosine {
        /// Total schedule horizon in epochs.
        total: usize,
        /// Final learning rate.
        floor: f32,
    },
}

impl LrSchedule {
    /// Learning rate at `epoch` (0-based) given the base rate.
    pub fn lr_at(&self, base: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::Step { every, gamma } => base * gamma.powi((epoch / every.max(1)) as i32),
            LrSchedule::Cosine { total, floor } => {
                if total == 0 {
                    return base;
                }
                let t = (epoch.min(total)) as f32 / total as f32;
                floor + 0.5 * (base - floor) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// SGD with momentum and L2 weight decay.
///
/// Velocity buffers are lazily created per parameter *slot* (visit order),
/// so the optimizer must always be driven over the same model structure —
/// which holds for every model in this workspace.
///
/// # Example
///
/// ```
/// use alf_nn::{optim::Sgd, Param};
/// use alf_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2]), false);
/// p.grad = Tensor::full(&[2], 0.5);
/// let mut sgd = Sgd::new(0.1, 0.0, 0.0);
/// sgd.begin_step();
/// sgd.update(&mut p);
/// assert_eq!(p.value.data(), &[0.95, 0.95]);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocities: Vec<Tensor>,
    cursor: usize,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics on negative hyper-parameters.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr >= 0.0 && momentum >= 0.0 && weight_decay >= 0.0);
        Self {
            lr,
            momentum,
            weight_decay,
            velocities: Vec::new(),
            cursor: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (used by schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr >= 0.0);
        self.lr = lr;
    }

    /// Starts a new optimizer step: resets the parameter cursor so the
    /// subsequent [`Sgd::update`] calls re-associate with their velocity
    /// slots.
    pub fn begin_step(&mut self) {
        self.cursor = 0;
    }

    /// The momentum (velocity) buffers in parameter-visit order — the
    /// optimizer state a trainer checkpoint must carry for a resumed run
    /// to continue the same trajectory. Empty before the first step.
    pub fn velocities(&self) -> &[Tensor] {
        &self.velocities
    }

    /// Replaces the momentum buffers (restoring from a checkpoint).
    ///
    /// An empty vector resets the optimizer to a fresh state; buffers are
    /// then lazily re-created on the next step. Shapes are re-validated
    /// against their parameters on the next [`Sgd::update`], which panics
    /// on mismatch — checkpoint loaders should validate against the model
    /// before calling this (see `alf_core::checkpoint::load_trainer`).
    pub fn set_velocities(&mut self, velocities: Vec<Tensor>) {
        self.velocities = velocities;
        self.cursor = 0;
    }

    /// Applies one SGD update to a parameter and advances the cursor.
    ///
    /// With momentum `μ`, decay `λ` and learning rate `η`:
    /// `v ← μ·v + g + λ·w` (if the param opts into decay), `w ← w − η·v`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter shape changed between steps.
    pub fn update(&mut self, param: &mut Param) {
        let slot = self.cursor;
        self.cursor += 1;
        if self.velocities.len() <= slot {
            self.velocities.push(Tensor::zeros(param.value.dims()));
        }
        let vel = &mut self.velocities[slot];
        assert_eq!(
            vel.dims(),
            param.value.dims(),
            "parameter shape changed between optimizer steps"
        );
        let decay = if param.decay { self.weight_decay } else { 0.0 };
        let (vd, gd, wd) = (vel.data_mut(), param.grad.data(), param.value.data_mut());
        for i in 0..wd.len() {
            let g = gd[i] + decay * wd[i];
            vd[i] = self.momentum * vd[i] + g;
            wd[i] -= self.lr * vd[i];
        }
    }

    /// [`Sgd::update`] with the gradient supplied externally instead of
    /// read from `param.grad` — the gradient-accumulation entry point used
    /// by the data-parallel engine, whose reduced gradient lives in one
    /// flat buffer rather than in the model's per-parameter `grad` fields.
    ///
    /// Performs bit-for-bit the same arithmetic as [`Sgd::update`], so a
    /// flat step over a layer is bitwise interchangeable with a regular
    /// one given equal gradients.
    ///
    /// # Panics
    ///
    /// Panics if `grad` does not match the parameter's length, or if the
    /// parameter shape changed between steps.
    pub fn update_from(&mut self, param: &mut Param, grad: &[f32]) {
        let slot = self.cursor;
        self.cursor += 1;
        if self.velocities.len() <= slot {
            self.velocities.push(Tensor::zeros(param.value.dims()));
        }
        let vel = &mut self.velocities[slot];
        assert_eq!(
            vel.dims(),
            param.value.dims(),
            "parameter shape changed between optimizer steps"
        );
        assert_eq!(grad.len(), param.value.len(), "gradient length mismatch");
        let decay = if param.decay { self.weight_decay } else { 0.0 };
        let (vd, wd) = (vel.data_mut(), param.value.data_mut());
        for i in 0..wd.len() {
            let g = grad[i] + decay * wd[i];
            vd[i] = self.momentum * vd[i] + g;
            wd[i] -= self.lr * vd[i];
        }
    }

    /// Convenience: runs a full step over a layer — `begin_step`, visit all
    /// params, update each.
    pub fn step_layer(&mut self, layer: &mut dyn crate::Layer) {
        self.begin_step();
        layer.visit_params(&mut |p| self.update(p));
    }

    /// Re-validates the velocity buffers against a layer whose parameter
    /// *shapes* may have changed in place (ALF block compaction shrinks
    /// the expansion weight and the inter-BN γ/β mid-training). Slots
    /// whose shape still matches keep their momentum; mismatched slots are
    /// zero-reset, restarting momentum for exactly the compacted
    /// parameters instead of panicking on the next step. Returns the
    /// number of slots reset.
    pub fn realign(&mut self, layer: &mut dyn crate::Layer) -> usize {
        let mut slot = 0usize;
        let mut reset = 0usize;
        layer.visit_params(&mut |p| {
            if let Some(vel) = self.velocities.get_mut(slot) {
                if vel.dims() != p.value.dims() {
                    *vel = Tensor::zeros(p.value.dims());
                    reset += 1;
                }
            }
            slot += 1;
        });
        // A structural change that altered the slot *count* would corrupt
        // every later association; drop the tail defensively.
        self.velocities.truncate(slot);
        reset
    }

    /// Runs a full step over a layer with gradients taken from `flat` — the
    /// concatenation of every parameter's gradient in visit order (the
    /// layout produced by flattening `visit_params_ref` grads, and by the
    /// data-parallel all-reduce).
    ///
    /// # Panics
    ///
    /// Panics if `flat` is not exactly the total parameter count.
    pub fn step_layer_from_flat(&mut self, layer: &mut dyn crate::Layer, flat: &[f32]) {
        self.begin_step();
        let mut offset = 0usize;
        layer.visit_params(&mut |p| {
            let n = p.value.len();
            assert!(
                offset + n <= flat.len(),
                "flat gradient too short: {} < {}",
                flat.len(),
                offset + n
            );
            self.update_from(p, &flat[offset..offset + n]);
            offset += n;
        });
        assert_eq!(
            offset,
            flat.len(),
            "flat gradient longer than the layer's parameters"
        );
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with optional L2 weight decay.
///
/// Provided as an alternative task optimizer for experimentation; the
/// paper's experiments (and this reproduction's defaults) use
/// SGD + momentum, but Adam is useful for the quick synthetic-task
/// studies where tuning a learning-rate schedule is not worth it.
///
/// # Example
///
/// ```
/// use alf_nn::{optim::Adam, Param};
/// use alf_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2]), false);
/// p.grad = Tensor::full(&[2], 1.0);
/// let mut adam = Adam::new(0.1, 0.0);
/// adam.begin_step();
/// adam.update(&mut p);
/// assert!(p.value.data()[0] < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u32,
    cursor: usize,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β₁ = 0.9, β₂ = 0.999,
    /// ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics on negative hyper-parameters.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr >= 0.0 && weight_decay >= 0.0);
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
            cursor: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr >= 0.0);
        self.lr = lr;
    }

    /// Starts a new step: advances the bias-correction clock and resets the
    /// parameter cursor.
    pub fn begin_step(&mut self) {
        self.t += 1;
        self.cursor = 0;
    }

    /// Applies one Adam update to a parameter and advances the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the parameter shape changed between steps.
    pub fn update(&mut self, param: &mut Param) {
        let slot = self.cursor;
        self.cursor += 1;
        if self.m.len() <= slot {
            self.m.push(Tensor::zeros(param.value.dims()));
            self.v.push(Tensor::zeros(param.value.dims()));
        }
        assert_eq!(
            self.m[slot].dims(),
            param.value.dims(),
            "parameter shape changed between optimizer steps"
        );
        let decay = if param.decay { self.weight_decay } else { 0.0 };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..param.value.len() {
            let g = param.grad.data()[i] + decay * param.value.data()[i];
            let m = &mut self.m[slot].data_mut()[i];
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            let m_hat = *m / bc1;
            let v = &mut self.v[slot].data_mut()[i];
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let v_hat = *v / bc2;
            param.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Convenience: runs a full step over a layer.
    pub fn step_layer(&mut self, layer: &mut dyn crate::Layer) {
        self.begin_step();
        layer.visit_params(&mut |p| self.update(p));
    }
}

/// Scales all gradients of a layer so their global L2 norm is at most
/// `max_norm`, returning the pre-clip norm. A standard guard against the
/// occasional exploding batch on deep plain networks.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(layer: &mut dyn crate::Layer, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f32;
    layer.visit_params(&mut |p| sq += p.grad.sq_norm());
    let norm = sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        layer.visit_params(&mut |p| p.grad.scale_inplace(scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Param;

    fn param_with_grad(value: f32, grad: f32, decay: bool) -> Param {
        let mut p = Param::new(Tensor::full(&[1], value), decay);
        p.grad = Tensor::full(&[1], grad);
        p
    }

    #[test]
    fn plain_sgd_descends() {
        let mut p = param_with_grad(1.0, 1.0, false);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.begin_step();
        opt.update(&mut p);
        assert!((p.value.data()[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let mut p = param_with_grad(0.0, 1.0, false);
        let mut opt = Sgd::new(1.0, 0.9, 0.0);
        for _ in 0..2 {
            opt.begin_step();
            p.grad = Tensor::full(&[1], 1.0);
            opt.update(&mut p);
        }
        // Step 1: v=1, w=-1. Step 2: v=1.9, w=-2.9.
        assert!((p.value.data()[0] + 2.9).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_respects_param_flag() {
        let mut decayed = param_with_grad(1.0, 0.0, true);
        let mut plain = param_with_grad(1.0, 0.0, false);
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        opt.begin_step();
        opt.update(&mut decayed);
        opt.update(&mut plain);
        assert!((decayed.value.data()[0] - 0.95).abs() < 1e-6);
        assert_eq!(plain.value.data()[0], 1.0);
    }

    #[test]
    fn velocity_slots_follow_visit_order() {
        let mut a = param_with_grad(0.0, 1.0, false);
        let mut b = param_with_grad(0.0, -1.0, false);
        let mut opt = Sgd::new(1.0, 0.9, 0.0);
        for _ in 0..2 {
            opt.begin_step();
            a.grad = Tensor::full(&[1], 1.0);
            b.grad = Tensor::full(&[1], -1.0);
            opt.update(&mut a);
            opt.update(&mut b);
        }
        // Symmetric trajectories prove the slots didn't cross.
        assert!((a.value.data()[0] + b.value.data()[0]).abs() < 1e-6);
    }

    #[test]
    fn flat_step_is_bitwise_identical_to_regular_step() {
        use crate::linear::Linear;
        use crate::Layer;
        use alf_tensor::init::Init;
        use alf_tensor::rng::Rng;
        let mut rng = Rng::new(3);
        let mut a = Linear::new(4, 3, Init::Rand, &mut rng);
        let mut b = a.clone();
        // Fill grads with distinct values and capture the flat layout.
        let mut flat = Vec::new();
        let mut i = 0f32;
        a.visit_params(&mut |p| {
            for g in p.grad.data_mut() {
                *g = (i * 0.37).sin();
                i += 1.0;
            }
            flat.extend_from_slice(p.grad.data());
        });
        let mut opt_a = Sgd::new(0.1, 0.9, 1e-2);
        let mut opt_b = opt_a.clone();
        // Two steps so momentum buffers participate.
        for _ in 0..2 {
            opt_a.step_layer(&mut a);
            opt_b.step_layer_from_flat(&mut b, &flat);
        }
        let mut wa = Vec::new();
        a.visit_params_ref(&mut |p| wa.extend_from_slice(p.value.data()));
        let mut wb = Vec::new();
        b.visit_params_ref(&mut |p| wb.extend_from_slice(p.value.data()));
        assert_eq!(wa, wb);
        // Velocities agree too (the checkpointable optimizer state).
        assert_eq!(opt_a.velocities(), opt_b.velocities());
    }

    #[test]
    fn velocities_round_trip_resumes_the_trajectory() {
        let mut p_full = param_with_grad(1.0, 1.0, false);
        let mut opt_full = Sgd::new(0.1, 0.9, 0.0);
        // Reference: three consecutive steps.
        for _ in 0..3 {
            p_full.grad = Tensor::full(&[1], 1.0);
            opt_full.begin_step();
            opt_full.update(&mut p_full);
        }
        // Interrupted: one step, save velocities + weights, restore into a
        // fresh optimizer, run the remaining two steps.
        let mut p = param_with_grad(1.0, 1.0, false);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        opt.begin_step();
        opt.update(&mut p);
        let saved = opt.velocities().to_vec();
        let mut resumed = Sgd::new(0.1, 0.9, 0.0);
        resumed.set_velocities(saved);
        for _ in 0..2 {
            p.grad = Tensor::full(&[1], 1.0);
            resumed.begin_step();
            resumed.update(&mut p);
        }
        assert_eq!(p.value.data(), p_full.value.data());
        assert_eq!(resumed.velocities(), opt_full.velocities());
    }

    #[test]
    #[should_panic(expected = "flat gradient")]
    fn flat_step_rejects_wrong_length() {
        use crate::linear::Linear;
        use alf_tensor::init::Init;
        use alf_tensor::rng::Rng;
        let mut fc = Linear::new(2, 2, Init::Rand, &mut Rng::new(0));
        Sgd::new(0.1, 0.0, 0.0).step_layer_from_flat(&mut fc, &[0.0; 3]);
    }

    #[test]
    fn quadratic_converges() {
        // minimise 0.5·(w − 3)²
        let mut p = Param::new(Tensor::zeros(&[1]), false);
        let mut opt = Sgd::new(0.2, 0.5, 0.0);
        for _ in 0..100 {
            p.grad = Tensor::full(&[1], p.value.data()[0] - 3.0);
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!((p.value.data()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn step_schedule_decays() {
        let s = LrSchedule::Step {
            every: 10,
            gamma: 0.1,
        };
        assert_eq!(s.lr_at(1.0, 0), 1.0);
        assert!((s.lr_at(1.0, 10) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(1.0, 25) - 0.01).abs() < 1e-7);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = LrSchedule::Cosine {
            total: 100,
            floor: 0.01,
        };
        assert!((s.lr_at(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(1.0, 100) - 0.01).abs() < 1e-6);
        assert!((s.lr_at(1.0, 200) - 0.01).abs() < 1e-6); // clamped
    }

    #[test]
    fn constant_schedule() {
        assert_eq!(LrSchedule::Constant.lr_at(0.3, 57), 0.3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimise 0.5·(w − 3)²
        let mut p = Param::new(Tensor::zeros(&[1]), false);
        let mut adam = Adam::new(0.3, 0.0);
        for _ in 0..200 {
            p.grad = Tensor::full(&[1], p.value.data()[0] - 3.0);
            adam.begin_step();
            adam.update(&mut p);
        }
        assert!((p.value.data()[0] - 3.0).abs() < 1e-2, "{:?}", p.value);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the first Adam step is ≈ lr regardless of
        // gradient scale.
        for g in [0.01f32, 1.0, 100.0] {
            let mut p = Param::new(Tensor::zeros(&[1]), false);
            p.grad = Tensor::full(&[1], g);
            let mut adam = Adam::new(0.1, 0.0);
            adam.begin_step();
            adam.update(&mut p);
            assert!(
                (p.value.data()[0] + 0.1).abs() < 1e-3,
                "grad {g}: step {}",
                p.value.data()[0]
            );
        }
    }

    #[test]
    fn realign_resets_only_shape_changed_velocities() {
        use crate::linear::Linear;
        use crate::Layer;
        use alf_tensor::init::Init;
        use alf_tensor::rng::Rng;
        let mut fc = Linear::new(3, 2, Init::Rand, &mut Rng::new(7));
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        fc.visit_params(&mut |p| p.grad = Tensor::full(p.value.dims(), 1.0));
        sgd.step_layer(&mut fc);
        let vel_before: Vec<Tensor> = sgd.velocities().to_vec();
        assert!(vel_before.iter().any(|v| v.sq_norm() > 0.0));

        // No shape change: realign is a no-op and momentum is preserved.
        assert_eq!(sgd.realign(&mut fc), 0);
        for (a, b) in sgd.velocities().iter().zip(vel_before.iter()) {
            assert_eq!(a.data(), b.data());
        }

        // Shrink the layer in place (compaction analogue): the weight slot
        // changes shape and must be zero-reset, the bias slot keeps its
        // momentum.
        let mut small = Linear::new(2, 2, Init::Rand, &mut Rng::new(8));
        assert_eq!(sgd.realign(&mut small), 1);
        assert_eq!(sgd.velocities()[0].dims(), &[2, 2]);
        assert_eq!(sgd.velocities()[0].sq_norm(), 0.0);
        assert_eq!(sgd.velocities()[1].data(), vel_before[1].data());
        // And the next step must not panic on the new shapes.
        small.visit_params(&mut |p| p.grad = Tensor::full(p.value.dims(), 1.0));
        sgd.step_layer(&mut small);
    }

    #[test]
    fn adam_weight_decay_respects_flag() {
        let mut decayed = param_with_grad(1.0, 0.0, true);
        let mut plain = param_with_grad(1.0, 0.0, false);
        let mut adam = Adam::new(0.1, 0.5);
        adam.begin_step();
        adam.update(&mut decayed);
        adam.update(&mut plain);
        assert!(decayed.value.data()[0] < 1.0);
        assert_eq!(plain.value.data()[0], 1.0);
    }

    #[test]
    fn clip_grad_norm_scales_down_only_when_needed() {
        use crate::linear::Linear;
        use crate::Layer;
        use alf_tensor::init::Init;
        use alf_tensor::rng::Rng;
        let mut fc = Linear::new(3, 2, Init::Rand, &mut Rng::new(0));
        fc.visit_params(&mut |p| p.grad = Tensor::full(p.value.dims(), 10.0));
        let before = clip_grad_norm(&mut fc, 1.0);
        assert!(before > 1.0);
        let mut sq = 0.0;
        fc.visit_params(&mut |p| sq += p.grad.sq_norm());
        assert!((sq.sqrt() - 1.0).abs() < 1e-4);
        // Below the bound: untouched.
        let after = clip_grad_norm(&mut fc, 10.0);
        assert!((after - 1.0).abs() < 1e-4);
        let mut sq2 = 0.0;
        fc.visit_params(&mut |p| sq2 += p.grad.sq_norm());
        assert!((sq2.sqrt() - 1.0).abs() < 1e-4);
    }
}
