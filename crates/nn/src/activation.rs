//! Pointwise non-linearities.
//!
//! The paper's design-space exploration (§IV-A) compares `tanh`, `sigmoid`
//! and `ReLU` as the autoencoder activation `σae`, and `ReLU`/none as the
//! intermediate activation `σinter`; all three are provided both as
//! [`Layer`]s and as pure scalar functions with derivatives (the ALF block
//! applies `σae` to weight tensors directly).

use alf_tensor::Tensor;

use crate::ctx::RunCtx;
use crate::layer::{missing_cache, Layer, Mode};
use crate::Result;

/// Which pointwise non-linearity to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Hyperbolic tangent — the paper's choice for `σae`.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (the "none" configuration in Fig. 2a/2b).
    Identity,
}

impl ActivationKind {
    /// Applies the function to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationKind::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)`.
    ///
    /// All four supported functions admit this form, which lets layers cache
    /// only their output.
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            ActivationKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Tanh => 1.0 - y * y,
            ActivationKind::Sigmoid => y * (1.0 - y),
            ActivationKind::Identity => 1.0,
        }
    }

    /// Applies the function to every element of a tensor.
    pub fn apply_tensor(self, t: &Tensor) -> Tensor {
        t.map(|x| self.apply(x))
    }

    /// Short lowercase label used in experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            ActivationKind::Relu => "relu",
            ActivationKind::Tanh => "tanh",
            ActivationKind::Sigmoid => "sigmoid",
            ActivationKind::Identity => "none",
        }
    }
}

impl std::fmt::Display for ActivationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Stateless activation layer.
///
/// # Example
///
/// ```
/// use alf_nn::{Activation, ActivationKind, Layer, RunCtx};
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut ctx = RunCtx::eval();
/// let mut tanh = Activation::new(ActivationKind::Tanh);
/// let y = tanh.forward(&Tensor::full(&[1], 100.0), &mut ctx)?;
/// assert!((y.data()[0] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActivationKind,
    output: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self { kind, output: None }
    }

    /// The configured non-linearity.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let out = self.kind.apply_tensor(input);
        ctx.count_flops(input.len() as u64);
        ctx.count_bytes(4 * 2 * input.len() as u64);
        if ctx.mode() == Mode::Train {
            // Reuse the cached output tensor when the shape matches so the
            // steady-state step stays allocation-free here.
            match self.output.as_mut() {
                Some(cached) if cached.dims() == out.dims() => {
                    cached.data_mut().copy_from_slice(out.data());
                }
                _ => self.output = Some(out.clone()),
            }
        } else {
            self.output = None;
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let out = self
            .output
            .as_ref()
            .ok_or_else(|| missing_cache("activation"))?;
        ctx.count_flops(2 * grad_output.len() as u64);
        ctx.count_bytes(4 * 3 * grad_output.len() as u64);
        grad_output.zip_map(out, |g, y| g * self.kind.derivative_from_output(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    #[test]
    fn scalar_values() {
        assert_eq!(ActivationKind::Relu.apply(-3.0), 0.0);
        assert_eq!(ActivationKind::Relu.apply(3.0), 3.0);
        assert!((ActivationKind::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
        assert_eq!(ActivationKind::Tanh.apply(0.0), 0.0);
        assert_eq!(ActivationKind::Identity.apply(7.5), 7.5);
    }

    #[test]
    fn derivatives_from_output() {
        // tanh'(0) = 1, sigmoid'(0) = 0.25
        assert_eq!(ActivationKind::Tanh.derivative_from_output(0.0), 1.0);
        assert_eq!(ActivationKind::Sigmoid.derivative_from_output(0.5), 0.25);
        assert_eq!(ActivationKind::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(ActivationKind::Identity.derivative_from_output(123.0), 1.0);
    }

    #[test]
    fn all_kinds_pass_gradcheck() {
        let mut rng = Rng::new(3);
        for kind in [
            ActivationKind::Tanh,
            ActivationKind::Sigmoid,
            ActivationKind::Identity,
        ] {
            let x = Tensor::randn(&[2, 5], Init::Rand, &mut rng);
            let (a, n) = gradcheck::input_gradients(
                &x,
                |x| {
                    let mut ctx = RunCtx::train();
                    let mut l = Activation::new(kind);
                    let y = l.forward(x, &mut ctx)?;
                    Ok(y.sum())
                },
                |x| {
                    let mut ctx = RunCtx::train();
                    let mut l = Activation::new(kind);
                    l.forward(x, &mut ctx)?;
                    l.backward(&Tensor::ones(x.dims()), &mut ctx)
                },
            )
            .unwrap();
            gradcheck::assert_close(&a, &n, 1e-2);
        }
    }

    #[test]
    fn relu_gradcheck_away_from_kink() {
        // ReLU is non-differentiable at 0; probe at values far from it.
        let x = Tensor::from_vec(vec![-2.0, -0.7, 0.9, 3.0], &[4]).unwrap();
        let (a, n) = gradcheck::input_gradients(
            &x,
            |x| {
                let mut ctx = RunCtx::train();
                let mut l = Activation::new(ActivationKind::Relu);
                Ok(l.forward(x, &mut ctx)?.sum())
            },
            |x| {
                let mut ctx = RunCtx::train();
                let mut l = Activation::new(ActivationKind::Relu);
                l.forward(x, &mut ctx)?;
                l.backward(&Tensor::ones(x.dims()), &mut ctx)
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 1e-2);
    }

    #[test]
    fn backward_requires_forward() {
        let mut ctx = RunCtx::train();
        let mut l = Activation::new(ActivationKind::Relu);
        assert!(l.backward(&Tensor::zeros(&[1]), &mut ctx).is_err());
    }

    #[test]
    fn cached_output_buffer_is_reused() {
        let mut ctx = RunCtx::train();
        let mut l = Activation::new(ActivationKind::Tanh);
        let x = Tensor::full(&[2, 3], 0.5);
        l.forward(&x, &mut ctx).unwrap();
        let ptr_before = l.output.as_ref().unwrap().data().as_ptr();
        l.forward(&x, &mut ctx).unwrap();
        let ptr_after = l.output.as_ref().unwrap().data().as_ptr();
        assert_eq!(ptr_before, ptr_after);
    }

    #[test]
    fn labels() {
        assert_eq!(ActivationKind::Identity.label(), "none");
        assert_eq!(ActivationKind::Tanh.to_string(), "tanh");
    }

    #[test]
    fn activation_has_no_params() {
        assert_eq!(Activation::new(ActivationKind::Relu).param_count(), 0);
    }
}
