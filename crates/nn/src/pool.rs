//! Pooling layers: global average pooling (the head of ResNet/Plain
//! networks) and max pooling (used by the ImageNet-geometry models).

use alf_tensor::{ShapeError, Tensor};

use crate::ctx::RunCtx;
use crate::layer::{missing_cache, Layer, Mode};
use crate::Result;

/// Global average pooling: `[n, c, h, w] → [n, c]`.
///
/// # Example
///
/// ```
/// use alf_nn::{pool::GlobalAvgPool, Layer, RunCtx};
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut ctx = RunCtx::eval();
/// let mut gap = GlobalAvgPool::new();
/// let y = gap.forward(&Tensor::full(&[1, 2, 4, 4], 3.0), &mut ctx)?;
/// assert_eq!(y.data(), &[3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_dims: Option<[usize; 4]>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let [n, c, h, w] = rank4("global_avg_pool", input)?;
        let hw = (h * w) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        for b in 0..n {
            for ch in 0..c {
                let plane = &input.data()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                out.data_mut()[b * c + ch] = plane.iter().sum::<f32>() / hw;
            }
        }
        ctx.count_flops(input.len() as u64);
        ctx.count_bytes(4 * (input.len() + n * c) as u64);
        self.input_dims = (ctx.mode() == Mode::Train).then_some([n, c, h, w]);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let [n, c, h, w] = self
            .input_dims
            .ok_or_else(|| missing_cache("global_avg_pool"))?;
        ctx.count_flops((n * c * h * w) as u64);
        ctx.count_bytes(4 * (n * c * h * w + n * c) as u64);
        if grad_output.dims() != [n, c] {
            return Err(ShapeError::new(
                "global_avg_pool backward",
                format!("grad {}", grad_output.shape()),
            ));
        }
        let hw = (h * w) as f32;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        for b in 0..n {
            for ch in 0..c {
                let g = grad_output.data()[b * c + ch] / hw;
                for v in &mut grad_in.data_mut()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w] {
                    *v = g;
                }
            }
        }
        Ok(grad_in)
    }
}

/// Max pooling with square window and equal stride (window = stride,
/// the common "downsample by k" configuration).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    argmax: Option<(Vec<usize>, [usize; 4])>,
    /// Retired argmax buffer, kept so consecutive training steps reuse
    /// one allocation instead of growing a fresh `Vec` each forward.
    spare: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given square window/stride.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            argmax: None,
            spare: Vec::new(),
        }
    }

    /// Window (and stride) size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let [n, c, h, w] = rank4("max_pool2d", input)?;
        let k = self.window;
        if h < k || w < k {
            return Err(ShapeError::new(
                "max_pool2d",
                format!("input {h}x{w} smaller than window {k}"),
            ));
        }
        let (ho, wo) = (h / k, w / k);
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        let mut argmax = match self.argmax.take() {
            Some((buf, _)) => buf,
            None => std::mem::take(&mut self.spare),
        };
        argmax.resize(n * c * ho * wo, 0);
        for b in 0..n {
            for ch in 0..c {
                let plane = &input.data()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..k {
                            for dx in 0..k {
                                let idx = (oy * k + dy) * w + ox * k + dx;
                                if plane[idx] > best {
                                    best = plane[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((b * c + ch) * ho + oy) * wo + ox;
                        out.data_mut()[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        ctx.count_flops(input.len() as u64);
        ctx.count_bytes(4 * (input.len() + n * c * ho * wo) as u64);
        if ctx.mode() == Mode::Train {
            self.argmax = Some((argmax, [n, c, h, w]));
        } else {
            self.spare = argmax;
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let (argmax, [n, c, h, w]) = self
            .argmax
            .as_ref()
            .ok_or_else(|| missing_cache("max_pool2d"))?;
        ctx.count_flops((n * c * h * w) as u64);
        ctx.count_bytes(4 * (n * c * h * w) as u64);
        let k = self.window;
        let (ho, wo) = (h / k, w / k);
        if grad_output.dims() != [*n, *c, ho, wo] {
            return Err(ShapeError::new(
                "max_pool2d backward",
                format!("grad {}", grad_output.shape()),
            ));
        }
        let mut grad_in = Tensor::zeros(&[*n, *c, *h, *w]);
        for b in 0..*n {
            for ch in 0..*c {
                let plane_base = (b * c + ch) * h * w;
                for o_local in 0..ho * wo {
                    let o = (b * c + ch) * ho * wo + o_local;
                    grad_in.data_mut()[plane_base + argmax[o]] += grad_output.data()[o];
                }
            }
        }
        Ok(grad_in)
    }
}

/// Average pooling with square window and equal stride.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    input_dims: Option<[usize; 4]>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with the given square window/stride.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            input_dims: None,
        }
    }

    /// Window (and stride) size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let [n, c, h, w] = rank4("avg_pool2d", input)?;
        let k = self.window;
        if h < k || w < k {
            return Err(ShapeError::new(
                "avg_pool2d",
                format!("input {h}x{w} smaller than window {k}"),
            ));
        }
        let (ho, wo) = (h / k, w / k);
        let inv = 1.0 / (k * k) as f32;
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        for b in 0..n {
            for ch in 0..c {
                let plane = &input.data()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0;
                        for dy in 0..k {
                            for dx in 0..k {
                                acc += plane[(oy * k + dy) * w + ox * k + dx];
                            }
                        }
                        *out.at_mut(&[b, ch, oy, ox]) = acc * inv;
                    }
                }
            }
        }
        ctx.count_flops(input.len() as u64);
        ctx.count_bytes(4 * (input.len() + n * c * ho * wo) as u64);
        self.input_dims = (ctx.mode() == Mode::Train).then_some([n, c, h, w]);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let [n, c, h, w] = self.input_dims.ok_or_else(|| missing_cache("avg_pool2d"))?;
        ctx.count_flops((n * c * h * w) as u64);
        ctx.count_bytes(4 * (n * c * h * w) as u64);
        let k = self.window;
        let (ho, wo) = (h / k, w / k);
        if grad_output.dims() != [n, c, ho, wo] {
            return Err(ShapeError::new(
                "avg_pool2d backward",
                format!("grad {}", grad_output.shape()),
            ));
        }
        let inv = 1.0 / (k * k) as f32;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let g = grad_output.at(&[b, ch, oy, ox]) * inv;
                        for dy in 0..k {
                            for dx in 0..k {
                                *grad_in.at_mut(&[b, ch, oy * k + dy, ox * k + dx]) += g;
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }
}

/// Flattens `[n, c, h, w]` (or any rank ≥ 2) into `[n, rest]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        if input.shape().rank() < 2 {
            return Err(ShapeError::new(
                "flatten",
                format!("expected rank ≥ 2, got {}", input.shape()),
            ));
        }
        let n = input.dims()[0];
        let rest = input.len() / n;
        self.input_dims = (ctx.mode() == Mode::Train).then(|| input.dims().to_vec());
        input.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_output: &Tensor, _ctx: &mut RunCtx) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or_else(|| missing_cache("flatten"))?;
        grad_output.reshape(dims)
    }
}

fn rank4(op: &str, t: &Tensor) -> Result<[usize; 4]> {
    match t.dims() {
        &[a, b, c, d] => Ok([a, b, c, d]),
        _ => Err(ShapeError::new(
            op,
            format!("expected rank-4 tensor, got {}", t.shape()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    #[test]
    fn gap_averages_planes() {
        let mut ctx = RunCtx::eval();
        let x = Tensor::from_fn(&[1, 1, 2, 2], |i| i as f32);
        let mut gap = GlobalAvgPool::new();
        let y = gap.forward(&x, &mut ctx).unwrap();
        assert_eq!(y.data(), &[1.5]);
    }

    #[test]
    fn gap_backward_spreads_uniformly() {
        let mut ctx = RunCtx::train();
        let mut gap = GlobalAvgPool::new();
        gap.forward(&Tensor::zeros(&[1, 1, 2, 2]), &mut ctx)
            .unwrap();
        let g = gap
            .backward(&Tensor::from_vec(vec![4.0], &[1, 1]).unwrap(), &mut ctx)
            .unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn gap_gradcheck() {
        let mut rng = Rng::new(0);
        let x = Tensor::randn(&[2, 3, 3, 3], Init::Rand, &mut rng);
        let (a, n) = gradcheck::input_gradients(
            &x,
            |x| {
                let mut ctx = RunCtx::train();
                let mut l = GlobalAvgPool::new();
                let y = l.forward(x, &mut ctx)?;
                Ok(0.5 * y.sq_norm())
            },
            |x| {
                let mut ctx = RunCtx::train();
                let mut l = GlobalAvgPool::new();
                let y = l.forward(x, &mut ctx)?;
                l.backward(&y, &mut ctx)
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 1e-2);
    }

    #[test]
    fn maxpool_selects_max() {
        let mut ctx = RunCtx::train();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut mp = MaxPool2d::new(2);
        let y = mp.forward(&x, &mut ctx).unwrap();
        assert_eq!(y.data(), &[4.0]);
        let g = mp
            .backward(
                &Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]).unwrap(),
                &mut ctx,
            )
            .unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_rejects_small_input() {
        let mut ctx = RunCtx::eval();
        let mut mp = MaxPool2d::new(3);
        assert!(mp.forward(&Tensor::zeros(&[1, 1, 2, 2]), &mut ctx).is_err());
    }

    #[test]
    fn maxpool_reuses_argmax_buffer() {
        let mut ctx = RunCtx::train();
        let x = Tensor::from_fn(&[2, 2, 4, 4], |i| i as f32);
        let mut mp = MaxPool2d::new(2);
        let y = mp.forward(&x, &mut ctx).unwrap();
        mp.backward(&y, &mut ctx).unwrap();
        let ptr_before = mp.argmax.as_ref().unwrap().0.as_ptr();
        let y = mp.forward(&x, &mut ctx).unwrap();
        mp.backward(&y, &mut ctx).unwrap();
        let ptr_after = mp.argmax.as_ref().unwrap().0.as_ptr();
        assert_eq!(ptr_before, ptr_after, "argmax buffer was reallocated");
    }

    #[test]
    fn avgpool_averages_windows() {
        let mut ctx = RunCtx::train();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut ap = AvgPool2d::new(2);
        let y = ap.forward(&x, &mut ctx).unwrap();
        assert_eq!(y.data(), &[2.5]);
        let g = ap
            .backward(
                &Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap(),
                &mut ctx,
            )
            .unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avgpool_gradcheck() {
        let mut rng = Rng::new(4);
        let x = Tensor::randn(&[1, 2, 4, 4], Init::Rand, &mut rng);
        let (a, n) = gradcheck::input_gradients(
            &x,
            |x| {
                let mut ctx = RunCtx::train();
                let mut l = AvgPool2d::new(2);
                let y = l.forward(x, &mut ctx)?;
                Ok(0.5 * y.sq_norm())
            },
            |x| {
                let mut ctx = RunCtx::train();
                let mut l = AvgPool2d::new(2);
                let y = l.forward(x, &mut ctx)?;
                l.backward(&y, &mut ctx)
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 1e-2);
    }

    #[test]
    fn avgpool_rejects_small_input() {
        let mut ctx = RunCtx::eval();
        let mut ap = AvgPool2d::new(3);
        assert!(ap.forward(&Tensor::zeros(&[1, 1, 2, 2]), &mut ctx).is_err());
        assert!(ap
            .backward(&Tensor::zeros(&[1, 1, 1, 1]), &mut ctx)
            .is_err());
    }

    #[test]
    fn flatten_round_trips() {
        let mut ctx = RunCtx::train();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let mut fl = Flatten::new();
        let y = fl.forward(&x, &mut ctx).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let g = fl.backward(&y, &mut ctx).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn backward_requires_forward() {
        let mut ctx = RunCtx::train();
        assert!(GlobalAvgPool::new()
            .backward(&Tensor::zeros(&[1, 1]), &mut ctx)
            .is_err());
        assert!(MaxPool2d::new(2)
            .backward(&Tensor::zeros(&[1, 1, 1, 1]), &mut ctx)
            .is_err());
        assert!(Flatten::new()
            .backward(&Tensor::zeros(&[1, 1]), &mut ctx)
            .is_err());
    }
}
