//! Pooling layers: global average pooling (the head of ResNet/Plain
//! networks) and max pooling (used by the ImageNet-geometry models).

use alf_tensor::{ShapeError, Tensor};

use crate::layer::{missing_cache, Layer, Mode};
use crate::Result;

/// Global average pooling: `[n, c, h, w] → [n, c]`.
///
/// # Example
///
/// ```
/// use alf_nn::{pool::GlobalAvgPool, Layer, Mode};
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut gap = GlobalAvgPool::new();
/// let y = gap.forward(&Tensor::full(&[1, 2, 4, 4], 3.0), Mode::Eval)?;
/// assert_eq!(y.data(), &[3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_dims: Option<[usize; 4]>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let [n, c, h, w] = rank4("global_avg_pool", input)?;
        let hw = (h * w) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        for b in 0..n {
            for ch in 0..c {
                let plane = &input.data()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                out.data_mut()[b * c + ch] = plane.iter().sum::<f32>() / hw;
            }
        }
        self.input_dims = (mode == Mode::Train).then_some([n, c, h, w]);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let [n, c, h, w] = self
            .input_dims
            .ok_or_else(|| missing_cache("global_avg_pool"))?;
        if grad_output.dims() != [n, c] {
            return Err(ShapeError::new(
                "global_avg_pool backward",
                format!("grad {}", grad_output.shape()),
            ));
        }
        let hw = (h * w) as f32;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        for b in 0..n {
            for ch in 0..c {
                let g = grad_output.data()[b * c + ch] / hw;
                for v in
                    &mut grad_in.data_mut()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w]
                {
                    *v = g;
                }
            }
        }
        Ok(grad_in)
    }
}

/// Max pooling with square window and equal stride (window = stride,
/// the common "downsample by k" configuration).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    argmax: Option<(Vec<usize>, [usize; 4])>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given square window/stride.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            argmax: None,
        }
    }

    /// Window (and stride) size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let [n, c, h, w] = rank4("max_pool2d", input)?;
        let k = self.window;
        if h < k || w < k {
            return Err(ShapeError::new(
                "max_pool2d",
                format!("input {h}x{w} smaller than window {k}"),
            ));
        }
        let (ho, wo) = (h / k, w / k);
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        let mut argmax = vec![0usize; n * c * ho * wo];
        for b in 0..n {
            for ch in 0..c {
                let plane = &input.data()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..k {
                            for dx in 0..k {
                                let idx = (oy * k + dy) * w + ox * k + dx;
                                if plane[idx] > best {
                                    best = plane[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((b * c + ch) * ho + oy) * wo + ox;
                        out.data_mut()[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        self.argmax = (mode == Mode::Train).then_some((argmax, [n, c, h, w]));
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (argmax, [n, c, h, w]) = self
            .argmax
            .as_ref()
            .ok_or_else(|| missing_cache("max_pool2d"))?;
        let k = self.window;
        let (ho, wo) = (h / k, w / k);
        if grad_output.dims() != [*n, *c, ho, wo] {
            return Err(ShapeError::new(
                "max_pool2d backward",
                format!("grad {}", grad_output.shape()),
            ));
        }
        let mut grad_in = Tensor::zeros(&[*n, *c, *h, *w]);
        for b in 0..*n {
            for ch in 0..*c {
                let plane_base = (b * c + ch) * h * w;
                for o_local in 0..ho * wo {
                    let o = (b * c + ch) * ho * wo + o_local;
                    grad_in.data_mut()[plane_base + argmax[o]] += grad_output.data()[o];
                }
            }
        }
        Ok(grad_in)
    }
}

/// Average pooling with square window and equal stride.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    input_dims: Option<[usize; 4]>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with the given square window/stride.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            input_dims: None,
        }
    }

    /// Window (and stride) size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let [n, c, h, w] = rank4("avg_pool2d", input)?;
        let k = self.window;
        if h < k || w < k {
            return Err(ShapeError::new(
                "avg_pool2d",
                format!("input {h}x{w} smaller than window {k}"),
            ));
        }
        let (ho, wo) = (h / k, w / k);
        let inv = 1.0 / (k * k) as f32;
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        for b in 0..n {
            for ch in 0..c {
                let plane = &input.data()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0;
                        for dy in 0..k {
                            for dx in 0..k {
                                acc += plane[(oy * k + dy) * w + ox * k + dx];
                            }
                        }
                        *out.at_mut(&[b, ch, oy, ox]) = acc * inv;
                    }
                }
            }
        }
        self.input_dims = (mode == Mode::Train).then_some([n, c, h, w]);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let [n, c, h, w] = self
            .input_dims
            .ok_or_else(|| missing_cache("avg_pool2d"))?;
        let k = self.window;
        let (ho, wo) = (h / k, w / k);
        if grad_output.dims() != [n, c, ho, wo] {
            return Err(ShapeError::new(
                "avg_pool2d backward",
                format!("grad {}", grad_output.shape()),
            ));
        }
        let inv = 1.0 / (k * k) as f32;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let g = grad_output.at(&[b, ch, oy, ox]) * inv;
                        for dy in 0..k {
                            for dx in 0..k {
                                *grad_in.at_mut(&[b, ch, oy * k + dy, ox * k + dx]) += g;
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }
}

/// Flattens `[n, c, h, w]` (or any rank ≥ 2) into `[n, rest]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.shape().rank() < 2 {
            return Err(ShapeError::new(
                "flatten",
                format!("expected rank ≥ 2, got {}", input.shape()),
            ));
        }
        let n = input.dims()[0];
        let rest = input.len() / n;
        self.input_dims = (mode == Mode::Train).then(|| input.dims().to_vec());
        input.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or_else(|| missing_cache("flatten"))?;
        grad_output.reshape(dims)
    }
}

fn rank4(op: &str, t: &Tensor) -> Result<[usize; 4]> {
    match t.dims() {
        &[a, b, c, d] => Ok([a, b, c, d]),
        _ => Err(ShapeError::new(
            op,
            format!("expected rank-4 tensor, got {}", t.shape()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    #[test]
    fn gap_averages_planes() {
        let x = Tensor::from_fn(&[1, 1, 2, 2], |i| i as f32);
        let mut gap = GlobalAvgPool::new();
        let y = gap.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), &[1.5]);
    }

    #[test]
    fn gap_backward_spreads_uniformly() {
        let mut gap = GlobalAvgPool::new();
        gap.forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Train)
            .unwrap();
        let g = gap
            .backward(&Tensor::from_vec(vec![4.0], &[1, 1]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn gap_gradcheck() {
        let mut rng = Rng::new(0);
        let x = Tensor::randn(&[2, 3, 3, 3], Init::Rand, &mut rng);
        let (a, n) = gradcheck::input_gradients(
            &x,
            |x| {
                let mut l = GlobalAvgPool::new();
                let y = l.forward(x, Mode::Train)?;
                Ok(0.5 * y.sq_norm())
            },
            |x| {
                let mut l = GlobalAvgPool::new();
                let y = l.forward(x, Mode::Train)?;
                l.backward(&y)
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 1e-2);
    }

    #[test]
    fn maxpool_selects_max() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut mp = MaxPool2d::new(2);
        let y = mp.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[4.0]);
        let g = mp
            .backward(&Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_rejects_small_input() {
        let mut mp = MaxPool2d::new(3);
        assert!(mp.forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Eval).is_err());
    }

    #[test]
    fn avgpool_averages_windows() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut ap = AvgPool2d::new(2);
        let y = ap.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[2.5]);
        let g = ap
            .backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avgpool_gradcheck() {
        let mut rng = Rng::new(4);
        let x = Tensor::randn(&[1, 2, 4, 4], Init::Rand, &mut rng);
        let (a, n) = gradcheck::input_gradients(
            &x,
            |x| {
                let mut l = AvgPool2d::new(2);
                let y = l.forward(x, Mode::Train)?;
                Ok(0.5 * y.sq_norm())
            },
            |x| {
                let mut l = AvgPool2d::new(2);
                let y = l.forward(x, Mode::Train)?;
                l.backward(&y)
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 1e-2);
    }

    #[test]
    fn avgpool_rejects_small_input() {
        let mut ap = AvgPool2d::new(3);
        assert!(ap.forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Eval).is_err());
        assert!(ap.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn flatten_round_trips() {
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let mut fl = Flatten::new();
        let y = fl.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let g = fl.backward(&y).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn backward_requires_forward() {
        assert!(GlobalAvgPool::new().backward(&Tensor::zeros(&[1, 1])).is_err());
        assert!(MaxPool2d::new(2).backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
        assert!(Flatten::new().backward(&Tensor::zeros(&[1, 1])).is_err());
    }
}
