//! The layer contract shared by every trainable component.

use alf_tensor::Tensor;

use crate::ctx::RunCtx;
use crate::Result;

/// Forward-pass mode.
///
/// Batch normalisation behaves differently during training (batch
/// statistics) and evaluation (running statistics); every layer receives the
/// mode explicitly rather than holding hidden state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: caches for backward are populated; BN uses batch stats.
    Train,
    /// Inference: no caches needed; BN uses running stats.
    Eval,
}

/// A trainable parameter: value, accumulated gradient, and whether L2
/// weight decay applies to it.
///
/// The paper applies weight decay to ordinary task parameters but explicitly
/// *not* to the ALF block's `W`/`Wcode` (§III-B), hence the per-parameter
/// `decay` flag.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass.
    pub grad: Tensor,
    /// Whether the optimizer should apply L2 weight decay to this parameter.
    pub decay: bool,
}

impl Param {
    /// Creates a parameter with a zeroed gradient of matching shape.
    pub fn new(value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.dims());
        Self { value, grad, decay }
    }

    /// Zeroes the accumulated gradient in place.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// A differentiable layer.
///
/// The contract is the classic cache-and-replay scheme: a forward pass in
/// [`Mode::Train`] must store whatever `backward` will need; `backward`
/// consumes the gradient w.r.t. the layer output, accumulates parameter
/// gradients into its [`Param`]s and returns the gradient w.r.t. the layer
/// input. Both passes receive a [`RunCtx`] carrying the mode, the shared
/// scratch arena and the optional profiler — see [`crate::ctx`] for the
/// ownership rules.
///
/// # Example
///
/// ```
/// use alf_nn::{Activation, ActivationKind, Layer, RunCtx};
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut ctx = RunCtx::train();
/// let mut relu = Activation::new(ActivationKind::Relu);
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2])?;
/// let y = relu.forward(&x, &mut ctx)?;
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// let gx = relu.backward(&Tensor::ones(&[1, 2]), &mut ctx)?;
/// assert_eq!(gx.data(), &[0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
pub trait Layer: std::fmt::Debug {
    /// Computes the layer output.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible.
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor>;

    /// Propagates `grad_output` back to the input, accumulating parameter
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns an error when no forward pass was cached or shapes mismatch.
    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor>;

    /// Visits every trainable parameter in a stable order.
    ///
    /// The default implementation visits nothing (stateless layers).
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        let _ = visitor;
    }

    /// Read-only counterpart of [`Layer::visit_params`]: visits the same
    /// parameters in the same order without requiring `&mut self`. This is
    /// what lets checkpointing and replica synchronisation read a model
    /// that is only borrowed immutably (e.g. a model concurrently served
    /// by worker threads). Layers that override `visit_params` must
    /// override this too — the two orders are contractually identical,
    /// which `tests` assert model-wide.
    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        let _ = visitor;
    }

    /// Zeroes all parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Visits every tensor that constitutes the layer's persistent state —
    /// trainable parameters plus non-trained buffers (e.g. batch-norm
    /// running statistics) — in a stable order. This is the hook model
    /// checkpointing uses; layers with extra buffers must override it.
    fn visit_state(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        self.visit_params(&mut |p| visitor(&mut p.value));
    }

    /// Read-only counterpart of [`Layer::visit_state`]: the same tensors in
    /// the same order through `&self`. Layers that override `visit_state`
    /// (extra non-parameter buffers) must override this too.
    fn visit_state_ref(&self, visitor: &mut dyn FnMut(&Tensor)) {
        self.visit_params_ref(&mut |p| visitor(&p.value));
    }

    /// Number of trainable scalars in this layer.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }
}

/// Convenience: raises a "backward before forward" shape error.
pub(crate) fn missing_cache(op: &str) -> alf_tensor::ShapeError {
    alf_tensor::ShapeError::new(op, "backward called before forward")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_zeroes_grad() {
        let p = Param::new(Tensor::ones(&[2, 2]), true);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.grad.dims(), p.value.dims());
        assert!(p.decay);
    }

    #[test]
    fn param_zero_grad_resets() {
        let mut p = Param::new(Tensor::ones(&[3]), false);
        p.grad = Tensor::full(&[3], 2.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn default_visit_params_is_empty() {
        #[derive(Debug)]
        struct Null;
        impl Layer for Null {
            fn forward(&mut self, input: &Tensor, _: &mut RunCtx) -> Result<Tensor> {
                Ok(input.clone())
            }
            fn backward(&mut self, g: &Tensor, _: &mut RunCtx) -> Result<Tensor> {
                Ok(g.clone())
            }
        }
        assert_eq!(Null.param_count(), 0);
    }
}
