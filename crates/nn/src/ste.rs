//! Straight-through estimator (STE) primitives.
//!
//! The ALF training scheme uses the STE in two places (paper Eq. 5/6):
//!
//! 1. **Task player** — the gradient w.r.t. the code `∂Ltask/∂Wcode` is
//!    applied *directly* to the raw filters `W`, skipping the encoder
//!    matmul and the mask Hadamard product. In code this is simply: take
//!    the weight-gradient the convolution accumulated on `Wcode` and add it
//!    to `W`'s gradient unchanged.
//! 2. **Autoencoder player** — the mask update `∂Lae/∂M` treats the
//!    non-differentiable clip `Mprune = 1{|m| > t}·m` as identity.
//!
//! This module provides the forward-side functions ([`clip`],
//! [`clip_tensor`]) plus [`l1_subgradient`], the `sign`-based gradient of
//! the mask regulariser `Lprune = 1/Co·Σ|m|`.

use alf_tensor::Tensor;

/// Hard clipping gate: returns `m` when `|m| > t`, else `0`.
///
/// Gradient convention (STE): treat as identity everywhere. The clip lets
/// the optimizer drive mask entries through the dead zone and *recover* a
/// channel later — the property the paper highlights over hard pruning.
///
/// # Example
///
/// ```
/// use alf_nn::ste::clip;
///
/// assert_eq!(clip(0.5, 0.1), 0.5);
/// assert_eq!(clip(0.05, 0.1), 0.0);
/// assert_eq!(clip(-0.5, 0.1), -0.5);
/// ```
pub fn clip(m: f32, t: f32) -> f32 {
    if m.abs() > t {
        m
    } else {
        0.0
    }
}

/// Elementwise [`clip`] over a tensor.
pub fn clip_tensor(m: &Tensor, t: f32) -> Tensor {
    m.map(|x| clip(x, t))
}

/// Fraction of entries zeroed by the clip at threshold `t` — the paper's
/// zero-fraction `θ = Ccode,zero / Ccode`.
pub fn zero_fraction(m: &Tensor, t: f32) -> f32 {
    if m.is_empty() {
        return 0.0;
    }
    m.data().iter().filter(|x| x.abs() <= t).count() as f32 / m.len() as f32
}

/// Subgradient of `mean(|m|)` — `sign(m)/len` — used for `∂Lprune/∂M`.
///
/// At exactly zero the subgradient is taken as `0`.
pub fn l1_subgradient(m: &Tensor) -> Tensor {
    let n = m.len().max(1) as f32;
    m.map(|x| {
        if x > 0.0 {
            1.0 / n
        } else if x < 0.0 {
            -1.0 / n
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_gates_small_values() {
        assert_eq!(clip(0.2, 0.1), 0.2);
        assert_eq!(clip(-0.2, 0.1), -0.2);
        assert_eq!(clip(0.1, 0.1), 0.0); // boundary is inclusive-zero
        assert_eq!(clip(0.0, 0.1), 0.0);
    }

    #[test]
    fn clip_tensor_elementwise() {
        let m = Tensor::from_vec(vec![0.5, 0.01, -0.3, -0.005], &[4]).unwrap();
        let c = clip_tensor(&m, 0.05);
        assert_eq!(c.data(), &[0.5, 0.0, -0.3, 0.0]);
    }

    #[test]
    fn zero_fraction_counts_clipped() {
        let m = Tensor::from_vec(vec![0.5, 0.01, -0.3, -0.005], &[4]).unwrap();
        assert_eq!(zero_fraction(&m, 0.05), 0.5);
        assert_eq!(zero_fraction(&m, 1.0), 1.0);
        assert_eq!(zero_fraction(&Tensor::zeros(&[0]), 0.1), 0.0);
    }

    #[test]
    fn l1_subgradient_is_scaled_sign() {
        let m = Tensor::from_vec(vec![2.0, -3.0, 0.0, 1.0], &[4]).unwrap();
        let g = l1_subgradient(&m);
        assert_eq!(g.data(), &[0.25, -0.25, 0.0, 0.25]);
    }

    #[test]
    fn l1_subgradient_matches_finite_difference_away_from_zero() {
        use crate::gradcheck;
        let m = Tensor::from_vec(vec![0.7, -1.2, 0.4], &[3]).unwrap();
        let (a, n) =
            gradcheck::input_gradients(&m, |m| Ok(m.mean_abs()), |m| Ok(l1_subgradient(m)))
                .unwrap();
        gradcheck::assert_close(&a, &n, 1e-2);
    }

    #[test]
    fn clipped_channels_can_recover() {
        // An entry inside the dead zone still receives (STE) gradient, so a
        // few gradient ascent steps push it back above the threshold.
        let t = 0.1;
        let mut m = 0.02; // clipped: contributes nothing to the forward pass
        assert_eq!(clip(m, t), 0.0);
        for _ in 0..10 {
            m += 0.05; // pretend the task benefits from this channel
        }
        assert!(clip(m, t) > 0.0, "channel should have recovered");
    }
}
