//! Sequential container chaining layers.

use alf_tensor::Tensor;

use crate::ctx::RunCtx;
use crate::layer::Layer;
use crate::Result;

/// A chain of boxed layers executed in order; backward runs in reverse.
///
/// # Example
///
/// ```
/// use alf_nn::{Activation, ActivationKind, Layer, Linear, RunCtx, Sequential};
/// use alf_tensor::{init::Init, rng::Rng, Tensor};
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut ctx = RunCtx::eval();
/// let mut rng = Rng::new(0);
/// let mut mlp = Sequential::new();
/// mlp.push(Linear::new(4, 8, Init::He, &mut rng));
/// mlp.push(Activation::new(ActivationKind::Relu));
/// mlp.push(Linear::new(8, 2, Init::Xavier, &mut rng));
/// let y = mlp.forward(&Tensor::zeros(&[3, 4]), &mut ctx)?;
/// assert_eq!(y.dims(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the layer list.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to a layer by index.
    pub fn layer_mut(&mut self, index: usize) -> Option<&mut Box<dyn Layer>> {
        self.layers.get_mut(index)
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, ctx)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g, ctx)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut crate::Param)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&crate::Param)) {
        for layer in &self.layers {
            layer.visit_params_ref(visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Activation, ActivationKind};
    use crate::gradcheck;
    use crate::linear::Linear;
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    fn mlp(seed: u64) -> Sequential {
        let mut rng = Rng::new(seed);
        let mut s = Sequential::new();
        s.push(Linear::new(3, 5, Init::Rand, &mut rng));
        s.push(Activation::new(ActivationKind::Tanh));
        s.push(Linear::new(5, 2, Init::Rand, &mut rng));
        s
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::new();
        assert!(s.is_empty());
        let x = Tensor::from_fn(&[2, 2], |i| i as f32);
        let mut ctx = RunCtx::eval();
        assert_eq!(s.forward(&x, &mut ctx).unwrap(), x);
    }

    #[test]
    fn forward_chains_and_counts_params() {
        let mut s = mlp(0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
        let mut ctx = RunCtx::eval();
        let y = s.forward(&Tensor::zeros(&[4, 3]), &mut ctx).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
    }

    #[test]
    fn end_to_end_gradcheck() {
        let mut rng = Rng::new(9);
        let x = Tensor::randn(&[2, 3], Init::Rand, &mut rng);
        let (a, n) = gradcheck::input_gradients(
            &x,
            |x| {
                let mut ctx = RunCtx::train();
                let mut s = mlp(1);
                let y = s.forward(x, &mut ctx)?;
                Ok(0.5 * y.sq_norm())
            },
            |x| {
                let mut ctx = RunCtx::train();
                let mut s = mlp(1);
                let y = s.forward(x, &mut ctx)?;
                s.backward(&y, &mut ctx)
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 2e-2);
    }

    #[test]
    fn zero_grads_clears_all() {
        let mut ctx = RunCtx::train();
        let mut s = mlp(2);
        let y = s.forward(&Tensor::ones(&[1, 3]), &mut ctx).unwrap();
        s.backward(&y, &mut ctx).unwrap();
        let mut any_nonzero = false;
        s.visit_params(&mut |p| any_nonzero |= p.grad.sq_norm() > 0.0);
        assert!(any_nonzero);
        s.zero_grads();
        let mut total = 0.0;
        s.visit_params(&mut |p| total += p.grad.sq_norm());
        assert_eq!(total, 0.0);
    }
}
