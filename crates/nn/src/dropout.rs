//! Inverted dropout.

use alf_tensor::rng::Rng;
use alf_tensor::Tensor;

use crate::ctx::RunCtx;
use crate::layer::{missing_cache, Layer, Mode};
use crate::Result;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so evaluation is
/// the identity. The layer owns a deterministic RNG stream, keeping
/// training runs reproducible.
///
/// # Example
///
/// ```
/// use alf_nn::{dropout::Dropout, Layer, RunCtx};
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut ctx = RunCtx::eval();
/// let mut drop = Dropout::new(0.5, 7);
/// let x = Tensor::ones(&[4, 4]);
/// let eval = drop.forward(&x, &mut ctx)?;
/// assert_eq!(eval, x); // identity at evaluation time
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: Rng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability {p} ∉ [0, 1)");
        Self {
            p,
            rng: Rng::new(seed ^ 0xd207),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        match ctx.mode() {
            Mode::Eval => {
                self.mask = None;
                Ok(input.clone())
            }
            Mode::Train => {
                let keep = 1.0 - self.p;
                // Refill the previous mask in place when the shape matches,
                // keeping the steady-state step allocation-free. The RNG
                // stream is identical either way (one draw per element, in
                // order).
                let mut mask = match self.mask.take() {
                    Some(m) if m.dims() == input.dims() => m,
                    _ => Tensor::zeros(input.dims()),
                };
                for v in mask.data_mut() {
                    *v = if self.rng.next_f32() < self.p {
                        0.0
                    } else {
                        1.0 / keep
                    };
                }
                ctx.count_flops(input.len() as u64);
                ctx.count_bytes(4 * 2 * input.len() as u64);
                let out = input.mul(&mask)?;
                self.mask = Some(mask);
                Ok(out)
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or_else(|| missing_cache("dropout"))?;
        ctx.count_flops(grad_output.len() as u64);
        grad_output.mul(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut ctx = RunCtx::eval();
        let mut d = Dropout::new(0.9, 0);
        let x = Tensor::from_fn(&[3, 3], |i| i as f32);
        assert_eq!(d.forward(&x, &mut ctx).unwrap(), x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut ctx = RunCtx::train();
        let mut d = Dropout::new(0.3, 1);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, &mut ctx).unwrap();
        // E[y] = 1; the mean over 10k elements should be close.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Roughly 30% of elements dropped.
        let dropped = y.count_near_zero(0.0) as f32 / y.len() as f32;
        assert!((dropped - 0.3).abs() < 0.03, "dropped {dropped}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut ctx = RunCtx::train();
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, &mut ctx).unwrap();
        let g = d.backward(&Tensor::ones(&[64]), &mut ctx).unwrap();
        // Where the forward pass dropped, the gradient is zero; where it
        // kept, the gradient equals the scale factor.
        for (yo, go) in y.data().iter().zip(g.data()) {
            assert_eq!(yo, go);
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut ctx = RunCtx::train();
        let mut d = Dropout::new(0.5, 3);
        assert!(d.backward(&Tensor::zeros(&[1]), &mut ctx).is_err());
        // Eval forward clears the mask too.
        d.forward(&Tensor::zeros(&[1]), &mut ctx).unwrap();
        ctx.set_mode(Mode::Eval);
        d.forward(&Tensor::zeros(&[1]), &mut ctx).unwrap();
        assert!(d.backward(&Tensor::zeros(&[1]), &mut ctx).is_err());
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut ctx = RunCtx::train();
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::from_fn(&[8], |i| i as f32);
        assert_eq!(d.forward(&x, &mut ctx).unwrap(), x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_of_one() {
        Dropout::new(1.0, 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut ctx = RunCtx::train();
            let mut d = Dropout::new(0.5, seed);
            d.forward(&Tensor::ones(&[32]), &mut ctx).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
