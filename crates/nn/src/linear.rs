//! Fully-connected layer (the classifier head of every model in the zoo).

use alf_tensor::init::Init;
use alf_tensor::ops::{matmul, matmul_at, matmul_bt};
use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};

use crate::layer::{missing_cache, Layer, Mode, Param};
use crate::Result;

/// Affine layer `y = x·Wᵀ + b` with `x: [n, in]`, `W: [out, in]`.
///
/// # Example
///
/// ```
/// use alf_nn::{Layer, Linear, Mode};
/// use alf_tensor::{init::Init, rng::Rng, Tensor};
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut fc = Linear::new(64, 10, Init::Xavier, &mut Rng::new(0));
/// let y = fc.forward(&Tensor::zeros(&[4, 64]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[4, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with the given initialiser and zero bias.
    pub fn new(in_features: usize, out_features: usize, init: Init, rng: &mut Rng) -> Self {
        Self {
            weight: Param::new(Tensor::randn(&[out_features, in_features], init, rng), true),
            bias: Param::new(Tensor::zeros(&[out_features]), false),
            input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Read-only weight view.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.shape().rank() != 2 || input.dims()[1] != self.in_features() {
            return Err(ShapeError::new(
                "linear",
                format!(
                    "input {} vs expected [n x {}]",
                    input.shape(),
                    self.in_features()
                ),
            ));
        }
        // y = x · Wᵀ
        let mut out = matmul_bt(input, &self.weight.value)?;
        let bd = self.bias.value.data().to_vec();
        let cols = out.dims()[1];
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            *v += bd[i % cols];
        }
        self.input = (mode == Mode::Train).then(|| input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self.input.as_ref().ok_or_else(|| missing_cache("linear"))?;
        if grad_output.dims() != [input.dims()[0], self.out_features()] {
            return Err(ShapeError::new(
                "linear backward",
                format!("grad {}", grad_output.shape()),
            ));
        }
        // grad_W = gᵀ · x  → [out, in]
        let gw = matmul_at(grad_output, input)?;
        self.weight.grad.axpy(1.0, &gw)?;
        // grad_b = column sums of g.
        let (n, out_f) = (grad_output.dims()[0], grad_output.dims()[1]);
        for i in 0..n {
            for j in 0..out_f {
                self.bias.grad.data_mut()[j] += grad_output.data()[i * out_f + j];
            }
        }
        // grad_x = g · W
        matmul(grad_output, &self.weight.value)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;

    #[test]
    fn forward_affine() {
        let mut fc = Linear::new(2, 2, Init::Zeros, &mut Rng::new(0));
        let y = fc
            .forward(
                &Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap(),
                Mode::Eval,
            )
            .unwrap();
        assert_eq!(y.data(), &[0.0, 0.0]);
    }

    #[test]
    fn rejects_bad_input() {
        let mut fc = Linear::new(4, 2, Init::Zeros, &mut Rng::new(0));
        assert!(fc.forward(&Tensor::zeros(&[1, 3]), Mode::Eval).is_err());
        assert!(fc.forward(&Tensor::zeros(&[4]), Mode::Eval).is_err());
    }

    #[test]
    fn input_gradcheck() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[3, 4], Init::Rand, &mut rng);
        let base = Linear::new(4, 5, Init::Rand, &mut rng);
        let (a, n) = gradcheck::input_gradients(
            &x,
            |x| {
                let mut l = base.clone();
                let y = l.forward(x, Mode::Train)?;
                Ok(0.5 * y.sq_norm())
            },
            |x| {
                let mut l = base.clone();
                let y = l.forward(x, Mode::Train)?;
                l.backward(&y)
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 2e-2);
    }

    #[test]
    fn weight_and_bias_gradcheck() {
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[2, 3], Init::Rand, &mut rng);
        let base = Linear::new(3, 2, Init::Rand, &mut rng);
        let w0 = base.weight().clone();
        let (a, n) = gradcheck::input_gradients(
            &w0,
            |w| {
                let mut l = base.clone();
                l.weight.value = w.clone();
                let y = l.forward(&x, Mode::Train)?;
                Ok(0.5 * y.sq_norm())
            },
            |w| {
                let mut l = base.clone();
                l.weight.value = w.clone();
                let y = l.forward(&x, Mode::Train)?;
                l.backward(&y)?;
                Ok(l.weight.grad.clone())
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 2e-2);
    }

    #[test]
    fn backward_requires_forward() {
        let mut fc = Linear::new(2, 2, Init::Zeros, &mut Rng::new(0));
        assert!(fc.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn param_count() {
        let mut fc = Linear::new(10, 4, Init::Zeros, &mut Rng::new(0));
        assert_eq!(fc.param_count(), 44);
    }
}
