//! Fully-connected layer (the classifier head of every model in the zoo).

use alf_tensor::init::Init;
use alf_tensor::ops::{auto_threads, gemm_into};
use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};

use crate::ctx::RunCtx;
use crate::layer::{missing_cache, Layer, Mode, Param};
use crate::Result;

/// Affine layer `y = x·Wᵀ + b` with `x: [n, in]`, `W: [out, in]`.
///
/// All three products (forward, weight gradient, input gradient) run
/// through the blocked GEMM with packing scratch drawn from the shared
/// [`RunCtx`] arena, so a steady-state step allocates only the returned
/// tensors.
///
/// # Example
///
/// ```
/// use alf_nn::{Layer, Linear, RunCtx};
/// use alf_tensor::{init::Init, rng::Rng, Tensor};
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut ctx = RunCtx::eval();
/// let mut fc = Linear::new(64, 10, Init::Xavier, &mut Rng::new(0));
/// let y = fc.forward(&Tensor::zeros(&[4, 64]), &mut ctx)?;
/// assert_eq!(y.dims(), &[4, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with the given initialiser and zero bias.
    pub fn new(in_features: usize, out_features: usize, init: Init, rng: &mut Rng) -> Self {
        Self {
            weight: Param::new(Tensor::randn(&[out_features, in_features], init, rng), true),
            bias: Param::new(Tensor::zeros(&[out_features]), false),
            input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Read-only weight view.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        if input.shape().rank() != 2 || input.dims()[1] != self.in_features() {
            return Err(ShapeError::new(
                "linear",
                format!(
                    "input {} vs expected [n x {}]",
                    input.shape(),
                    self.in_features()
                ),
            ));
        }
        let (n, in_f, out_f) = (input.dims()[0], self.in_features(), self.out_features());
        // y = x · Wᵀ; the transpose is absorbed by GEMM packing.
        let mut out = Tensor::zeros(&[n, out_f]);
        gemm_into(
            out.data_mut(),
            input.data(),
            false,
            self.weight.value.data(),
            true,
            n,
            in_f,
            out_f,
            &mut ctx.ws,
            auto_threads(n, in_f, out_f),
        );
        let bd = self.bias.value.data();
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            *v += bd[i % out_f];
        }
        ctx.count_flops(2 * (n * in_f * out_f) as u64);
        ctx.count_bytes(4 * (input.len() + self.weight.value.len() + n * out_f) as u64);
        self.input = (ctx.mode() == Mode::Train).then(|| input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let input = self.input.as_ref().ok_or_else(|| missing_cache("linear"))?;
        if grad_output.dims() != [input.dims()[0], self.out_features()] {
            return Err(ShapeError::new(
                "linear backward",
                format!("grad {}", grad_output.shape()),
            ));
        }
        let (n, in_f, out_f) = (input.dims()[0], self.in_features(), self.out_features());
        // grad_W = gᵀ · x → [out, in], staged in the arena then accumulated.
        let mut gw = ctx.ws.take("lin_gw", out_f * in_f);
        gemm_into(
            &mut gw,
            grad_output.data(),
            true,
            input.data(),
            false,
            out_f,
            n,
            in_f,
            &mut ctx.ws,
            auto_threads(out_f, n, in_f),
        );
        for (g, &v) in self.weight.grad.data_mut().iter_mut().zip(gw.iter()) {
            *g += v;
        }
        ctx.ws.give("lin_gw", gw);
        // grad_b = column sums of g.
        for i in 0..n {
            for j in 0..out_f {
                self.bias.grad.data_mut()[j] += grad_output.data()[i * out_f + j];
            }
        }
        // grad_x = g · W
        let mut gx = Tensor::zeros(&[n, in_f]);
        gemm_into(
            gx.data_mut(),
            grad_output.data(),
            false,
            self.weight.value.data(),
            false,
            n,
            out_f,
            in_f,
            &mut ctx.ws,
            auto_threads(n, out_f, in_f),
        );
        ctx.count_flops(4 * (n * in_f * out_f) as u64);
        ctx.count_bytes(
            4 * (grad_output.len() + input.len() + 2 * self.weight.value.len() + n * in_f) as u64,
        );
        Ok(gx)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;

    #[test]
    fn forward_affine() {
        let mut ctx = RunCtx::eval();
        let mut fc = Linear::new(2, 2, Init::Zeros, &mut Rng::new(0));
        let y = fc
            .forward(
                &Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap(),
                &mut ctx,
            )
            .unwrap();
        assert_eq!(y.data(), &[0.0, 0.0]);
    }

    #[test]
    fn rejects_bad_input() {
        let mut ctx = RunCtx::eval();
        let mut fc = Linear::new(4, 2, Init::Zeros, &mut Rng::new(0));
        assert!(fc.forward(&Tensor::zeros(&[1, 3]), &mut ctx).is_err());
        assert!(fc.forward(&Tensor::zeros(&[4]), &mut ctx).is_err());
    }

    #[test]
    fn input_gradcheck() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[3, 4], Init::Rand, &mut rng);
        let base = Linear::new(4, 5, Init::Rand, &mut rng);
        let (a, n) = gradcheck::input_gradients(
            &x,
            |x| {
                let mut ctx = RunCtx::train();
                let mut l = base.clone();
                let y = l.forward(x, &mut ctx)?;
                Ok(0.5 * y.sq_norm())
            },
            |x| {
                let mut ctx = RunCtx::train();
                let mut l = base.clone();
                let y = l.forward(x, &mut ctx)?;
                l.backward(&y, &mut ctx)
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 2e-2);
    }

    #[test]
    fn weight_and_bias_gradcheck() {
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[2, 3], Init::Rand, &mut rng);
        let base = Linear::new(3, 2, Init::Rand, &mut rng);
        let w0 = base.weight().clone();
        let (a, n) = gradcheck::input_gradients(
            &w0,
            |w| {
                let mut ctx = RunCtx::train();
                let mut l = base.clone();
                l.weight.value = w.clone();
                let y = l.forward(&x, &mut ctx)?;
                Ok(0.5 * y.sq_norm())
            },
            |w| {
                let mut ctx = RunCtx::train();
                let mut l = base.clone();
                l.weight.value = w.clone();
                let y = l.forward(&x, &mut ctx)?;
                l.backward(&y, &mut ctx)?;
                Ok(l.weight.grad.clone())
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 2e-2);
    }

    #[test]
    fn backward_requires_forward() {
        let mut ctx = RunCtx::train();
        let mut fc = Linear::new(2, 2, Init::Zeros, &mut Rng::new(0));
        assert!(fc.backward(&Tensor::zeros(&[1, 2]), &mut ctx).is_err());
    }

    #[test]
    fn param_count() {
        let mut fc = Linear::new(10, 4, Init::Zeros, &mut Rng::new(0));
        assert_eq!(fc.param_count(), 44);
    }
}
