//! Batch normalisation over `NCHW` activations.

use alf_tensor::{ShapeError, Tensor};

use crate::ctx::RunCtx;
use crate::layer::{missing_cache, Layer, Mode, Param};
use crate::Result;

/// 2-D batch normalisation with learnable scale/shift and running
/// statistics for evaluation.
///
/// Normalises each channel over the `(n, h, w)` axes during training and
/// over the tracked running statistics during evaluation. The paper's
/// "BNinter" configuration inserts one of these between the ALF convolution
/// and the expansion layer (Fig. 2a).
///
/// # Example
///
/// ```
/// use alf_nn::{BatchNorm2d, Layer, RunCtx};
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut ctx = RunCtx::train();
/// let mut bn = BatchNorm2d::new(3);
/// let y = bn.forward(&Tensor::ones(&[2, 3, 4, 4]), &mut ctx)?;
/// assert_eq!(y.dims(), &[2, 3, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    /// Whether the statistics were frozen (running stats used as
    /// constants): selects the fixed-statistics gradient in backward.
    frozen: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps
    /// (γ = 1, β = 0, momentum 0.9, ε = 1e-5).
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::ones(&[channels]), false),
            beta: Param::new(Tensor::zeros(&[channels]), false),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.9,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels this layer normalises.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    /// Learnable per-channel scale γ.
    pub fn scale(&self) -> &Tensor {
        &self.gamma.value
    }

    /// Mutable per-channel scale γ (used by structured-pruning surgery to
    /// silence channels).
    pub fn scale_mut(&mut self) -> &mut Tensor {
        &mut self.gamma.value
    }

    /// Learnable per-channel shift β.
    pub fn shift(&self) -> &Tensor {
        &self.beta.value
    }

    /// Mutable per-channel shift β.
    pub fn shift_mut(&mut self) -> &mut Tensor {
        &mut self.beta.value
    }

    /// Running mean tracked for evaluation.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance tracked for evaluation.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// The numerical-stability epsilon added to the variance. Exposed so
    /// BN folding (`alf-core::deploy`) reproduces the eval-path
    /// `1/√(σ²+ε)` exactly.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Shrinks the layer to the listed channels, gathering γ/β (values
    /// *and* accumulated gradients) and the running statistics in index
    /// order. Used by ALF block compaction, which reorders surviving code
    /// channels into a dense prefix; the forward/backward cache is
    /// dropped because its per-channel buffers no longer line up.
    ///
    /// # Errors
    ///
    /// Returns a typed error when an index is out of range or the list is
    /// not strictly increasing (compaction preserves channel order).
    pub fn select_channels(&mut self, keep: &[usize]) -> Result<()> {
        let c = self.channels();
        for w in keep.windows(2) {
            if w[0] >= w[1] {
                return Err(ShapeError::new(
                    "batchnorm2d select_channels",
                    format!("indices not strictly increasing at {} >= {}", w[0], w[1]),
                ));
            }
        }
        if keep.last().is_some_and(|&last| last >= c) {
            return Err(ShapeError::new(
                "batchnorm2d select_channels",
                format!("index out of range for {c} channels"),
            ));
        }
        let gather = |t: &Tensor| {
            let src = t.data();
            Tensor::from_vec(keep.iter().map(|&i| src[i]).collect(), &[keep.len()])
                .expect("gathered channel vector")
        };
        self.gamma.value = gather(&self.gamma.value);
        self.gamma.grad = gather(&self.gamma.grad);
        self.beta.value = gather(&self.beta.value);
        self.beta.grad = gather(&self.beta.grad);
        self.running_mean = gather(&self.running_mean);
        self.running_var = gather(&self.running_var);
        self.cache = None;
        Ok(())
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize, usize)> {
        match input.dims() {
            &[n, c, h, w] if c == self.channels() => Ok((n, c, h, w)),
            _ => Err(ShapeError::new(
                "batchnorm2d",
                format!("input {} vs {} channels", input.shape(), self.channels()),
            )),
        }
    }
}

impl Layer for BatchNorm2d {
    #[allow(clippy::needless_range_loop)] // `ch` addresses several per-channel buffers
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let (n, c, h, w) = self.check_input(input)?;
        let m = (n * h * w) as f32;
        let hw = h * w;
        let mut out = Tensor::zeros(input.dims());
        ctx.count_flops(10 * input.len() as u64);
        ctx.count_bytes(4 * 3 * input.len() as u64);
        match ctx.mode() {
            Mode::Train if ctx.freeze_norm() => {
                // Frozen statistics: normalise with the running stats —
                // bitwise the same normalisation evaluation applies — and
                // leave them untouched. Caches xhat for the
                // fixed-statistics gradient.
                let (mut xhat, mut inv_stds) = match self.cache.take() {
                    Some(cache) if cache.xhat.dims() == input.dims() => (cache.xhat, cache.inv_std),
                    _ => (Tensor::zeros(input.dims()), vec![0.0; c]),
                };
                inv_stds.resize(c, 0.0);
                for ch in 0..c {
                    let mean = self.running_mean.data()[ch];
                    let inv_std = 1.0 / (self.running_var.data()[ch] + self.eps).sqrt();
                    inv_stds[ch] = inv_std;
                    let (g, bta) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
                    for b in 0..n {
                        let base = (b * c + ch) * hw;
                        for i in 0..hw {
                            let xh = (input.data()[base + i] - mean) * inv_std;
                            xhat.data_mut()[base + i] = xh;
                            out.data_mut()[base + i] = g * xh + bta;
                        }
                    }
                }
                self.cache = Some(Cache {
                    xhat,
                    inv_std: inv_stds,
                    frozen: true,
                });
            }
            Mode::Train => {
                // Reuse the previous step's cache buffers when the shape
                // matches — every element is overwritten below, so steady
                // state allocates nothing here.
                let (mut xhat, mut inv_stds) = match self.cache.take() {
                    Some(cache) if cache.xhat.dims() == input.dims() => (cache.xhat, cache.inv_std),
                    _ => (Tensor::zeros(input.dims()), vec![0.0; c]),
                };
                inv_stds.resize(c, 0.0);
                for ch in 0..c {
                    let mut mean = 0.0;
                    for b in 0..n {
                        let plane = &input.data()[(b * c + ch) * hw..(b * c + ch + 1) * hw];
                        mean += plane.iter().sum::<f32>();
                    }
                    mean /= m;
                    let mut var = 0.0;
                    for b in 0..n {
                        let plane = &input.data()[(b * c + ch) * hw..(b * c + ch + 1) * hw];
                        var += plane.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>();
                    }
                    var /= m;
                    let inv_std = 1.0 / (var + self.eps).sqrt();
                    inv_stds[ch] = inv_std;
                    let (g, bta) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
                    for b in 0..n {
                        let base = (b * c + ch) * hw;
                        for i in 0..hw {
                            let xh = (input.data()[base + i] - mean) * inv_std;
                            xhat.data_mut()[base + i] = xh;
                            out.data_mut()[base + i] = g * xh + bta;
                        }
                    }
                    let rm = &mut self.running_mean.data_mut()[ch];
                    *rm = self.momentum * *rm + (1.0 - self.momentum) * mean;
                    let rv = &mut self.running_var.data_mut()[ch];
                    *rv = self.momentum * *rv + (1.0 - self.momentum) * var;
                }
                self.cache = Some(Cache {
                    xhat,
                    inv_std: inv_stds,
                    frozen: false,
                });
            }
            Mode::Eval => {
                self.cache = None;
                for ch in 0..c {
                    let mean = self.running_mean.data()[ch];
                    let inv_std = 1.0 / (self.running_var.data()[ch] + self.eps).sqrt();
                    let (g, bta) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
                    for b in 0..n {
                        let base = (b * c + ch) * hw;
                        for i in 0..hw {
                            out.data_mut()[base + i] =
                                g * (input.data()[base + i] - mean) * inv_std + bta;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| missing_cache("batchnorm2d"))?;
        ctx.count_flops(12 * grad_output.len() as u64);
        ctx.count_bytes(4 * 3 * grad_output.len() as u64);
        let (n, c, h, w) = self.check_input(grad_output)?;
        cache
            .xhat
            .shape()
            .expect_same(grad_output.shape(), "batchnorm2d backward")?;
        let hw = h * w;
        let m = (n * hw) as f32;
        let mut grad_in = Tensor::zeros(grad_output.dims());
        for ch in 0..c {
            let g = self.gamma.value.data()[ch];
            let inv_std = cache.inv_std[ch];
            // Accumulate the channel sums needed by the closed-form gradient.
            let mut sum_dy = 0.0;
            let mut sum_dy_xhat = 0.0;
            for b in 0..n {
                let base = (b * c + ch) * hw;
                for i in 0..hw {
                    let dy = grad_output.data()[base + i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.xhat.data()[base + i];
                }
            }
            self.gamma.grad.data_mut()[ch] += sum_dy_xhat;
            self.beta.grad.data_mut()[ch] += sum_dy;
            if cache.frozen {
                // Statistics were constants in forward, so the input
                // gradient is the plain affine one.
                for b in 0..n {
                    let base = (b * c + ch) * hw;
                    for i in 0..hw {
                        grad_in.data_mut()[base + i] = g * inv_std * grad_output.data()[base + i];
                    }
                }
            } else {
                for b in 0..n {
                    let base = (b * c + ch) * hw;
                    for i in 0..hw {
                        let dy = grad_output.data()[base + i];
                        let xh = cache.xhat.data()[base + i];
                        grad_in.data_mut()[base + i] =
                            g * inv_std / m * (m * dy - sum_dy - xh * sum_dy_xhat);
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.gamma);
        visitor(&self.beta);
    }

    fn visit_state(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        visitor(&mut self.gamma.value);
        visitor(&mut self.beta.value);
        visitor(&mut self.running_mean);
        visitor(&mut self.running_var);
    }

    fn visit_state_ref(&self, visitor: &mut dyn FnMut(&Tensor)) {
        visitor(&self.gamma.value);
        visitor(&self.beta.value);
        visitor(&self.running_mean);
        visitor(&self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    #[test]
    fn train_output_is_normalised() {
        let mut ctx = RunCtx::train();
        let mut rng = Rng::new(0);
        let x = Tensor::randn(&[4, 2, 5, 5], Init::He, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        let y = bn.forward(&x, &mut ctx).unwrap();
        // Per-channel mean ≈ 0, var ≈ 1.
        let hw = 25;
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                vals.extend_from_slice(&y.data()[(b * 2 + ch) * hw..(b * 2 + ch + 1) * hw]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut ctx = RunCtx::train();
        let mut bn = BatchNorm2d::new(1);
        // Feed constant batches so running stats converge to (5, 0).
        let x = Tensor::full(&[2, 1, 3, 3], 5.0);
        for _ in 0..200 {
            bn.forward(&x, &mut ctx).unwrap();
        }
        ctx.set_mode(Mode::Eval);
        let y = bn.forward(&x, &mut ctx).unwrap();
        // (5 - ~5) / sqrt(~0 + eps) ≈ 0.
        assert!(
            y.data().iter().all(|v| v.abs() < 0.05),
            "{:?}",
            &y.data()[..3]
        );
    }

    #[test]
    fn frozen_norm_matches_eval_and_keeps_stats() {
        let mut rng = Rng::new(7);
        let x = Tensor::randn(&[3, 2, 4, 4], Init::He, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        // Give the running stats a non-trivial value first.
        let mut ctx = RunCtx::train();
        bn.forward(&x, &mut ctx).unwrap();
        let mean_before = bn.running_mean().data().to_vec();
        let var_before = bn.running_var().data().to_vec();
        // Frozen train forward normalises exactly like eval…
        ctx.set_freeze_norm(true);
        let frozen = bn.forward(&x, &mut ctx).unwrap();
        let eval = bn.forward(&x, &mut RunCtx::eval()).unwrap();
        assert_eq!(frozen.data(), eval.data());
        // …and leaves the running statistics untouched.
        assert_eq!(bn.running_mean().data(), &mean_before[..]);
        assert_eq!(bn.running_var().data(), &var_before[..]);
    }

    #[test]
    fn frozen_backward_supports_training_and_uses_fixed_stats() {
        let mut rng = Rng::new(8);
        let x = Tensor::randn(&[2, 1, 3, 3], Init::He, &mut rng);
        let mut bn = BatchNorm2d::new(1);
        // Non-trivial running stats and gamma.
        bn.running_mean = Tensor::from_vec(vec![0.3], &[1]).unwrap();
        bn.running_var = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        bn.gamma.value = Tensor::from_vec(vec![1.5], &[1]).unwrap();
        let mut ctx = RunCtx::train();
        ctx.set_freeze_norm(true);
        bn.forward(&x, &mut ctx).unwrap();
        let dy = Tensor::full(&[2, 1, 3, 3], 0.5);
        let dx = bn.backward(&dy, &mut ctx).unwrap();
        // With frozen stats the input gradient is γ·inv_std·dy elementwise.
        let inv_std = 1.0 / (2.0f32 + 1e-5).sqrt();
        for &g in dx.data() {
            assert!((g - 1.5 * inv_std * 0.5).abs() < 1e-6, "{g}");
        }
        // Parameter gradients still accumulate (β gets Σdy = 9).
        assert!((bn.beta.grad.data()[0] - 9.0).abs() < 1e-4);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut ctx = RunCtx::train();
        let mut bn = BatchNorm2d::new(3);
        assert!(bn.forward(&Tensor::zeros(&[1, 2, 4, 4]), &mut ctx).is_err());
        assert!(bn.forward(&Tensor::zeros(&[2, 4]), &mut ctx).is_err());
    }

    #[test]
    fn steady_state_reuses_cache_buffers() {
        let mut ctx = RunCtx::train();
        let mut rng = Rng::new(3);
        let x = Tensor::randn(&[2, 2, 4, 4], Init::He, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        let y = bn.forward(&x, &mut ctx).unwrap();
        bn.backward(&y, &mut ctx).unwrap();
        let ptr_before = bn.cache.as_ref().unwrap().xhat.data().as_ptr();
        let y = bn.forward(&x, &mut ctx).unwrap();
        bn.backward(&y, &mut ctx).unwrap();
        let ptr_after = bn.cache.as_ref().unwrap().xhat.data().as_ptr();
        assert_eq!(ptr_before, ptr_after, "xhat buffer was reallocated");
    }

    #[test]
    fn input_gradcheck() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[3, 2, 3, 3], Init::He, &mut rng);
        let base = {
            let mut bn = BatchNorm2d::new(2);
            // Non-trivial gamma/beta so the gradient exercises both.
            bn.gamma.value = Tensor::from_vec(vec![1.5, 0.5], &[2]).unwrap();
            bn.beta.value = Tensor::from_vec(vec![-0.3, 0.7], &[2]).unwrap();
            bn
        };
        let target = Tensor::randn(x.dims(), Init::Rand, &mut rng);
        let (a, n) = gradcheck::input_gradients(
            &x,
            |x| {
                let mut ctx = RunCtx::train();
                let mut bn = base.clone();
                let y = bn.forward(x, &mut ctx)?;
                let d = y.sub(&target)?;
                Ok(0.5 * d.sq_norm())
            },
            |x| {
                let mut ctx = RunCtx::train();
                let mut bn = base.clone();
                let y = bn.forward(x, &mut ctx)?;
                bn.backward(&y.sub(&target)?, &mut ctx)
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 3e-2);
    }

    #[test]
    fn gamma_beta_gradients() {
        let mut ctx = RunCtx::train();
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[2, 1, 4, 4], Init::He, &mut rng);
        let mut bn = BatchNorm2d::new(1);
        let y = bn.forward(&x, &mut ctx).unwrap();
        bn.backward(&Tensor::ones(y.dims()), &mut ctx).unwrap();
        // dβ = Σ dy = 32; dγ = Σ xhat ≈ 0 (normalised).
        assert!((bn.beta.grad.data()[0] - 32.0).abs() < 1e-3);
        assert!(bn.gamma.grad.data()[0].abs() < 1e-3);
    }

    #[test]
    fn backward_requires_forward() {
        let mut ctx = RunCtx::train();
        let mut bn = BatchNorm2d::new(1);
        assert!(bn
            .backward(&Tensor::zeros(&[1, 1, 2, 2]), &mut ctx)
            .is_err());
    }

    #[test]
    fn select_channels_gathers_state_and_matches_small_layer() {
        let mut ctx = RunCtx::train();
        let mut rng = Rng::new(9);
        let x = Tensor::randn(&[2, 4, 3, 3], Init::He, &mut rng);
        let mut bn = BatchNorm2d::new(4);
        bn.gamma.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        bn.beta.value = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], &[4]).unwrap();
        bn.forward(&x, &mut ctx).unwrap(); // gives the running stats values
        bn.select_channels(&[1, 3]).unwrap();
        assert_eq!(bn.channels(), 2);
        assert_eq!(bn.scale().data(), &[2.0, 4.0]);
        assert_eq!(bn.shift().data(), &[0.2, 0.4]);
        // The compacted layer normalises the gathered channels exactly as
        // the original normalised them.
        let mut full = BatchNorm2d::new(4);
        full.gamma.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        full.beta.value = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], &[4]).unwrap();
        let y_full = full.forward(&x, &mut RunCtx::train()).unwrap();
        // Gather channels 1 and 3 of the input.
        let mut xs = Vec::new();
        for b in 0..2 {
            for ch in [1usize, 3] {
                xs.extend_from_slice(&x.data()[(b * 4 + ch) * 9..(b * 4 + ch + 1) * 9]);
            }
        }
        let xsel = Tensor::from_vec(xs, &[2, 2, 3, 3]).unwrap();
        let y_sel = bn.forward(&xsel, &mut RunCtx::train()).unwrap();
        for b in 0..2 {
            for (ci, ch) in [1usize, 3].iter().enumerate() {
                assert_eq!(
                    &y_sel.data()[(b * 2 + ci) * 9..(b * 2 + ci + 1) * 9],
                    &y_full.data()[(b * 4 + ch) * 9..(b * 4 + ch + 1) * 9],
                );
            }
        }
    }

    #[test]
    fn select_channels_rejects_bad_indices() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn.select_channels(&[0, 4]).is_err());
        assert!(bn.select_channels(&[2, 1]).is_err());
        assert!(bn.select_channels(&[1, 1]).is_err());
        assert!(bn.select_channels(&[0, 2]).is_ok());
    }

    #[test]
    fn params_are_not_decayed() {
        let mut bn = BatchNorm2d::new(4);
        let mut decays = Vec::new();
        bn.visit_params(&mut |p| decays.push(p.decay));
        assert_eq!(decays, vec![false, false]);
        assert_eq!(bn.param_count(), 8);
    }
}
