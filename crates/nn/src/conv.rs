//! 2-D convolution layer with GEMM forward and exact backward.
//!
//! The hot path is allocation-free after warm-up: the GEMM packing panels
//! and every transient scratch matrix are drawn from the shared
//! [`RunCtx`] workspace arena, while the im2col column matrix — which must
//! survive from `forward` to `backward` — is a layer-owned buffer reused
//! across steps. A steady-state training step therefore allocates nothing
//! beyond the output / input-gradient tensors the `Layer` API returns by
//! value.

use alf_tensor::init::Init;
use alf_tensor::ops::{
    auto_threads, col2im_into, conv2d, gemm_active_k_into, gemm_active_rows_into, gemm_into,
    gemm_sparse_lhs_into, im2col_into, ActiveRows, Conv2dSpec,
};
use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};

use crate::ctx::RunCtx;
use crate::layer::{missing_cache, Layer, Mode, Param};
use crate::Result;

/// Convolutional layer (`NCHW` activations, `[c_out, c_in, k, k]` weights).
///
/// The weight is exposed mutably via [`Conv2d::weight_mut`] because the ALF
/// block *writes* the autoencoder code `Wcode` into the convolution before
/// every forward pass; the gradient that `backward` accumulates on the
/// weight is then routed to `W` through the straight-through estimator
/// (paper Eq. 5). A block that injects *masked* codes should also set
/// [`Conv2d::set_sparse_weight_hint`] so the forward GEMM skips the
/// all-zero weight rows pruning produces.
///
/// # Example
///
/// ```
/// use alf_nn::{Conv2d, Layer, RunCtx};
/// use alf_tensor::{init::Init, rng::Rng, Tensor};
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut ctx = RunCtx::train();
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, false, Init::He, &mut Rng::new(0));
/// let x = Tensor::zeros(&[2, 3, 16, 16]);
/// let y = conv.forward(&x, &mut ctx)?;
/// assert_eq!(y.dims(), &[2, 8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    spec: Conv2dSpec,
    c_in: usize,
    c_out: usize,
    sparse_weight_hint: bool,
    active_rows: Option<ActiveRows>,
    cache: Option<Cache>,
    /// Layer-owned im2col column matrix, reused across steps. It must
    /// survive from `forward` to `backward`, so it cannot live in the
    /// shared arena — every conv would fight over one slot name there.
    cols: Vec<f32>,
}

/// Forward-pass state the backward pass consumes (the column matrix itself
/// lives in `Conv2d::cols` so that cloning the layer clones live data).
#[derive(Debug, Clone)]
struct Cache {
    input_dims: [usize; 4],
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero (via [`Conv2dSpec::new`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        init: Init,
        rng: &mut Rng,
    ) -> Self {
        let weight = Param::new(
            Tensor::randn(&[c_out, c_in, kernel, kernel], init, rng),
            true,
        );
        let bias = bias.then(|| Param::new(Tensor::zeros(&[c_out]), false));
        Self {
            weight,
            bias,
            spec: Conv2dSpec::new(kernel, stride, pad),
            c_in,
            c_out,
            sparse_weight_hint: false,
            active_rows: None,
            cache: None,
            cols: Vec::new(),
        }
    }

    /// Geometry of the convolution.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Read-only view of the weight tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable access to the weight tensor (used by the ALF block to inject
    /// `Wcode`).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    /// Gradient accumulated on the weight by the last backward pass.
    pub fn weight_grad(&self) -> &Tensor {
        &self.weight.grad
    }

    /// Replaces the weight tensor entirely.
    ///
    /// # Errors
    ///
    /// Returns an error when the new weight shape differs from the current
    /// one.
    pub fn set_weight(&mut self, weight: Tensor) -> Result<()> {
        self.weight
            .value
            .shape()
            .expect_same(weight.shape(), "set_weight")?;
        self.weight.value = weight;
        Ok(())
    }

    /// Read-only view of the per-channel bias, when the layer has one.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref().map(|b| &b.value)
    }

    /// Installs (or replaces) the per-channel bias. BN folding uses this
    /// to push `β − γ·μ/√(σ²+ε)` into the conv it folds into.
    ///
    /// # Errors
    ///
    /// Returns an error unless `bias` is `[c_out]`.
    pub fn set_bias(&mut self, bias: Tensor) -> Result<()> {
        if bias.dims() != [self.c_out] {
            return Err(ShapeError::new(
                "set_bias",
                format!("bias {} vs c_out {}", bias.shape(), self.c_out),
            ));
        }
        self.bias = Some(Param::new(bias, false));
        Ok(())
    }

    /// Disables weight decay on the conv weight (the paper's ALF blocks
    /// train `W` without regularisation).
    pub fn without_weight_decay(mut self) -> Self {
        self.weight.decay = false;
        self
    }

    /// Declares that the injected weight is expected to contain all-zero
    /// output-channel rows (a masked `Wcode` after pruning). The forward
    /// GEMM then routes through the sparse-LHS kernel, which compacts the
    /// live rows instead of multiplying zeros. Purely a performance hint —
    /// results are identical either way.
    pub fn set_sparse_weight_hint(&mut self, on: bool) {
        self.sparse_weight_hint = on;
    }

    /// Whether the sparse-weight hint is set.
    pub fn sparse_weight_hint(&self) -> bool {
        self.sparse_weight_hint
    }

    /// Installs (or clears) the set of live output channels.
    ///
    /// With a descriptor installed the layer takes the occupancy-aware
    /// path: the forward GEMM and the backward weight-gradient GEMM pack
    /// only the listed rows (pruned channels are never computed — their
    /// output and their weight gradient are exact zeros), and the input
    /// gradient GEMM skips the pruned channels' `k` slices. The caller —
    /// an ALF block deriving the descriptor from its clipped mask —
    /// guarantees that the *weight rows* of inactive channels are exact
    /// zeros; under that contract every produced value is bitwise
    /// identical to the dense path. A descriptor takes precedence over
    /// [`Conv2d::set_sparse_weight_hint`] (no scan is needed when the
    /// live set is declared).
    ///
    /// # Errors
    ///
    /// Returns a typed error when the descriptor does not cover exactly
    /// `c_out` rows.
    pub fn set_active_rows(&mut self, rows: Option<ActiveRows>) -> Result<()> {
        if let Some(r) = &rows {
            if r.total() != self.c_out {
                return Err(ShapeError::new(
                    "conv2d set_active_rows",
                    format!(
                        "descriptor covers {} channels but the layer has {}",
                        r.total(),
                        self.c_out
                    ),
                ));
            }
        }
        self.active_rows = rows;
        Ok(())
    }

    /// The installed live-channel descriptor, if any.
    pub fn active_rows(&self) -> Option<&ActiveRows> {
        self.active_rows.as_ref()
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let dims = input.dims();
        if dims.len() != 4 || dims[1] != self.c_in {
            return Err(ShapeError::new(
                "conv2d forward",
                format!(
                    "input {} vs expected [n x {} x h x w]",
                    input.shape(),
                    self.c_in
                ),
            ));
        }
        let [n, ci, h, w] = [dims[0], dims[1], dims[2], dims[3]];
        let (ho, wo) = self.spec.output_hw(h, w);
        let k = self.spec.kernel;
        let rows = ci * k * k;
        let ncols = n * ho * wo;

        // The layer-owned column matrix reaches steady capacity after the
        // first step; `resize` within capacity never reallocates.
        self.cols.resize(rows * ncols, 0.0);
        im2col_into(&mut self.cols, input, self.spec)?;

        // [co, ci·k²] × [ci·k², n·ho·wo] → [co, n·ho·wo]; the stored
        // [co, ci, k, k] weight is already row-major [co, ci·k²].
        let mut prod = ctx.ws.take("prod", self.c_out * ncols);
        let threads = auto_threads(self.c_out, rows, ncols);
        if let Some(live) = &self.active_rows {
            // Declared occupancy: only the live channels' rows are packed
            // and multiplied; pruned channels are written as exact zeros,
            // which is what their all-zero weight rows would produce.
            gemm_active_rows_into(
                &mut prod,
                self.weight.value.data(),
                &self.cols,
                false,
                self.c_out,
                rows,
                ncols,
                live,
                &mut ctx.ws,
                threads,
            );
        } else if self.sparse_weight_hint {
            gemm_sparse_lhs_into(
                &mut prod,
                self.weight.value.data(),
                &self.cols,
                self.c_out,
                rows,
                ncols,
                &mut ctx.ws,
                threads,
            );
        } else {
            gemm_into(
                &mut prod,
                self.weight.value.data(),
                false,
                &self.cols,
                false,
                self.c_out,
                rows,
                ncols,
                &mut ctx.ws,
                threads,
            );
        }
        ctx.count_flops(2 * (self.c_out * rows * ncols) as u64);
        ctx.count_bytes(4 * (input.len() + self.weight.value.len() + self.c_out * ncols) as u64);

        // Rearrange [co, n·ho·wo] → [n, co, ho, wo], adding bias. This is
        // the only allocation of the steady-state forward pass.
        let mut out = Tensor::zeros(&[n, self.c_out, ho, wo]);
        let od = out.data_mut();
        let hw = ho * wo;
        for c in 0..self.c_out {
            let bias_v = self.bias.as_ref().map_or(0.0, |b| b.value.data()[c]);
            for b in 0..n {
                let src = &prod[c * n * hw + b * hw..c * n * hw + (b + 1) * hw];
                let dst = &mut od[(b * self.c_out + c) * hw..(b * self.c_out + c + 1) * hw];
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d = s + bias_v;
                }
            }
        }
        ctx.ws.give("prod", prod);

        self.cache = if ctx.mode() == Mode::Train {
            Some(Cache {
                input_dims: [n, ci, h, w],
            })
        } else {
            None
        };
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or_else(|| missing_cache("conv2d"))?;
        let [n, ci, h, w] = cache.input_dims;
        let (ho, wo) = self.spec.output_hw(h, w);
        if grad_output.dims() != [n, self.c_out, ho, wo] {
            return Err(ShapeError::new(
                "conv2d backward",
                format!(
                    "grad {} vs expected [{n}x{}x{ho}x{wo}]",
                    grad_output.shape(),
                    self.c_out
                ),
            ));
        }
        let k = self.spec.kernel;
        let rows = ci * k * k;
        let hw = ho * wo;
        let ncols = n * hw;

        // Rearrange grad [n, co, ho, wo] → [co, n·ho·wo] to match the GEMM
        // layout.
        let mut gmat = ctx.ws.take("gmat", self.c_out * ncols);
        {
            let src = grad_output.data();
            for b in 0..n {
                for c in 0..self.c_out {
                    let s = &src[(b * self.c_out + c) * hw..(b * self.c_out + c + 1) * hw];
                    let d = &mut gmat[c * n * hw + b * hw..c * n * hw + (b + 1) * hw];
                    d.copy_from_slice(s);
                }
            }
        }

        // grad_w = gmat · colsᵀ → [co, ci·k²], accumulated straight into the
        // [co, ci, k, k] grad buffer (same row-major data).
        let mut gw = ctx.ws.take("gw", self.c_out * rows);
        if let Some(live) = &self.active_rows {
            // Pruned channels' weight gradients are discarded by the
            // mask-gated STE anyway (dL/dW through a clipped channel is
            // exactly zero), so never compute them: their gw rows stay
            // exact zeros and accumulate as no-ops below.
            gemm_active_rows_into(
                &mut gw,
                &gmat,
                &self.cols,
                true,
                self.c_out,
                ncols,
                rows,
                live,
                &mut ctx.ws,
                auto_threads(self.c_out, ncols, rows),
            );
        } else {
            gemm_into(
                &mut gw,
                &gmat,
                false,
                &self.cols,
                true,
                self.c_out,
                ncols,
                rows,
                &mut ctx.ws,
                auto_threads(self.c_out, ncols, rows),
            );
        }
        for (g, &v) in self.weight.grad.data_mut().iter_mut().zip(gw.iter()) {
            *g += v;
        }
        ctx.ws.give("gw", gw);

        // grad_b = row sums of gmat.
        if let Some(bias) = &mut self.bias {
            for c in 0..self.c_out {
                let row_sum: f32 = gmat[c * n * hw..(c + 1) * n * hw].iter().sum();
                bias.grad.data_mut()[c] += row_sum;
            }
        }

        // grad_x = col2im(Wᵀ_mat · gmat); Wᵀ is absorbed by GEMM packing.
        let mut gcols = ctx.ws.take("gcols", rows * ncols);
        if let Some(live) = &self.active_rows {
            // Pruned channels contribute Wᵀ rows that are exact zeros;
            // skipping their k slices is bitwise invisible (every
            // accumulator starts at +0.0 and ±0.0 products are identity).
            gemm_active_k_into(
                &mut gcols,
                self.weight.value.data(),
                true,
                &gmat,
                rows,
                self.c_out,
                ncols,
                live,
                &mut ctx.ws,
                auto_threads(rows, self.c_out, ncols),
            );
        } else {
            gemm_into(
                &mut gcols,
                self.weight.value.data(),
                true,
                &gmat,
                false,
                rows,
                self.c_out,
                ncols,
                &mut ctx.ws,
                auto_threads(rows, self.c_out, ncols),
            );
        }
        ctx.ws.give("gmat", gmat);
        ctx.count_flops(4 * (self.c_out * rows * ncols) as u64);
        ctx.count_bytes(
            4 * (grad_output.len() + 2 * self.weight.value.len() + n * ci * h * w) as u64,
        );

        // The input gradient is the only allocation of the steady-state
        // backward pass.
        let mut gx = Tensor::zeros(&[n, ci, h, w]);
        col2im_into(gx.data_mut(), &gcols, n, ci, h, w, self.spec)?;
        ctx.ws.give("gcols", gcols);
        Ok(gx)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        if let Some(b) = &mut self.bias {
            visitor(b);
        }
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.weight);
        if let Some(b) = &self.bias {
            visitor(b);
        }
    }
}

/// Computes the output of a fixed (non-trainable) convolution; a thin
/// re-export of [`alf_tensor::ops::conv2d`] that deployment code uses so it
/// does not need the layer machinery.
///
/// # Errors
///
/// Propagates shape errors from the underlying kernel.
pub fn conv2d_fixed(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    conv2d(input, weight, bias, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;

    fn mk(rng_seed: u64, bias: bool) -> Conv2d {
        Conv2d::new(2, 3, 3, 1, 1, bias, Init::Rand, &mut Rng::new(rng_seed))
    }

    #[test]
    fn forward_shape() {
        let mut ctx = RunCtx::eval();
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, false, Init::He, &mut Rng::new(0));
        let y = conv
            .forward(&Tensor::zeros(&[4, 3, 32, 32]), &mut ctx)
            .unwrap();
        assert_eq!(y.dims(), &[4, 8, 16, 16]);
    }

    #[test]
    fn forward_matches_free_function() {
        let mut ctx = RunCtx::eval();
        let mut rng = Rng::new(14);
        let mut conv = Conv2d::new(3, 5, 3, 2, 1, true, Init::Rand, &mut rng);
        let x = Tensor::randn(&[2, 3, 9, 9], Init::Rand, &mut rng);
        let via_layer = conv.forward(&x, &mut ctx).unwrap();
        let via_free = conv2d(&x, conv.weight(), Some(&Tensor::zeros(&[5])), conv.spec()).unwrap();
        assert!(via_layer.allclose(&via_free, 1e-5));
    }

    #[test]
    fn forward_validates_input() {
        let mut ctx = RunCtx::eval();
        let mut conv = mk(0, false);
        assert!(conv
            .forward(&Tensor::zeros(&[1, 3, 4, 4]), &mut ctx)
            .is_err());
        assert!(conv.forward(&Tensor::zeros(&[2, 4, 4]), &mut ctx).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut ctx = RunCtx::train();
        let mut conv = mk(1, false);
        assert!(conv
            .backward(&Tensor::zeros(&[1, 3, 4, 4]), &mut ctx)
            .is_err());
    }

    #[test]
    fn backward_validates_grad_shape() {
        let mut ctx = RunCtx::train();
        let mut conv = mk(2, false);
        conv.forward(&Tensor::zeros(&[1, 2, 4, 4]), &mut ctx)
            .unwrap();
        assert!(conv
            .backward(&Tensor::zeros(&[1, 3, 5, 5]), &mut ctx)
            .is_err());
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut ctx = RunCtx::eval();
        let mut conv = mk(3, false);
        conv.forward(&Tensor::zeros(&[1, 2, 4, 4]), &mut ctx)
            .unwrap();
        assert!(conv
            .backward(&Tensor::zeros(&[1, 3, 4, 4]), &mut ctx)
            .is_err());
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = Rng::new(5);
        let x = Tensor::randn(&[2, 2, 5, 5], Init::Rand, &mut rng);
        let conv = mk(6, true);
        let (analytic, numeric) = gradcheck::input_gradients(
            &x,
            |conv_in| {
                let mut ctx = RunCtx::train();
                let mut c = conv.clone();
                let y = c.forward(conv_in, &mut ctx)?;
                Ok(y.data().iter().map(|v| v * v).sum::<f32>() * 0.5)
            },
            |conv_in| {
                let mut ctx = RunCtx::train();
                let mut c = conv.clone();
                let y = c.forward(conv_in, &mut ctx)?;
                c.backward(&y, &mut ctx) // d(0.5·Σy²)/dy = y
            },
        )
        .unwrap();
        gradcheck::assert_close(&analytic, &numeric, 2e-2);
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = Rng::new(7);
        let x = Tensor::randn(&[1, 2, 4, 4], Init::Rand, &mut rng);
        let base = mk(8, false);
        let w0 = base.weight().clone();
        let (analytic, numeric) = gradcheck::input_gradients(
            &w0,
            |w| {
                let mut ctx = RunCtx::train();
                let mut c = base.clone();
                c.set_weight(w.clone())?;
                let y = c.forward(&x, &mut ctx)?;
                Ok(y.data().iter().map(|v| v * v).sum::<f32>() * 0.5)
            },
            |w| {
                let mut ctx = RunCtx::train();
                let mut c = base.clone();
                c.set_weight(w.clone())?;
                let y = c.forward(&x, &mut ctx)?;
                c.backward(&y, &mut ctx)?;
                Ok(c.weight_grad().clone())
            },
        )
        .unwrap();
        gradcheck::assert_close(&analytic, &numeric, 2e-2);
    }

    #[test]
    fn bias_gradient_is_spatial_sum() {
        let mut ctx = RunCtx::train();
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, true, Init::Zeros, &mut Rng::new(9));
        let x = Tensor::ones(&[2, 1, 3, 3]);
        conv.forward(&x, &mut ctx).unwrap();
        conv.backward(&Tensor::ones(&[2, 1, 3, 3]), &mut ctx)
            .unwrap();
        let mut grads = Vec::new();
        conv.visit_params(&mut |p| grads.push(p.grad.clone()));
        // grads[1] is the bias: 2 samples × 9 pixels.
        assert_eq!(grads[1].data(), &[18.0]);
    }

    #[test]
    fn set_weight_validates_shape() {
        let mut conv = mk(10, false);
        assert!(conv.set_weight(Tensor::zeros(&[3, 2, 3, 3])).is_ok());
        assert!(conv.set_weight(Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn param_count_includes_bias() {
        assert_eq!(mk(11, false).param_count(), 3 * 2 * 9);
        assert_eq!(mk(12, true).param_count(), 3 * 2 * 9 + 3);
    }

    #[test]
    fn without_weight_decay_clears_flag() {
        let mut conv = mk(13, false).without_weight_decay();
        let mut decays = Vec::new();
        conv.visit_params(&mut |p| decays.push(p.decay));
        assert_eq!(decays, vec![false]);
    }

    #[test]
    fn sparse_hint_does_not_change_results() {
        let mut ctx = RunCtx::train();
        let mut rng = Rng::new(15);
        let x = Tensor::randn(&[2, 2, 6, 6], Init::Rand, &mut rng);
        let mut dense = mk(16, false);
        // Zero out one output channel's filters, as a pruned Wcode would.
        let mut wt = dense.weight().clone();
        let row = 2 * 9; // ci·k² elements per output channel
        for v in wt.data_mut()[row..2 * row].iter_mut() {
            *v = 0.0;
        }
        dense.set_weight(wt.clone()).unwrap();
        let mut sparse = dense.clone();
        sparse.set_sparse_weight_hint(true);
        assert!(sparse.sparse_weight_hint());

        let yd = dense.forward(&x, &mut ctx).unwrap();
        let ys = sparse.forward(&x, &mut ctx).unwrap();
        assert!(yd.allclose(&ys, 1e-6));
        let gd = dense.backward(&yd, &mut ctx).unwrap();
        let gs = sparse.backward(&ys, &mut ctx).unwrap();
        assert!(gd.allclose(&gs, 1e-5));
        assert!(dense.weight_grad().allclose(sparse.weight_grad(), 1e-4));
    }

    #[test]
    fn active_rows_path_is_bitwise_dense_on_live_channels() {
        // With the pruned channels' weight rows zeroed (as a clipped mask
        // guarantees), the declared-occupancy path must match the dense
        // path bit for bit: outputs, input gradients, and the live rows of
        // the weight gradient. Pruned weight-gradient rows stay exact
        // zeros (the dense path computes them; the mask-gated STE discards
        // them either way).
        let mut ctx = RunCtx::train();
        let mut rng = Rng::new(31);
        let x = Tensor::randn(&[2, 2, 6, 6], Init::Rand, &mut rng);
        let mut dense = Conv2d::new(2, 4, 3, 1, 1, false, Init::Rand, &mut Rng::new(32));
        let mut wt = dense.weight().clone();
        let row = 2 * 9;
        for pruned in [1usize, 3] {
            for v in wt.data_mut()[pruned * row..(pruned + 1) * row].iter_mut() {
                *v = 0.0;
            }
        }
        dense.set_weight(wt).unwrap();
        let mut sparse = dense.clone();
        let live = ActiveRows::from_mask(&[1.0, 0.0, 1.0, 0.0]);
        sparse.set_active_rows(Some(live.clone())).unwrap();
        assert_eq!(sparse.active_rows(), Some(&live));

        let yd = dense.forward(&x, &mut ctx).unwrap();
        let ys = sparse.forward(&x, &mut ctx).unwrap();
        assert_eq!(yd.data(), ys.data());
        let gd = dense.backward(&yd, &mut ctx).unwrap();
        let gs = sparse.backward(&ys, &mut ctx).unwrap();
        assert_eq!(gd.data(), gs.data());
        for &c in live.indices() {
            assert_eq!(
                &dense.weight_grad().data()[c * row..(c + 1) * row],
                &sparse.weight_grad().data()[c * row..(c + 1) * row],
                "live channel {c}"
            );
        }
        assert!(sparse.weight_grad().data()[row..2 * row]
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn set_active_rows_rejects_mismatched_descriptor() {
        let mut conv = mk(33, false); // c_out = 3
        let err = conv
            .set_active_rows(Some(ActiveRows::from_mask(&[1.0, 0.0])))
            .unwrap_err();
        assert_eq!(err.op(), "conv2d set_active_rows");
        assert!(conv
            .set_active_rows(Some(ActiveRows::from_mask(&[1.0, 0.0, 1.0])))
            .is_ok());
        assert!(conv.set_active_rows(None).is_ok());
        assert!(conv.active_rows().is_none());
    }

    #[test]
    fn steady_state_step_is_workspace_allocation_free() {
        let mut ctx = RunCtx::train();
        let mut rng = Rng::new(17);
        let x = Tensor::randn(&[2, 2, 8, 8], Init::Rand, &mut rng);
        let mut conv = mk(18, true);
        // Warm up: first step grows every arena slot to steady size.
        for _ in 0..2 {
            let y = conv.forward(&x, &mut ctx).unwrap();
            conv.backward(&y, &mut ctx).unwrap();
        }
        let warm = ctx.ws.alloc_events();
        // Freeze: further growth would trip a debug assertion too.
        ctx.ws.freeze();
        for _ in 0..5 {
            let y = conv.forward(&x, &mut ctx).unwrap();
            conv.backward(&y, &mut ctx).unwrap();
        }
        assert_eq!(ctx.ws.alloc_events(), warm);
    }

    #[test]
    fn two_convs_share_one_arena_without_evictions() {
        // Different-shaped convs drawing from the same RunCtx arena: slots
        // settle at the max size and stay allocation-free afterwards.
        let mut ctx = RunCtx::train();
        let mut rng = Rng::new(21);
        let mut a = Conv2d::new(2, 3, 3, 1, 1, true, Init::Rand, &mut rng);
        let mut b = Conv2d::new(3, 4, 3, 2, 1, false, Init::Rand, &mut rng);
        let x = Tensor::randn(&[2, 2, 8, 8], Init::Rand, &mut rng);
        for _ in 0..2 {
            let ya = a.forward(&x, &mut ctx).unwrap();
            let yb = b.forward(&ya, &mut ctx).unwrap();
            let gb = b.backward(&yb, &mut ctx).unwrap();
            a.backward(&gb, &mut ctx).unwrap();
        }
        let warm = ctx.ws.alloc_events();
        ctx.ws.freeze();
        for _ in 0..3 {
            let ya = a.forward(&x, &mut ctx).unwrap();
            let yb = b.forward(&ya, &mut ctx).unwrap();
            let gb = b.backward(&yb, &mut ctx).unwrap();
            a.backward(&gb, &mut ctx).unwrap();
        }
        assert_eq!(ctx.ws.alloc_events(), warm);
    }

    #[test]
    fn cloned_layer_keeps_cached_columns() {
        let mut ctx = RunCtx::train();
        let mut rng = Rng::new(19);
        let x = Tensor::randn(&[1, 2, 5, 5], Init::Rand, &mut rng);
        let mut conv = mk(20, false);
        let y = conv.forward(&x, &mut ctx).unwrap();
        // Clone mid-step: the clone carries the layer-owned column matrix
        // and must produce the same gradients, even through a fresh ctx.
        let mut clone = conv.clone();
        let mut ctx2 = RunCtx::train();
        let g_orig = conv.backward(&y, &mut ctx).unwrap();
        let g_clone = clone.backward(&y, &mut ctx2).unwrap();
        assert_eq!(g_orig.data(), g_clone.data());
    }

    #[test]
    fn profiler_counts_conv_flops() {
        let mut ctx = RunCtx::train().with_profiler();
        let mut conv = mk(22, false);
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let t = ctx.scope_start();
        let y = conv.forward(&x, &mut ctx).unwrap();
        ctx.scope_end(t, "conv", crate::ctx::Pass::Forward);
        let t = ctx.scope_start();
        conv.backward(&y, &mut ctx).unwrap();
        ctx.scope_end(t, "conv", crate::ctx::Pass::Backward);
        let report = ctx.report().unwrap();
        let l = report.layer("conv").unwrap();
        assert!(l.flops > 0);
        assert!(l.bytes > 0);
    }
}
