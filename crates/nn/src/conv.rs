//! 2-D convolution layer with GEMM forward and exact backward.

use alf_tensor::init::Init;
use alf_tensor::ops::{col2im, conv2d, im2col, matmul_at, matmul_bt, Conv2dSpec};
use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};

use crate::layer::{missing_cache, Layer, Mode, Param};
use crate::Result;

/// Convolutional layer (`NCHW` activations, `[c_out, c_in, k, k]` weights).
///
/// The weight is exposed mutably via [`Conv2d::weight_mut`] because the ALF
/// block *writes* the autoencoder code `Wcode` into the convolution before
/// every forward pass; the gradient that `backward` accumulates on the
/// weight is then routed to `W` through the straight-through estimator
/// (paper Eq. 5).
///
/// # Example
///
/// ```
/// use alf_nn::{Conv2d, Layer, Mode};
/// use alf_tensor::{init::Init, rng::Rng, Tensor};
///
/// # fn main() -> alf_nn::Result<()> {
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, false, Init::He, &mut Rng::new(0));
/// let x = Tensor::zeros(&[2, 3, 16, 16]);
/// let y = conv.forward(&x, Mode::Train)?;
/// assert_eq!(y.dims(), &[2, 8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    spec: Conv2dSpec,
    c_in: usize,
    c_out: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    cols: Tensor,
    input_dims: [usize; 4],
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero (via [`Conv2dSpec::new`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        init: Init,
        rng: &mut Rng,
    ) -> Self {
        let weight = Param::new(
            Tensor::randn(&[c_out, c_in, kernel, kernel], init, rng),
            true,
        );
        let bias = bias.then(|| Param::new(Tensor::zeros(&[c_out]), false));
        Self {
            weight,
            bias,
            spec: Conv2dSpec::new(kernel, stride, pad),
            c_in,
            c_out,
            cache: None,
        }
    }

    /// Geometry of the convolution.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Read-only view of the weight tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable access to the weight tensor (used by the ALF block to inject
    /// `Wcode`).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    /// Gradient accumulated on the weight by the last backward pass.
    pub fn weight_grad(&self) -> &Tensor {
        &self.weight.grad
    }

    /// Replaces the weight tensor entirely.
    ///
    /// # Errors
    ///
    /// Returns an error when the new weight shape differs from the current
    /// one.
    pub fn set_weight(&mut self, weight: Tensor) -> Result<()> {
        self.weight.value.shape().expect_same(weight.shape(), "set_weight")?;
        self.weight.value = weight;
        Ok(())
    }

    /// Disables weight decay on the conv weight (the paper's ALF blocks
    /// train `W` without regularisation).
    pub fn without_weight_decay(mut self) -> Self {
        self.weight.decay = false;
        self
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = conv2d(
            input,
            &self.weight.value,
            self.bias.as_ref().map(|b| &b.value),
            self.spec,
        )?;
        if mode == Mode::Train {
            let dims = input.dims();
            self.cache = Some(Cache {
                cols: im2col(input, self.spec)?,
                input_dims: [dims[0], dims[1], dims[2], dims[3]],
            });
        } else {
            self.cache = None;
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or_else(|| missing_cache("conv2d"))?;
        let [n, ci, h, w] = cache.input_dims;
        let (ho, wo) = self.spec.output_hw(h, w);
        if grad_output.dims() != [n, self.c_out, ho, wo] {
            return Err(ShapeError::new(
                "conv2d backward",
                format!(
                    "grad {} vs expected [{n}x{}x{ho}x{wo}]",
                    grad_output.shape(),
                    self.c_out
                ),
            ));
        }
        let k = self.spec.kernel;
        // Rearrange grad [n, co, ho, wo] → [co, n·ho·wo] to match the GEMM layout.
        let hw = ho * wo;
        let mut gmat = Tensor::zeros(&[self.c_out, n * hw]);
        {
            let src = grad_output.data();
            let dst = gmat.data_mut();
            for b in 0..n {
                for c in 0..self.c_out {
                    let s = &src[(b * self.c_out + c) * hw..(b * self.c_out + c + 1) * hw];
                    let d = &mut dst[c * n * hw + b * hw..c * n * hw + (b + 1) * hw];
                    d.copy_from_slice(s);
                }
            }
        }
        // grad_w = gmat · colsᵀ  → [co, ci·k²]
        let gw = matmul_bt(&gmat, &cache.cols)?;
        self.weight
            .grad
            .axpy(1.0, &gw.reshape(&[self.c_out, ci, k, k])?)?;
        // grad_b = row sums of gmat.
        if let Some(bias) = &mut self.bias {
            let gd = gmat.data();
            for c in 0..self.c_out {
                let row_sum: f32 = gd[c * n * hw..(c + 1) * n * hw].iter().sum();
                bias.grad.data_mut()[c] += row_sum;
            }
        }
        // grad_x = col2im(Wᵀ_mat · gmat).
        let wmat = self.weight.value.reshape(&[self.c_out, ci * k * k])?;
        // Wᵀ · gmat: [ci·k², n·ho·wo]
        let gcols = matmul_at(&wmat, &gmat)?;
        col2im(&gcols, n, ci, h, w, self.spec)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        if let Some(b) = &mut self.bias {
            visitor(b);
        }
    }
}

/// Computes the output of a fixed (non-trainable) convolution; a thin
/// re-export of [`alf_tensor::ops::conv2d`] that deployment code uses so it
/// does not need the layer machinery.
///
/// # Errors
///
/// Propagates shape errors from the underlying kernel.
pub fn conv2d_fixed(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    conv2d(input, weight, bias, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;

    fn mk(rng_seed: u64, bias: bool) -> Conv2d {
        Conv2d::new(2, 3, 3, 1, 1, bias, Init::Rand, &mut Rng::new(rng_seed))
    }

    #[test]
    fn forward_shape() {
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, false, Init::He, &mut Rng::new(0));
        let y = conv
            .forward(&Tensor::zeros(&[4, 3, 32, 32]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[4, 8, 16, 16]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut conv = mk(1, false);
        assert!(conv.backward(&Tensor::zeros(&[1, 3, 4, 4])).is_err());
    }

    #[test]
    fn backward_validates_grad_shape() {
        let mut conv = mk(2, false);
        conv.forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Train)
            .unwrap();
        assert!(conv.backward(&Tensor::zeros(&[1, 3, 5, 5])).is_err());
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut conv = mk(3, false);
        conv.forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Eval)
            .unwrap();
        assert!(conv.backward(&Tensor::zeros(&[1, 3, 4, 4])).is_err());
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = Rng::new(5);
        let x = Tensor::randn(&[2, 2, 5, 5], Init::Rand, &mut rng);
        let conv = mk(6, true);
        let (analytic, numeric) = gradcheck::input_gradients(
            &x,
            |conv_in| {
                let mut c = conv.clone();
                let y = c.forward(conv_in, Mode::Train)?;
                Ok(y.data().iter().map(|v| v * v).sum::<f32>() * 0.5)
            },
            |conv_in| {
                let mut c = conv.clone();
                let y = c.forward(conv_in, Mode::Train)?;
                c.backward(&y) // d(0.5·Σy²)/dy = y
            },
        )
        .unwrap();
        gradcheck::assert_close(&analytic, &numeric, 2e-2);
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = Rng::new(7);
        let x = Tensor::randn(&[1, 2, 4, 4], Init::Rand, &mut rng);
        let base = mk(8, false);
        let w0 = base.weight().clone();
        let (analytic, numeric) = gradcheck::input_gradients(
            &w0,
            |w| {
                let mut c = base.clone();
                c.set_weight(w.clone())?;
                let y = c.forward(&x, Mode::Train)?;
                Ok(y.data().iter().map(|v| v * v).sum::<f32>() * 0.5)
            },
            |w| {
                let mut c = base.clone();
                c.set_weight(w.clone())?;
                let y = c.forward(&x, Mode::Train)?;
                c.backward(&y)?;
                Ok(c.weight_grad().clone())
            },
        )
        .unwrap();
        gradcheck::assert_close(&analytic, &numeric, 2e-2);
    }

    #[test]
    fn bias_gradient_is_spatial_sum() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, true, Init::Zeros, &mut Rng::new(9));
        let x = Tensor::ones(&[2, 1, 3, 3]);
        conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&Tensor::ones(&[2, 1, 3, 3])).unwrap();
        let mut grads = Vec::new();
        conv.visit_params(&mut |p| grads.push(p.grad.clone()));
        // grads[1] is the bias: 2 samples × 9 pixels.
        assert_eq!(grads[1].data(), &[18.0]);
    }

    #[test]
    fn set_weight_validates_shape() {
        let mut conv = mk(10, false);
        assert!(conv.set_weight(Tensor::zeros(&[3, 2, 3, 3])).is_ok());
        assert!(conv.set_weight(Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn param_count_includes_bias() {
        assert_eq!(mk(11, false).param_count(), 3 * 2 * 9);
        assert_eq!(mk(12, true).param_count(), 3 * 2 * 9 + 3);
    }

    #[test]
    fn without_weight_decay_clears_flag() {
        let mut conv = mk(13, false).without_weight_decay();
        let mut decays = Vec::new();
        conv.visit_params(&mut |p| decays.push(p.decay));
        assert_eq!(decays, vec![false]);
    }
}
