//! Finite-difference gradient verification.
//!
//! Every backward pass in the workspace is validated against central
//! differences by the test-suite through [`input_gradients`]. The helper is
//! public (not test-only) so that downstream crates — e.g. the ALF block in
//! `alf-core` — can check their composite gradients too.

use alf_tensor::Tensor;

use crate::Result;

/// Computes the analytic and numeric gradients of a scalar function.
///
/// * `loss` — evaluates the scalar objective at a given input.
/// * `analytic` — returns the gradient the implementation claims.
///
/// The numeric gradient uses central differences with step `1e-3`, a good
/// trade-off for `f32` arithmetic.
///
/// # Errors
///
/// Propagates errors from either closure.
///
/// # Example
///
/// ```
/// use alf_nn::gradcheck;
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_nn::Result<()> {
/// let x = Tensor::from_vec(vec![1.0, -2.0], &[2])?;
/// let (analytic, numeric) = gradcheck::input_gradients(
///     &x,
///     |x| Ok(x.sq_norm() * 0.5),
///     |x| Ok(x.clone()),
/// )?;
/// gradcheck::assert_close(&analytic, &numeric, 1e-2);
/// # Ok(())
/// # }
/// ```
pub fn input_gradients(
    at: &Tensor,
    mut loss: impl FnMut(&Tensor) -> Result<f32>,
    mut analytic: impl FnMut(&Tensor) -> Result<Tensor>,
) -> Result<(Tensor, Tensor)> {
    const H: f32 = 1e-3;
    let grad_analytic = analytic(at)?;
    let mut grad_numeric = Tensor::zeros(at.dims());
    let mut probe = at.clone();
    for i in 0..at.len() {
        let orig = probe.data()[i];
        probe.data_mut()[i] = orig + H;
        let up = loss(&probe)?;
        probe.data_mut()[i] = orig - H;
        let down = loss(&probe)?;
        probe.data_mut()[i] = orig;
        grad_numeric.data_mut()[i] = (up - down) / (2.0 * H);
    }
    Ok((grad_analytic, grad_numeric))
}

/// Asserts two gradients agree within a relative-or-absolute tolerance.
///
/// For each element the check is
/// `|a − n| ≤ tol · max(1, |a|, |n|)` — absolute near zero, relative for
/// large magnitudes.
///
/// # Panics
///
/// Panics (with the worst offending element) when any element violates the
/// tolerance or the shapes differ.
pub fn assert_close(analytic: &Tensor, numeric: &Tensor, tol: f32) {
    assert_eq!(
        analytic.dims(),
        numeric.dims(),
        "gradient shapes differ: {} vs {}",
        analytic.shape(),
        numeric.shape()
    );
    let mut worst = (0usize, 0.0f32);
    for (i, (&a, &n)) in analytic
        .data()
        .iter()
        .zip(numeric.data().iter())
        .enumerate()
    {
        let scale = 1.0f32.max(a.abs()).max(n.abs());
        let err = (a - n).abs() / scale;
        if err > worst.1 {
            worst = (i, err);
        }
    }
    assert!(
        worst.1 <= tol,
        "gradient mismatch at element {}: analytic {} vs numeric {} (rel err {:.2e} > tol {:.1e})",
        worst.0,
        analytic.data()[worst.0],
        numeric.data()[worst.0],
        worst.1,
        tol
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_checks() {
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.0], &[3]).unwrap();
        let (a, n) = input_gradients(&x, |x| Ok(x.sq_norm() * 0.5), |x| Ok(x.clone())).unwrap();
        assert_close(&a, &n, 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn wrong_gradient_is_detected() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let (a, n) = input_gradients(
            &x,
            |x| Ok(x.sq_norm() * 0.5),
            |x| Ok(x.scale(2.0)), // wrong by a factor of 2
        )
        .unwrap();
        assert_close(&a, &n, 1e-2);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn shape_mismatch_is_detected() {
        assert_close(&Tensor::zeros(&[2]), &Tensor::zeros(&[3]), 1.0);
    }
}
