//! Edge-case and property coverage for the fixed-order stride-doubling
//! tree ([`alf_dp::allreduce`]): the reduction the whole determinism
//! story — single-process workers, checkpoint/resume, and the
//! `alf-dist` socket collective — hangs off.

use alf_data::plan::shard_range;
use alf_dp::allreduce::{cross_adds, local_adds, local_roots, tree_reduce_into_first};
use proptest::prelude::*;

/// Deterministic pseudo-random leaves: `n` vectors of `len` f32s with
/// varied signs and magnitudes (so float addition is genuinely
/// non-associative across orders).
fn leaves(n: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Spread across ±[1e-4, ~16): enough dynamic range that
        // reassociating sums changes low-order bits.
        let mantissa = (state >> 40) as f32 / (1u64 << 24) as f32;
        let scale = [1e-4f32, 1e-2, 1.0, 16.0][(state & 3) as usize];
        (mantissa - 0.5) * scale
    };
    (0..n).map(|_| (0..len).map(|_| next()).collect()).collect()
}

/// Executes the reduction via a partition plan: each shard runs its
/// local adds, ships its subtree roots, and a simulated master finishes
/// with the boundary-crossing adds — the exact dataflow of the socket
/// collective.
fn reduce_via_partition(mut leaves: Vec<Vec<f32>>, world: usize) -> Vec<f32> {
    let n = leaves.len();
    let len = leaves[0].len();
    let mut slots: Vec<Option<Vec<f32>>> = vec![None; n];
    for rank in 0..world {
        let shard = shard_range(n, rank, world);
        for (dst, src) in local_adds(n, &shard) {
            let (head, tail) = leaves.split_at_mut(src);
            for (a, v) in head[dst].iter_mut().zip(tail[0].iter()) {
                *a += *v;
            }
        }
        for root in local_roots(n, &shard) {
            slots[root] = Some(std::mem::take(&mut leaves[root]));
        }
    }
    for (dst, src) in cross_adds(n, world) {
        let s = slots[src].take().unwrap();
        let mut d = slots[dst].take().unwrap();
        for (a, v) in d.iter_mut().zip(s.iter()) {
            *a += *v;
        }
        slots[dst] = Some(d);
    }
    let out = slots[0].take().unwrap();
    assert_eq!(out.len(), len);
    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn single_leaf_is_identity() {
    let mut l = leaves(1, 7, 42);
    let want = l[0].clone();
    tree_reduce_into_first(&mut l);
    assert_eq!(bits(&l[0]), bits(&want));
    // The partition plan agrees, for every world size.
    for world in 1..=3 {
        assert_eq!(
            bits(&reduce_via_partition(leaves(1, 7, 42), world)),
            bits(&want)
        );
        assert!(local_adds(1, &shard_range(1, 0, world)).is_empty());
        assert!(cross_adds(1, world).is_empty());
    }
}

#[test]
fn empty_leaf_set_is_a_no_op() {
    let mut l: Vec<Vec<f32>> = Vec::new();
    tree_reduce_into_first(&mut l);
    assert!(l.is_empty());
}

#[test]
fn non_power_of_two_counts_match_the_tree_order_reference() {
    // Reference: replay the stride-doubling schedule by hand.
    for n in [2usize, 3, 5, 6, 7, 9, 11, 12, 13, 15, 17] {
        let reference = {
            let l = leaves(n, 5, n as u64);
            let mut acc = l.clone();
            let mut stride = 1;
            while stride < n {
                let mut dst = 0;
                while dst + stride < n {
                    let src = std::mem::take(&mut acc[dst + stride]);
                    for (a, v) in acc[dst].iter_mut().zip(src.iter()) {
                        *a += *v;
                    }
                    dst += 2 * stride;
                }
                stride *= 2;
            }
            std::mem::take(&mut acc[0])
        };
        let mut l = leaves(n, 5, n as u64);
        tree_reduce_into_first(&mut l);
        assert_eq!(bits(&l[0]), bits(&reference), "n = {n}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any partitioning of the same leaves — any leaf count, any world
    /// size, including worlds larger than the leaf count (empty shards)
    /// — reduces bitwise-identically to the single-slice tree.
    #[test]
    fn every_partitioning_reduces_bitwise_identically(
        n in 1usize..24,
        world in 1usize..9,
        len in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let mut whole = leaves(n, len, seed);
        tree_reduce_into_first(&mut whole);
        let via_parts = reduce_via_partition(leaves(n, len, seed), world);
        prop_assert_eq!(bits(&via_parts), bits(&whole.remove(0)));
    }

    /// The plan covers the tree exactly: every (dst, src) add appears in
    /// exactly one shard's local adds or in the cross adds.
    #[test]
    fn plans_partition_the_add_set(n in 1usize..24, world in 1usize..9) {
        let mut planned: Vec<(usize, usize)> = Vec::new();
        for rank in 0..world {
            planned.extend(local_adds(n, &shard_range(n, rank, world)));
        }
        planned.extend(cross_adds(n, world));
        planned.sort_unstable();
        let mut all: Vec<(usize, usize)> = Vec::new();
        let mut stride = 1;
        while stride < n {
            let mut dst = 0;
            while dst + stride < n {
                all.push((dst, dst + stride));
                dst += 2 * stride;
            }
            stride *= 2;
        }
        all.sort_unstable();
        prop_assert_eq!(planned, all);
    }
}
