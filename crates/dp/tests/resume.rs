//! Fault tolerance: a run killed at an arbitrary step and resumed from
//! its checkpoint must reproduce the weights of an uninterrupted run
//! bitwise — the checkpoint carries model state, SGD momentum, the
//! νprune schedule and the epoch/step/data-seed position, so nothing of
//! the trajectory lives outside the blob.

use alf_core::block::AlfBlockConfig;
use alf_core::models::{plain20, plain20_alf};
use alf_core::AlfHyper;
use alf_data::{Dataset, SynthVision};
use alf_dp::{DpConfig, DpTrainer};
use alf_nn::LrSchedule;

fn small_data(seed: u64) -> Dataset {
    SynthVision::cifar_like(seed)
        .with_image_size(12)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(36)
        .with_test_size(12)
        .with_noise(0.05)
        .build()
        .unwrap()
}

fn config(threads: usize, data_seed: u64) -> DpConfig {
    DpConfig::new(
        AlfHyper {
            task_lr: 0.05,
            batch_size: 6,
            lr_schedule: LrSchedule::Constant,
            ..AlfHyper::default()
        },
        data_seed,
    )
    .with_threads(threads)
}

/// Kill at every step k of a 10-step run (6 steps per epoch, so the
/// range covers killing before, at and after the epoch boundary),
/// resume from the checkpoint into a *differently initialised* model of
/// the same architecture, and finish the run: the final weights must be
/// bitwise identical to the uninterrupted run's.
#[test]
fn kill_at_any_step_and_resume_reproduces_the_run() {
    const STEPS: usize = 10;
    let data = small_data(21);
    let model = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 5).unwrap();

    let mut uninterrupted = DpTrainer::new(model.clone(), config(2, 21)).unwrap();
    uninterrupted.run_steps(&data, STEPS).unwrap();
    let reference = uninterrupted.state_vector();

    for k in [1usize, 5, 6, 9] {
        let mut first = DpTrainer::new(model.clone(), config(2, 21)).unwrap();
        first.run_steps(&data, k).unwrap();
        let blob = first.checkpoint();
        drop(first); // the "kill"

        // A fresh model with a different init seed: every weight the
        // resumed run trains must come from the blob, not from `new`.
        let fresh = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 999).unwrap();
        let mut resumed = DpTrainer::resume(fresh, config(2, 21), &blob).unwrap();
        assert_eq!(
            (resumed.epoch() as usize * 6 + resumed.step() as usize),
            k,
            "checkpoint did not preserve the trajectory position"
        );
        resumed.run_steps(&data, STEPS - k).unwrap();
        assert_eq!(
            resumed.state_vector(),
            reference,
            "resume at step {k} diverged from the uninterrupted run"
        );
    }
}

/// The worker count of the resumed run is independent of the original
/// run's: a 1-worker run killed mid-epoch and resumed at 7 workers
/// still lands on the uninterrupted weights bitwise.
#[test]
fn resume_with_a_different_worker_count_is_bitwise_identical() {
    let data = small_data(22);
    let model = plain20(4, 4).unwrap();

    let mut uninterrupted = DpTrainer::new(model.clone(), config(1, 22)).unwrap();
    uninterrupted.run_steps(&data, 8).unwrap();

    let mut first = DpTrainer::new(model.clone(), config(1, 22)).unwrap();
    first.run_steps(&data, 3).unwrap();
    let blob = first.checkpoint();
    drop(first);

    let fresh = plain20(4, 4).unwrap();
    let mut resumed = DpTrainer::resume(fresh, config(7, 22), &blob).unwrap();
    resumed.run_steps(&data, 5).unwrap();
    assert_eq!(resumed.state_vector(), uninterrupted.state_vector());
}

/// A checkpoint taken exactly at an epoch boundary restores to the
/// start of the next epoch and replays its reshuffle correctly.
#[test]
fn resume_at_an_epoch_boundary() {
    let data = small_data(23);
    let model = plain20(4, 4).unwrap();

    let mut uninterrupted = DpTrainer::new(model.clone(), config(2, 23)).unwrap();
    uninterrupted.run_steps(&data, 9).unwrap();

    let mut first = DpTrainer::new(model, config(2, 23)).unwrap();
    let stats = first.run_steps(&data, 6).unwrap();
    assert_eq!(stats.len(), 1, "6 steps should complete the 6-step epoch");
    let blob = first.checkpoint();
    drop(first);

    let fresh = plain20(4, 4).unwrap();
    let mut resumed = DpTrainer::resume(fresh, config(2, 23), &blob).unwrap();
    assert_eq!((resumed.epoch(), resumed.step()), (1, 0));
    resumed.run_steps(&data, 3).unwrap();
    assert_eq!(resumed.state_vector(), uninterrupted.state_vector());
}
