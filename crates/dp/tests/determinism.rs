//! End-to-end property test of the engine's defining guarantee: the
//! worker count is purely a resource knob. Trainers started from the
//! same model and data seed must hold bitwise-identical state after the
//! same number of steps, whether they shard each batch over 1, 2, 4 or
//! 7 workers — including steps that cross an epoch boundary (reshuffle,
//! held-out evaluation, epoch counter roll-over).

use alf_core::block::AlfBlockConfig;
use alf_core::models::{plain20, plain20_alf};
use alf_core::AlfHyper;
use alf_data::{Dataset, SynthVision};
use alf_dp::{DpConfig, DpTrainer};
use alf_nn::LrSchedule;
use proptest::prelude::*;

fn small_data(seed: u64) -> Dataset {
    SynthVision::cifar_like(seed)
        .with_image_size(12)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(36)
        .with_test_size(12)
        .with_noise(0.05)
        .build()
        .unwrap()
}

fn config(threads: usize, data_seed: u64) -> DpConfig {
    DpConfig::new(
        AlfHyper {
            task_lr: 0.05,
            batch_size: 6,
            lr_schedule: LrSchedule::Constant,
            ..AlfHyper::default()
        },
        data_seed,
    )
    .with_threads(threads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Four trainers at 1/2/4/7 workers, same model and seeds, 8 steps
    /// over a 6-step epoch (so the run crosses the epoch boundary):
    /// bitwise-equal full state, including the ALF autoencoder players.
    #[test]
    fn worker_count_never_changes_the_trajectory(
        data_seed in 0u64..1000,
        model_seed in 0u64..1000,
    ) {
        let data = small_data(data_seed);
        let model =
            plain20_alf(4, 4, AlfBlockConfig::paper_default(), model_seed).unwrap();
        let mut states = Vec::new();
        for threads in [1usize, 2, 4, 7] {
            let mut t =
                DpTrainer::new(model.clone(), config(threads, data_seed)).unwrap();
            t.run_steps(&data, 8).unwrap();
            prop_assert_eq!((t.epoch(), t.step()), (1, 2));
            states.push((threads, t.state_vector()));
        }
        let (_, reference) = &states[0];
        for (threads, state) in &states[1..] {
            prop_assert_eq!(
                state, reference,
                "state diverged between 1 and {} workers", threads
            );
        }
    }
}

/// The same guarantee for the plain (BN-only, no autoencoder) model,
/// where the frozen-statistics pilot-forward path is the part under
/// stress, over a full epoch via `run_epoch`.
#[test]
fn plain_model_epoch_is_worker_count_invariant() {
    let data = small_data(11);
    let model = plain20(4, 4).unwrap();
    let mut reference = None;
    for threads in [1usize, 2, 4, 7] {
        let mut t = DpTrainer::new(model.clone(), config(threads, 11)).unwrap();
        let stats = t.run_epoch(&data).unwrap();
        let state = t.state_vector();
        match &reference {
            None => reference = Some((stats, state)),
            Some((ref_stats, ref_state)) => {
                assert_eq!(&state, ref_state, "weights diverged at {threads} workers");
                assert_eq!(stats.train_loss, ref_stats.train_loss);
                assert_eq!(stats.train_accuracy, ref_stats.train_accuracy);
                assert_eq!(stats.test_accuracy, ref_stats.test_accuracy);
            }
        }
    }
}
