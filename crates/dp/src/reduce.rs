//! The reduction seam between in-process and socket-distributed training.
//!
//! [`DpTrainer::advance_step_with`](crate::DpTrainer::advance_step_with)
//! delegates two decisions to a [`Reducer`]: *which contiguous slice of
//! the batch this participant computes* ([`Reducer::partition`]) and *how
//! the per-sample gradient leaves become the one reduced gradient every
//! participant applies* ([`Reducer::reduce`]). The in-process
//! [`LocalReducer`] owns the whole batch and runs
//! [`tree_reduce_into_first`] directly; `alf-dist`'s socket reducer owns
//! one shard per rank and exchanges subtree partial sums so that the
//! very same adds happen in the very same order — which is why both
//! backends produce bitwise-identical weights (see
//! [`crate::allreduce`]).

use std::fmt;
use std::ops::Range;

use alf_core::CnnModel;
use alf_tensor::ShapeError;

use crate::allreduce::tree_reduce_into_first;

/// Failure of a reduction backend.
#[derive(Debug)]
pub enum ReduceError {
    /// Arithmetic or shape failure inside the training step itself.
    Shape(ShapeError),
    /// The reduction transport failed — a lost rank, a protocol
    /// mismatch, a corrupt frame. In-process reduction never produces
    /// this; `alf-dist` carries its typed `DistError` here (recover it
    /// with [`std::error::Error`] downcasting on the box).
    Transport(Box<dyn std::error::Error + Send + Sync + 'static>),
}

impl ReduceError {
    /// Collapses into a [`ShapeError`] for callers on the in-process
    /// path, where `Transport` cannot occur.
    pub(crate) fn into_shape(self) -> ShapeError {
        match self {
            ReduceError::Shape(e) => e,
            ReduceError::Transport(e) => ShapeError::new("reduce", e.to_string()),
        }
    }
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::Shape(e) => e.fmt(f),
            ReduceError::Transport(e) => write!(f, "reduction transport: {e}"),
        }
    }
}

impl std::error::Error for ReduceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReduceError::Shape(e) => Some(e),
            ReduceError::Transport(e) => Some(e.as_ref()),
        }
    }
}

impl From<ShapeError> for ReduceError {
    fn from(e: ShapeError) -> Self {
        ReduceError::Shape(e)
    }
}

/// Read-only step coordinates handed to [`Reducer::reduce`].
///
/// `model` is the participant's model *before* this step's optimizer
/// update — the state whose masks gated the backward pass that produced
/// the leaves. A sparse gradient codec may derive live-row descriptors
/// from it, because pruned rows of a gated-STE block's weight gradient
/// are exactly zero in every leaf (and hence in every partial sum).
pub struct StepContext<'a> {
    /// The model that produced the leaves (pre-update state).
    pub model: &'a CnnModel,
    /// Epoch of the step in progress.
    pub epoch: u64,
    /// Step within the epoch.
    pub step: u64,
    /// Total batch size `b` — the leaf count across all participants.
    pub batch: usize,
}

/// What a reduction returns: everything downstream of the all-reduce
/// that every participant must agree on bitwise.
pub struct ReducedStep {
    /// The tree-reduced gradient sum over all `b` leaves (unscaled; the
    /// trainer applies the `1/b` batch mean, clip and optimizer step).
    pub grad: Vec<f32>,
    /// Deterministic slot-order `f64` fold of all `b` per-sample losses.
    pub loss_sum: f64,
    /// Total correctly-classified samples across the batch.
    pub correct: usize,
}

/// A gradient-reduction backend for [`crate::DpTrainer`].
pub trait Reducer {
    /// The contiguous range of batch slots this participant computes
    /// leaves for. Must satisfy `partition(b) ⊆ 0..b`.
    fn partition(&self, batch: usize) -> Range<usize>;

    /// Reduces the batch's per-sample leaves into one [`ReducedStep`].
    ///
    /// `leaves`, `losses` and `corrects` cover exactly this
    /// participant's [`Reducer::partition`] of the batch, indexed from
    /// the partition start. Leaves are scratch: implementations may
    /// consume or overwrite them.
    ///
    /// # Errors
    ///
    /// [`ReduceError::Transport`] when a distributed backend loses a
    /// peer or the wire protocol fails; [`ReduceError::Shape`] when the
    /// leaves are malformed.
    fn reduce(
        &mut self,
        leaves: &mut [Vec<f32>],
        losses: &[f32],
        corrects: &[u8],
        ctx: &StepContext<'_>,
    ) -> Result<ReducedStep, ReduceError>;
}

/// The in-process backend: this participant owns the whole batch and
/// reduces it with [`tree_reduce_into_first`] — byte-for-byte the
/// behaviour `DpTrainer` had before the seam existed.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalReducer;

impl Reducer for LocalReducer {
    fn partition(&self, batch: usize) -> Range<usize> {
        0..batch
    }

    fn reduce(
        &mut self,
        leaves: &mut [Vec<f32>],
        losses: &[f32],
        corrects: &[u8],
        _ctx: &StepContext<'_>,
    ) -> Result<ReducedStep, ReduceError> {
        if leaves.is_empty() {
            return Err(ReduceError::Shape(ShapeError::new(
                "reduce",
                "local reduction over an empty batch",
            )));
        }
        tree_reduce_into_first(leaves);
        let mut loss_sum = 0.0f64;
        for &l in losses {
            loss_sum += f64::from(l);
        }
        let correct = corrects.iter().map(|&c| usize::from(c)).sum();
        Ok(ReducedStep {
            grad: std::mem::take(&mut leaves[0]),
            loss_sum,
            correct,
        })
    }
}
