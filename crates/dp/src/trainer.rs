//! The data-parallel two-player trainer.

use alf_core::checkpoint::{self, TrainerState};
use alf_core::train::resolve_threads;
use alf_core::AeStats;
use alf_core::{AlfHyper, CnnModel, EpochStats, Evaluator, StateSnapshot, TrainReport};
use alf_data::plan::{shard_range, EpochPlan};
use alf_data::{Dataset, Split};
use alf_nn::layer::Layer;
use alf_nn::loss::{correct_count, softmax_cross_entropy};
use alf_nn::optim::Sgd;
use alf_nn::RunCtx;
use alf_obs::events::{EventLog, TelemetrySink};
use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};
use bytes::Bytes;

use crate::reduce::{LocalReducer, ReduceError, Reducer, StepContext};
use crate::Result;

/// Configuration of a [`DpTrainer`].
#[derive(Debug, Clone)]
pub struct DpConfig {
    /// The two-player hyper-parameters (shared with `AlfTrainer`).
    pub hyper: AlfHyper,
    /// Worker count. `None` defers to `ALF_DP_THREADS`, then to the
    /// host's available parallelism ([`resolve_threads`]); the choice
    /// never changes training results, only wall-clock.
    pub threads: Option<usize>,
    /// Seed of the deterministic data-order stream: epoch shuffles and
    /// per-sample augmentation draws are pure functions of this seed and
    /// the (epoch, step, slot) coordinates.
    pub data_seed: u64,
    /// Global L2 clip applied to the reduced task gradient before the
    /// optimizer step. Frozen-statistics normalisation (see
    /// [`crate#`][crate]) lacks batch BN's implicit gradient contraction,
    /// so deep plain networks need this guard; the clip is computed on
    /// the already-reduced flat gradient, so it is as deterministic as
    /// the reduction itself. `None` disables clipping.
    pub max_grad_norm: Option<f32>,
}

impl DpConfig {
    /// Default configuration over `hyper` with the given data seed.
    pub fn new(hyper: AlfHyper, data_seed: u64) -> Self {
        Self {
            hyper,
            threads: None,
            data_seed,
            max_grad_norm: Some(1.0),
        }
    }

    /// Pins the worker count (clamped to at least 1), overriding both
    /// `ALF_DP_THREADS` and the host default.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

/// Derives the augmentation generator for one sample as a pure function
/// of `(data_seed, epoch, step, slot)` — `slot` being the sample's
/// position within its batch. Workers therefore draw identical
/// augmentations for a given sample no matter which shard it lands in,
/// and a resumed run replays the exact draws of the original.
fn sample_rng(data_seed: u64, epoch: u64, step: u64, slot: u64) -> Rng {
    let mut h = Rng::new(data_seed).next_u64();
    h ^= Rng::new(epoch).next_u64().rotate_left(1);
    h ^= Rng::new(step).next_u64().rotate_left(2);
    h ^= Rng::new(slot).next_u64().rotate_left(3);
    Rng::new(h)
}

/// Splits `slice` into `shards` consecutive chunks following
/// [`shard_range`], so chunk `s` covers exactly that shard's index range.
fn split_shards<T>(mut slice: &mut [T], shards: usize) -> Vec<&mut [T]> {
    let len = slice.len();
    let mut out = Vec::with_capacity(shards);
    let mut consumed = 0usize;
    for s in 0..shards {
        let r = shard_range(len, s, shards);
        let (head, tail) = slice.split_at_mut(r.end - consumed);
        out.push(head);
        consumed = r.end;
        slice = tail;
    }
    out
}

fn total_param_len(model: &CnnModel) -> usize {
    let mut n = 0usize;
    model.visit_params_ref(&mut |p| n += p.value.len());
    n
}

/// Data-parallel counterpart of `alf_core::AlfTrainer`.
///
/// Each step shards the minibatch over long-lived worker replicas,
/// reduces the per-sample gradients with the fixed-order tree
/// ([`crate::allreduce`]), applies one task-optimizer step on the master
/// model, then runs the per-block autoencoder players block-per-worker.
/// Weights after any number of steps are bitwise independent of the
/// worker count, and [`DpTrainer::checkpoint`] / [`DpTrainer::resume`]
/// make a killed run reproduce an uninterrupted one bitwise.
///
/// # Example
///
/// ```no_run
/// use alf_core::models::plain20_alf;
/// use alf_core::{AlfBlockConfig, AlfHyper};
/// use alf_data::SynthVision;
/// use alf_dp::{DpConfig, DpTrainer};
///
/// # fn main() -> alf_dp::Result<()> {
/// let data = SynthVision::cifar_like(0).with_train_size(256).build()?;
/// let model = plain20_alf(10, 8, AlfBlockConfig::paper_default(), 7)?;
/// let config = DpConfig::new(AlfHyper::default(), 7).with_threads(4);
/// let mut trainer = DpTrainer::new(model, config)?;
/// let report = trainer.run(&data, 3)?;
/// let blob = trainer.checkpoint(); // resumable v2 checkpoint
/// println!("acc {:.2} ({} bytes)", report.final_accuracy(), blob.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DpTrainer {
    model: CnnModel,
    config: DpConfig,
    task_opt: Sgd,
    snapshot: StateSnapshot,
    replicas: Vec<(CnnModel, RunCtx)>,
    ae_ctxs: Vec<RunCtx>,
    // Master context (train mode) for the per-step BN pilot forward.
    ctx: RunCtx,
    eval: Evaluator,
    // Trajectory position — checkpointed.
    epoch: u64,
    step: u64,
    data_seed: u64,
    // Reusable per-step buffers (one gradient leaf per sample).
    leaves: Vec<Vec<f32>>,
    sample_loss: Vec<f32>,
    sample_correct: Vec<u8>,
    // Epoch statistics accumulators — *not* checkpointed: a resumed
    // epoch's reported stats cover only post-resume steps (weights are
    // unaffected; see DESIGN.md).
    loss_sum: f64,
    correct: usize,
    seen: usize,
    l_rec_sum: f64,
    batches_done: usize,
    // Per-step JSONL telemetry; disabled (one branch per step) by default.
    telemetry: EventLog,
}

impl DpTrainer {
    /// Creates a trainer over a model.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid configurations; kept fallible for
    /// forward compatibility with validated configs (mirrors
    /// `AlfTrainer::new`).
    pub fn new(model: CnnModel, config: DpConfig) -> Result<Self> {
        let task_opt = Sgd::new(
            config.hyper.task_lr,
            config.hyper.momentum,
            config.hyper.weight_decay,
        );
        let eval = match config.threads {
            Some(n) => Evaluator::with_threads(n),
            None => Evaluator::new(),
        };
        let data_seed = config.data_seed;
        Ok(Self {
            model,
            config,
            task_opt,
            snapshot: StateSnapshot::new(),
            replicas: Vec::new(),
            ae_ctxs: Vec::new(),
            ctx: RunCtx::train(),
            eval,
            epoch: 0,
            step: 0,
            data_seed,
            leaves: Vec::new(),
            sample_loss: Vec::new(),
            sample_correct: Vec::new(),
            loss_sum: 0.0,
            correct: 0,
            seen: 0,
            l_rec_sum: 0.0,
            batches_done: 0,
            telemetry: EventLog::disabled(),
        })
    }

    /// Streams per-step and per-epoch telemetry (`train.step` /
    /// `train.epoch` JSONL events) into `sink`. Telemetry is read-only —
    /// it observes losses, gradient norms and mask statistics the step
    /// already computed — so enabling it never changes trained weights
    /// (asserted bitwise in `tests/telemetry.rs`).
    pub fn set_telemetry_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.telemetry = EventLog::new(sink);
    }

    /// Disables telemetry (the default), restoring the one-branch-per-step
    /// off path.
    pub fn clear_telemetry(&mut self) {
        self.telemetry = EventLog::disabled();
    }

    /// The trainer's event log (e.g. to flush the sink mid-run).
    pub fn telemetry_mut(&mut self) -> &mut EventLog {
        &mut self.telemetry
    }

    /// Restores a trainer from a checkpoint blob
    /// (`alf_core::checkpoint::save` or [`DpTrainer::checkpoint`]).
    ///
    /// `model` must have the checkpoint's architecture (typically the
    /// same constructor call that produced the original model; its fresh
    /// weights are overwritten). A v2 blob restores the full trajectory —
    /// momentum, schedule, epoch/step position and data seed — so
    /// subsequent steps are bitwise identical to an uninterrupted run,
    /// *regardless of the worker count of either run*. A v1 (model-only)
    /// blob restores the weights and starts a fresh trajectory at the
    /// configured seed.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint validation errors (malformed blob,
    /// architecture mismatch, momentum shape mismatch).
    pub fn resume(model: CnnModel, config: DpConfig, blob: &[u8]) -> Result<Self> {
        let mut t = Self::new(model, config)?;
        if let Some(state) = checkpoint::load_trainer(&mut t.model, blob)? {
            t.task_opt.set_velocities(state.momentum);
            t.config.hyper.prune_schedule = state.schedule;
            t.epoch = state.epoch;
            t.step = state.step;
            t.data_seed = state.data_seed;
        }
        Ok(t)
    }

    /// Serialises the full trainer state — model, SGD momentum, `νprune`
    /// schedule and the epoch/step/data-seed position — as a v2
    /// checkpoint blob for [`DpTrainer::resume`].
    pub fn checkpoint(&self) -> Bytes {
        checkpoint::save_trainer(
            &self.model,
            &TrainerState {
                momentum: self.task_opt.velocities().to_vec(),
                schedule: self.config.hyper.prune_schedule,
                epoch: self.epoch,
                step: self.step,
                data_seed: self.data_seed,
            },
        )
    }

    /// The model being trained.
    pub fn model(&self) -> &CnnModel {
        &self.model
    }

    /// Mutable access to the model (e.g. for deployment after training).
    pub fn model_mut(&mut self) -> &mut CnnModel {
        &mut self.model
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> CnnModel {
        self.model
    }

    /// Current epoch (0-based; the epoch in progress).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Step within the current epoch (batches already consumed).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The worker count the next step will use for a batch of
    /// `batch_size` samples (before clamping to the batch's actual
    /// length).
    pub fn resolved_threads(&self) -> usize {
        resolve_threads(self.config.threads, "ALF_DP_THREADS")
    }

    /// Runs `epochs` additional epochs, returning the statistics for the
    /// epochs run in *this* call.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the model or data pipeline.
    pub fn run(&mut self, data: &Dataset, epochs: usize) -> Result<TrainReport> {
        let mut report = TrainReport {
            model_name: self.model.name().to_string(),
            epochs: Vec::with_capacity(epochs),
        };
        for _ in 0..epochs {
            report.epochs.push(self.run_epoch(data)?);
        }
        Ok(report)
    }

    /// Runs until the current epoch completes (for a fresh trainer: one
    /// full epoch), returning its statistics.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the model or data pipeline.
    pub fn run_epoch(&mut self, data: &Dataset) -> Result<EpochStats> {
        loop {
            if let Some(stats) = self.advance_step(data)? {
                return Ok(stats);
            }
        }
    }

    /// Runs exactly `steps` optimisation steps (crossing epoch
    /// boundaries as needed), returning the statistics of any epochs
    /// completed along the way. The granularity used by kill/resume
    /// tests and checkpoint-interval loops.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the model or data pipeline.
    pub fn run_steps(&mut self, data: &Dataset, steps: usize) -> Result<Vec<EpochStats>> {
        let mut out = Vec::new();
        for _ in 0..steps {
            if let Some(stats) = self.advance_step(data)? {
                out.push(stats);
            }
        }
        Ok(out)
    }

    /// Runs one optimisation step (one round of the two-player game on
    /// one batch). Returns `Some(stats)` when the step completed an
    /// epoch (after the held-out evaluation), `None` otherwise.
    ///
    /// # Errors
    ///
    /// Fails on an empty training split, a checkpoint position past the
    /// end of the epoch (resume against mismatched data), and any shape
    /// error from the model or data pipeline.
    pub fn advance_step(&mut self, data: &Dataset) -> Result<Option<EpochStats>> {
        self.advance_step_with(data, &mut LocalReducer)
            .map_err(ReduceError::into_shape)
    }

    /// [`DpTrainer::advance_step`] with an explicit reduction backend.
    ///
    /// The reducer decides which contiguous batch slice this participant
    /// computes ([`Reducer::partition`]) and performs the all-reduce
    /// ([`Reducer::reduce`]); everything downstream — batch-mean
    /// scaling, gradient clip, optimizer step, the autoencoder player,
    /// epoch statistics — replays identically on every participant from
    /// the reduced result, which is what keeps distributed ranks in
    /// bitwise lockstep (see `alf-dist`).
    ///
    /// # Errors
    ///
    /// [`ReduceError::Shape`] for model/data failures (the
    /// [`DpTrainer::advance_step`] contract), [`ReduceError::Transport`]
    /// when a distributed backend fails.
    pub fn advance_step_with(
        &mut self,
        data: &Dataset,
        reducer: &mut dyn Reducer,
    ) -> std::result::Result<Option<EpochStats>, ReduceError> {
        let n = data.len_of(Split::Train);
        if n == 0 {
            return Err(ReduceError::Shape(ShapeError::new(
                "dp_train",
                "empty training split",
            )));
        }
        let batch_size = self.config.hyper.batch_size;
        let plan = EpochPlan::new(n, batch_size, self.data_seed, self.epoch);
        if self.step as usize >= plan.num_batches() {
            return Err(ReduceError::Shape(ShapeError::new(
                "dp_train",
                format!(
                    "step {} out of range: epoch has {} batches (resumed against different data?)",
                    self.step,
                    plan.num_batches()
                ),
            )));
        }
        if self.step == 0 {
            self.loss_sum = 0.0;
            self.correct = 0;
            self.seen = 0;
            self.l_rec_sum = 0.0;
            self.batches_done = 0;
        }

        let batch = plan.batch(self.step as usize).to_vec();
        let b = batch.len();
        // This participant's contiguous slice of the batch. The local
        // backend owns all of it; a distributed rank owns its shard and
        // leaves the rest to its peers.
        let part = reducer.partition(b);
        if part.start > part.end || part.end > b {
            return Err(ReduceError::Shape(ShapeError::new(
                "dp_train",
                format!("reducer partition {part:?} outside batch 0..{b}"),
            )));
        }
        let plen = part.len();

        // --- BN statistics: master pilot forward ---
        // Workers normalise with *frozen* running statistics (batch
        // statistics over a one-sample shard would tie the run to the
        // shard layout), so the master refreshes those statistics first
        // with one train-mode forward over the clean batch — the same
        // EMA tracking ordinary BN training performs, computed at batch
        // granularity on a single thread. A pure function of the
        // trajectory position, never of the worker count.
        let (pilot, _labels) = data.gather(Split::Train, &batch)?;
        self.model.forward(&pilot, &mut self.ctx)?;

        // --- task player: shard this participant's slice over workers ---
        let threads = resolve_threads(self.config.threads, "ALF_DP_THREADS")
            .min(plen.max(1))
            .max(1);
        self.sync_replicas(threads);
        self.leaves.resize_with(plen, Vec::new);
        self.sample_loss.resize(plen, 0.0);
        self.sample_correct.resize(plen, 0);
        if plen > 0 {
            let (epoch, step, data_seed) = (self.epoch, self.step, self.data_seed);
            let augment = self.config.hyper.augment;
            let batch = &batch[..];
            let part_start = part.start;
            let leaf_chunks = split_shards(&mut self.leaves[..plen], threads);
            let loss_chunks = split_shards(&mut self.sample_loss[..plen], threads);
            let correct_chunks = split_shards(&mut self.sample_correct[..plen], threads);
            let replicas = &mut self.replicas[..threads];
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (s, (((leaves, losses), corrects), slot)) in leaf_chunks
                    .into_iter()
                    .zip(loss_chunks)
                    .zip(correct_chunks)
                    .zip(replicas.iter_mut())
                    .enumerate()
                {
                    let range = shard_range(plen, s, threads);
                    handles.push(scope.spawn(move |_| -> Result<()> {
                        let (replica, ctx) = slot;
                        for (local, p) in range.enumerate() {
                            // Global batch slot: augmentation draws and
                            // leaf positions are keyed by it, never by
                            // the shard or partition layout.
                            let j = part_start + p;
                            // Per-sample granularity: no float accumulation
                            // crosses a shard boundary, so the leaves are
                            // independent of the shard layout.
                            let (mut images, labels) = data.gather(Split::Train, &[batch[j]])?;
                            if let Some(policy) = &augment {
                                let mut rng = sample_rng(data_seed, epoch, step, j as u64);
                                policy.apply(&mut images, &mut rng)?;
                            }
                            replica.zero_grads();
                            let logits = replica.forward(&images, ctx)?;
                            let (loss, grad) = softmax_cross_entropy(&logits, &labels)?;
                            let right = correct_count(&logits, &labels)?;
                            replica.backward(&grad, ctx)?;
                            let leaf = &mut leaves[local];
                            leaf.clear();
                            replica.visit_params_ref(&mut |p| {
                                leaf.extend_from_slice(p.grad.data());
                            });
                            losses[local] = loss;
                            corrects[local] = right as u8;
                        }
                        Ok(())
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("dp worker panicked"))
                    .collect::<Result<Vec<_>>>()
            })
            .expect("dp scope panicked")?;
        }

        // Reduce the per-sample leaves in the fixed tree order, then scale
        // to the batch mean. Both are pure functions of the batch size.
        let expected = total_param_len(&self.model);
        let reduced = {
            let step_ctx = StepContext {
                model: &self.model,
                epoch: self.epoch,
                step: self.step,
                batch: b,
            };
            reducer.reduce(
                &mut self.leaves[..plen],
                &self.sample_loss[..plen],
                &self.sample_correct[..plen],
                &step_ctx,
            )?
        };
        let mut grad = reduced.grad;
        if grad.len() != expected {
            return Err(ReduceError::Shape(ShapeError::new(
                "dp_train",
                format!(
                    "reduced gradient has {} values, model has {expected}",
                    grad.len()
                ),
            )));
        }
        let inv_b = 1.0 / b as f32;
        for g in grad.iter_mut() {
            *g *= inv_b;
        }
        let grad_norm = if self.config.max_grad_norm.is_some() || self.telemetry.is_enabled() {
            // Deterministic left fold over the reduced gradient; the clip
            // depends only on the reduced values, never on shard layout.
            // (With clipping off this runs only for telemetry, and is
            // read-only either way.)
            let mut sq = 0.0f32;
            for &g in grad.iter() {
                sq += g * g;
            }
            sq.sqrt()
        } else {
            0.0
        };
        let mut post_clip_norm = grad_norm;
        if let Some(max_norm) = self.config.max_grad_norm {
            if grad_norm > max_norm {
                let scale = max_norm / grad_norm;
                for g in grad.iter_mut() {
                    *g *= scale;
                }
                post_clip_norm = max_norm;
            }
        }
        let lr = self
            .config
            .hyper
            .lr_schedule
            .lr_at(self.config.hyper.task_lr, self.epoch as usize);
        self.task_opt.set_lr(lr);
        self.task_opt.step_layer_from_flat(&mut self.model, &grad);

        // --- autoencoder player: one block per worker ---
        let ae_stats = self.ae_player_step(threads)?;

        // Loss statistics in fixed slot order (f64 so the accumulation is
        // well-conditioned; still a deterministic left fold). The reducer
        // already folded all b slots — for the local backend this is the
        // same left fold as always; a distributed backend folds each
        // rank's slice in rank order, which is slot order.
        let batch_loss = reduced.loss_sum;
        self.loss_sum += batch_loss / b as f64;
        self.correct += reduced.correct;
        self.seen += b;
        self.batches_done += 1;
        if let Some(mut ev) = self.telemetry.event("train.step") {
            ev.field_u64("epoch", self.epoch);
            ev.field_u64("step", self.step);
            ev.field_f32("task_loss", (batch_loss / b as f64) as f32);
            ev.field_f32("lr", lr);
            ev.field_f32("grad_norm", grad_norm);
            ev.field_f32("grad_norm_clipped", post_clip_norm);
            ev.field_u64("workers", threads as u64);
            ev.field_f32s("l_rec", ae_stats.iter().map(|s| s.l_rec));
            ev.field_f32s("l_prune", ae_stats.iter().map(|s| s.l_prune));
            ev.field_f32s("nu_prune", ae_stats.iter().map(|s| s.nu_prune));
            ev.field_f32s(
                "mask_occupancy",
                ae_stats.iter().map(|s| 1.0 - s.zero_fraction),
            );
        }
        self.step += 1;

        if self.step as usize == plan.num_batches() {
            let test_accuracy = self
                .eval
                .evaluate(&self.model, data, Split::Test, batch_size)?;
            let stats = EpochStats {
                epoch: self.epoch as usize,
                train_loss: (self.loss_sum / self.batches_done.max(1) as f64) as f32,
                train_accuracy: self.correct as f32 / self.seen.max(1) as f32,
                test_accuracy,
                remaining_filters: self.model.remaining_filter_fraction(),
                mean_l_rec: (self.l_rec_sum / self.batches_done.max(1) as f64) as f32,
            };
            if let Some(mut ev) = self.telemetry.event("train.epoch") {
                ev.field_u64("epoch", stats.epoch as u64);
                ev.field_f32("train_loss", stats.train_loss);
                ev.field_f32("train_accuracy", stats.train_accuracy);
                ev.field_f32("test_accuracy", stats.test_accuracy);
                ev.field_f32("remaining_filters", stats.remaining_filters);
                ev.field_f32("mean_l_rec", stats.mean_l_rec);
            }
            self.telemetry.flush();
            self.epoch += 1;
            self.step = 0;
            return Ok(Some(stats));
        }
        Ok(None)
    }

    /// One move of the autoencoder player on every ALF block, blocks
    /// distributed block-per-worker. Blocks are mutually independent, so
    /// parallelising across them cannot change any block's arithmetic;
    /// reconstruction losses are folded in block order on the master.
    ///
    /// Returns each block's final [`AeStats`] in block order (empty when
    /// the model has no ALF blocks) — read-only observations for the
    /// telemetry stream.
    fn ae_player_step(&mut self, threads: usize) -> Result<Vec<AeStats>> {
        let ae_lr = self.config.hyper.ae_lr;
        let schedule = self.config.hyper.prune_schedule;
        let ae_steps = self.config.hyper.ae_steps_per_batch.max(1);
        let blocks = self.model.alf_blocks_mut();
        let n_blocks = blocks.len();
        if n_blocks == 0 {
            return Ok(Vec::new());
        }
        let ae_threads = threads.min(n_blocks).max(1);
        while self.ae_ctxs.len() < ae_threads {
            self.ae_ctxs.push(RunCtx::train());
        }
        // Chunk the blocks by shard, back to front so split_off leaves the
        // earlier shards behind.
        let mut chunks = Vec::with_capacity(ae_threads);
        {
            let mut rest = blocks;
            for s in (0..ae_threads).rev() {
                let r = shard_range(n_blocks, s, ae_threads);
                chunks.push(rest.split_off(r.start));
            }
            chunks.reverse();
        }
        let ctxs = &mut self.ae_ctxs[..ae_threads];
        let stats = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (chunk, ctx) in chunks.into_iter().zip(ctxs.iter_mut()) {
                handles.push(scope.spawn(move |_| -> Result<Vec<AeStats>> {
                    let mut out = Vec::with_capacity(chunk.len());
                    for block in chunk {
                        let mut last = None;
                        for _ in 0..ae_steps {
                            last = Some(block.autoencoder_step_in(ae_lr, &schedule, ctx)?);
                        }
                        out.push(last.expect("ae_steps >= 1"));
                    }
                    Ok(out)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("ae worker panicked"))
                .collect::<Result<Vec<_>>>()
        })
        .expect("ae scope panicked")?;
        // Fold the losses in block order (chunks are consecutive block
        // ranges), bitwise identical to the pre-telemetry scalar fold.
        let mut block_l_rec = 0.0f64;
        for chunk_stats in &stats {
            for s in chunk_stats {
                block_l_rec += f64::from(s.l_rec);
            }
        }
        self.l_rec_sum += block_l_rec / n_blocks as f64;
        Ok(stats.into_iter().flatten().collect())
    }

    /// Brings `threads` worker replicas up to date with the master:
    /// in-place state copy where the structure matches, full re-clone
    /// otherwise (the [`StateSnapshot`] pattern shared with `Evaluator`
    /// and `alf-serve`).
    fn sync_replicas(&mut self, threads: usize) {
        self.snapshot.capture(&self.model);
        self.replicas.truncate(threads);
        for (replica, _) in &mut self.replicas {
            if !self.snapshot.restore(replica) {
                *replica = self.model.clone();
            }
        }
        while self.replicas.len() < threads {
            // Workers train with frozen normalisation statistics: batch
            // stats over a single-sample shard would tie the run to the
            // shard layout, while the running stats (refreshed by
            // `calibrate_bn`) are part of the synced weights.
            let mut ctx = RunCtx::train();
            ctx.set_freeze_norm(true);
            self.replicas.push((self.model.clone(), ctx));
        }
    }

    /// Flat copy of the model's full persistent state, for bitwise
    /// comparisons in tests and the determinism gate of `train_bench`.
    pub fn state_vector(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.model
            .visit_state_ref(&mut |t: &Tensor| out.extend_from_slice(t.data()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_core::block::AlfBlockConfig;
    use alf_core::models::{plain20, plain20_alf};
    use alf_data::SynthVision;
    use alf_nn::LrSchedule;

    fn small_data(seed: u64) -> Dataset {
        SynthVision::cifar_like(seed)
            .with_image_size(12)
            .with_max_shift(1)
            .with_num_classes(4)
            .with_train_size(96)
            .with_test_size(48)
            .with_noise(0.05)
            .build()
            .unwrap()
    }

    fn quick_config(threads: usize) -> DpConfig {
        DpConfig::new(
            AlfHyper {
                task_lr: 0.05,
                batch_size: 12,
                lr_schedule: LrSchedule::Constant,
                ..AlfHyper::default()
            },
            9,
        )
        .with_threads(threads)
    }

    #[test]
    fn dp_training_learns_above_chance() {
        let data = small_data(1);
        let model = plain20(4, 8).unwrap();
        let mut trainer = DpTrainer::new(model, quick_config(2)).unwrap();
        let report = trainer.run(&data, 8).unwrap();
        assert_eq!(report.epochs.len(), 8);
        // 4 classes ⇒ chance = 25%.
        assert!(
            report.final_accuracy() > 0.4,
            "accuracy {} not above chance",
            report.final_accuracy()
        );
        assert!(report.epochs.last().unwrap().train_loss < report.epochs[0].train_loss);
    }

    #[test]
    fn alf_dp_training_tracks_filters_and_l_rec() {
        let data = small_data(2);
        let model = plain20_alf(4, 8, AlfBlockConfig::paper_default(), 3).unwrap();
        let mut trainer = DpTrainer::new(model, quick_config(2)).unwrap();
        let report = trainer.run(&data, 3).unwrap();
        let rf = report.final_remaining_filters();
        assert!((0.0..=1.0).contains(&rf));
        assert!(report.epochs.iter().all(|e| e.mean_l_rec.is_finite()));
        assert!(report.epochs.iter().all(|e| e.mean_l_rec > 0.0));
    }

    #[test]
    fn empty_training_split_is_an_error() {
        let data = SynthVision::cifar_like(3)
            .with_image_size(12)
            .with_num_classes(4)
            .with_train_size(0)
            .with_test_size(8)
            .build()
            .unwrap();
        let model = plain20(4, 4).unwrap();
        let mut trainer = DpTrainer::new(model, quick_config(1)).unwrap();
        let err = trainer.advance_step(&data).unwrap_err();
        assert!(err.to_string().contains("empty training split"), "{err}");
    }

    #[test]
    fn step_and_epoch_counters_advance() {
        let data = small_data(4);
        let model = plain20(4, 4).unwrap();
        let mut trainer = DpTrainer::new(model, quick_config(2)).unwrap();
        assert_eq!((trainer.epoch(), trainer.step()), (0, 0));
        // 96 samples / batch 12 = 8 steps per epoch.
        let stats = trainer.run_steps(&data, 3).unwrap();
        assert!(stats.is_empty());
        assert_eq!((trainer.epoch(), trainer.step()), (0, 3));
        let stats = trainer.run_steps(&data, 5).unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!((trainer.epoch(), trainer.step()), (1, 0));
    }

    #[test]
    fn run_epoch_and_run_steps_produce_identical_weights() {
        let data = small_data(5);
        let model = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 6).unwrap();
        let mut by_epoch = DpTrainer::new(model.clone(), quick_config(2)).unwrap();
        let mut by_steps = DpTrainer::new(model, quick_config(2)).unwrap();
        by_epoch.run_epoch(&data).unwrap();
        by_steps.run_steps(&data, 8).unwrap();
        assert_eq!(by_epoch.state_vector(), by_steps.state_vector());
    }

    #[test]
    fn resume_against_wrong_data_is_an_error() {
        let data = small_data(7);
        let model = plain20(4, 4).unwrap();
        let mut trainer = DpTrainer::new(model.clone(), quick_config(1)).unwrap();
        trainer.run_steps(&data, 2).unwrap();
        let blob = trainer.checkpoint();
        // Resume against a dataset with only 1 batch per epoch: the saved
        // step position (2) is past the end.
        let tiny = SynthVision::cifar_like(8)
            .with_image_size(12)
            .with_num_classes(4)
            .with_train_size(8)
            .with_test_size(8)
            .build()
            .unwrap();
        let mut resumed = DpTrainer::resume(model, quick_config(1), &blob).unwrap();
        let err = resumed.advance_step(&tiny).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn sample_rng_is_pure_and_coordinate_sensitive() {
        let a = sample_rng(1, 2, 3, 4).next_u64();
        assert_eq!(a, sample_rng(1, 2, 3, 4).next_u64());
        assert_ne!(a, sample_rng(1, 2, 3, 5).next_u64());
        assert_ne!(a, sample_rng(1, 2, 4, 4).next_u64());
        assert_ne!(a, sample_rng(1, 3, 3, 4).next_u64());
        assert_ne!(a, sample_rng(2, 2, 3, 4).next_u64());
    }

    #[test]
    fn split_shards_partitions_in_order() {
        let mut v: Vec<usize> = (0..10).collect();
        let chunks = split_shards(&mut v[..], 4);
        assert_eq!(chunks.len(), 4);
        let flat: Vec<usize> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        for (s, chunk) in chunks.iter().enumerate() {
            assert_eq!(chunk.len(), shard_range(10, s, 4).len());
        }
    }
}
