//! Deterministic data-parallel training for the ALF two-player game.
//!
//! [`DpTrainer`] is the multi-worker counterpart of
//! `alf_core::AlfTrainer`: each minibatch is sharded across N long-lived
//! worker replicas (the prewarmed `(CnnModel, RunCtx)` replica pattern
//! shared with `Evaluator` and `alf-serve`), every worker runs
//! forward/backward on its shard, and the per-sample gradients are
//! combined with a **fixed-order tree all-reduce** before a single task
//! optimizer step on the master model. The per-block autoencoder players
//! are parallelised block-per-worker.
//!
//! The engine's defining property is that the worker count is *purely a
//! resource knob*: training at 1, 2, 4 or 7 workers produces bitwise
//! identical weights, because
//!
//! * gradients are computed at per-sample granularity (so no float
//!   accumulation ever crosses a shard boundary),
//! * the reduction tree over the per-sample gradient leaves is a pure
//!   function of the batch size ([`allreduce`]), and
//! * batch-norm statistics are refreshed by a deterministic master-side
//!   pilot forward over each batch, and workers normalise with those
//!   *frozen* statistics rather than (shard-layout-dependent) per-shard
//!   batch statistics.
//!
//! The same crate owns **fault tolerance**: [`DpTrainer::checkpoint`]
//! captures everything a run's trajectory depends on — model state, SGD
//! momentum, the `νprune` schedule and the epoch/step/data-seed counters
//! that pin the data order — as a versioned `alf_core::checkpoint` v2
//! blob, and [`DpTrainer::resume`] continues a killed run bitwise
//! identically to one that was never interrupted.
//!
//! See `DESIGN.md` ("Data-parallel training & fault tolerance") for the
//! full determinism argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allreduce;
pub mod reduce;
pub mod trainer;

pub use reduce::{LocalReducer, ReduceError, ReducedStep, Reducer, StepContext};
pub use trainer::{DpConfig, DpTrainer};

/// Crate-wide result alias.
pub type Result<T> = alf_tensor::Result<T>;
