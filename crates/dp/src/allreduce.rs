//! Fixed-order tree reduction over per-sample gradient leaves.
//!
//! Floating-point addition is not associative, so the *order* in which
//! gradient contributions are summed is part of a training run's identity.
//! The data-parallel engine therefore never lets the reduction order
//! depend on how work was scheduled: workers produce one gradient leaf
//! per **sample**, and this module sums the leaves in a stride-doubling
//! binary-tree order that is a pure function of the leaf *count* — the
//! batch size — and nothing else. Any shard layout over the same batch
//! feeds identical leaves into an identical tree and yields a bitwise
//! identical reduced gradient.
//!
//! # Partitioning the tree across ranks
//!
//! `alf-dist` runs the *same* tree split across processes: each rank owns
//! a contiguous leaf range ([`alf_data::plan::shard_range`]) and executes
//! exactly the subset of the tree's adds whose operand span fits inside
//! its range ([`local_adds`]); what survives locally — the roots of the
//! maximal locally-complete subtrees ([`local_roots`]) — is shipped to
//! rank 0, which executes the remaining shard-boundary-crossing adds in
//! the global stride order ([`cross_adds`]). Every add of
//! [`tree_reduce_into_first`] is performed exactly once, on identical
//! operand bits, in a dependency-respecting order — so the distributed
//! result is bitwise identical to the single-process reduction, at any
//! rank count. The partition-invariance proptests in
//! `tests/allreduce_edge.rs` pin this.

use std::ops::Range;

use alf_data::plan::shard_range;

/// Sums `leaves` into `leaves[0]` in a fixed stride-doubling binary-tree
/// order.
///
/// The tree pairs `(0,1), (2,3), …` at stride 1, then `(0,2), (4,6), …`
/// at stride 2, and so on — e.g. for six leaves the result is
/// `((l0+l1)+(l2+l3)) + (l4+l5)`, with every `+` an elementwise f32 add.
/// The summation order depends only on `leaves.len()`, which is what
/// makes the reduction bitwise reproducible across worker counts.
///
/// Leaves other than index 0 are used as scratch and hold partial sums
/// afterwards.
///
/// # Panics
///
/// Panics when the leaves do not all have the same length.
pub fn tree_reduce_into_first(leaves: &mut [Vec<f32>]) {
    let n = leaves.len();
    if n == 0 {
        return;
    }
    let len = leaves[0].len();
    assert!(
        leaves.iter().all(|l| l.len() == len),
        "tree_reduce: leaf length mismatch"
    );
    let mut stride = 1usize;
    while stride < n {
        let mut i = 0usize;
        while i + stride < n {
            // Disjoint borrows of leaves[i] (dst) and leaves[i+stride] (src).
            let (head, tail) = leaves.split_at_mut(i + stride);
            let (dst, src) = (&mut head[i], &tail[0]);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += *s;
            }
            i += 2 * stride;
        }
        stride *= 2;
    }
}

/// Visits every add of the `n`-leaf tree as `(dst, src, stride)` in
/// execution order — the exact order [`tree_reduce_into_first`] uses.
fn for_each_add(n: usize, mut visit: impl FnMut(usize, usize, usize)) {
    let mut stride = 1usize;
    while stride < n {
        let mut i = 0usize;
        while i + stride < n {
            visit(i, i + stride, stride);
            i += 2 * stride;
        }
        stride *= 2;
    }
}

/// The operand span of the add `(dst, stride)`: the leaf indices whose
/// contributions the destination holds after the add.
fn add_span_end(dst: usize, stride: usize, n: usize) -> usize {
    (dst + 2 * stride).min(n)
}

/// The adds of the `n`-leaf tree whose operand span lies entirely inside
/// the contiguous leaf range `shard`, as `(dst, src)` pairs in global
/// execution order. A rank holding the leaves of `shard` can execute
/// exactly these adds without seeing any other rank's data.
pub fn local_adds(n: usize, shard: &Range<usize>) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for_each_add(n, |dst, src, stride| {
        if dst >= shard.start && add_span_end(dst, stride, n) <= shard.end {
            out.push((dst, src));
        }
    });
    out
}

/// The leaf indices still live in `shard` after [`local_adds`] — the
/// roots of the maximal locally-complete subtrees. These are the partial
/// sums a rank ships to the master; every other index in the shard has
/// been folded into one of them.
pub fn local_roots(n: usize, shard: &Range<usize>) -> Vec<usize> {
    let mut consumed = vec![false; shard.len()];
    for (_, src) in local_adds(n, shard) {
        consumed[src - shard.start] = true;
    }
    shard
        .clone()
        .filter(|i| !consumed[i - shard.start])
        .collect()
}

/// The adds of the `n`-leaf tree that cross a shard boundary under the
/// contiguous `world`-way partition of [`shard_range`], as `(dst, src)`
/// pairs in global execution order. Together with each rank's
/// [`local_adds`], this is a disjoint cover of the full tree; the master
/// executes these over the shipped [`local_roots`] to finish the
/// reduction bitwise-identically to [`tree_reduce_into_first`].
pub fn cross_adds(n: usize, world: usize) -> Vec<(usize, usize)> {
    let shards: Vec<Range<usize>> = (0..world.max(1))
        .map(|r| shard_range(n, r, world.max(1)))
        .collect();
    let mut out = Vec::new();
    for_each_add(n, |dst, src, stride| {
        let end = add_span_end(dst, stride, n);
        let contained = shards.iter().any(|s| dst >= s.start && end <= s.end);
        if !contained {
            out.push((dst, src));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves_of(values: &[&[f32]]) -> Vec<Vec<f32>> {
        values.iter().map(|v| v.to_vec()).collect()
    }

    #[test]
    fn sums_ones_for_any_count() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 13] {
            let mut leaves = vec![vec![1.0f32; 3]; n];
            tree_reduce_into_first(&mut leaves);
            assert_eq!(leaves[0], vec![n as f32; 3], "count {n}");
        }
    }

    #[test]
    fn order_is_the_documented_tree() {
        // Values chosen so float addition order matters: summing left to
        // right gives a different bit pattern than the tree.
        let vals = [1.0e8f32, 1.0, -1.0e8, 1.0, 0.25, 0.5];
        let mut leaves = leaves_of(&[
            &[vals[0]],
            &[vals[1]],
            &[vals[2]],
            &[vals[3]],
            &[vals[4]],
            &[vals[5]],
        ]);
        tree_reduce_into_first(&mut leaves);
        let expected = ((vals[0] + vals[1]) + (vals[2] + vals[3])) + (vals[4] + vals[5]);
        assert_eq!(leaves[0][0].to_bits(), expected.to_bits());
        let left_fold: f32 = vals.iter().sum();
        // Sanity: the orders genuinely disagree on these inputs, so the
        // equality above actually pinned the tree order.
        assert_ne!(left_fold.to_bits(), expected.to_bits());
    }

    #[test]
    fn single_leaf_is_untouched_and_empty_is_a_noop() {
        let mut one = leaves_of(&[&[3.5, -1.0]]);
        tree_reduce_into_first(&mut one);
        assert_eq!(one[0], vec![3.5, -1.0]);
        let mut none: Vec<Vec<f32>> = Vec::new();
        tree_reduce_into_first(&mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn reduction_is_a_pure_function_of_count() {
        // Same leaves, reduced twice from fresh copies: identical bits.
        let base: Vec<Vec<f32>> = (0..7)
            .map(|i| vec![(i as f32 * 0.731).sin(), (i as f32 * 1.37).cos()])
            .collect();
        let mut a = base.clone();
        let mut b = base.clone();
        tree_reduce_into_first(&mut a);
        tree_reduce_into_first(&mut b);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    #[should_panic(expected = "leaf length mismatch")]
    fn mismatched_lengths_panic() {
        let mut bad = leaves_of(&[&[1.0, 2.0], &[3.0]]);
        tree_reduce_into_first(&mut bad);
    }

    /// Runs the partitioned plan exactly as `alf-dist` does — per-rank
    /// local adds, ship the roots, master cross adds — and returns the
    /// final slot-0 value.
    fn simulate_partitioned(leaves: &[Vec<f32>], world: usize) -> Vec<f32> {
        let n = leaves.len();
        let mut slots: Vec<Option<Vec<f32>>> = vec![None; n];
        for r in 0..world {
            let shard = shard_range(n, r, world);
            let mut local: Vec<Vec<f32>> = shard.clone().map(|i| leaves[i].clone()).collect();
            for (dst, src) in local_adds(n, &shard) {
                let (d, s) = (dst - shard.start, src - shard.start);
                let (head, tail) = local.split_at_mut(s);
                for (a, b) in head[d].iter_mut().zip(tail[0].iter()) {
                    *a += *b;
                }
            }
            for root in local_roots(n, &shard) {
                slots[root] = Some(local[root - shard.start].clone());
            }
        }
        for (dst, src) in cross_adds(n, world) {
            let s = slots[src].take().expect("cross add src must be live");
            let d = slots[dst].as_mut().expect("cross add dst must be live");
            for (a, b) in d.iter_mut().zip(s.iter()) {
                *a += *b;
            }
        }
        slots[0].take().expect("slot 0 holds the total")
    }

    #[test]
    fn partitioned_plan_is_bitwise_identical_to_tree() {
        for n in [1usize, 2, 3, 5, 6, 8, 12, 13, 16, 21] {
            // Magnitudes spread enough that any reordering of the float
            // adds would change bits.
            let base: Vec<Vec<f32>> = (0..n)
                .map(|i| {
                    vec![
                        (i as f32 * 0.731).sin() * 10f32.powi((i % 7) as i32 - 3),
                        (i as f32 * 1.37).cos(),
                    ]
                })
                .collect();
            let mut reference = base.clone();
            tree_reduce_into_first(&mut reference);
            for world in 1..=n.min(7) {
                let got = simulate_partitioned(&base, world);
                let same = got
                    .iter()
                    .zip(reference[0].iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "n={n} world={world} diverged from the tree");
            }
        }
    }

    #[test]
    fn local_and_cross_adds_disjointly_cover_the_tree() {
        for n in [1usize, 4, 7, 12, 16, 19] {
            let mut all = Vec::new();
            for_each_add(n, |dst, src, _| all.push((dst, src)));
            for world in 1..=5 {
                let mut covered = Vec::new();
                for r in 0..world {
                    covered.extend(local_adds(n, &shard_range(n, r, world)));
                }
                covered.extend(cross_adds(n, world));
                covered.sort_unstable();
                let mut expected = all.clone();
                expected.sort_unstable();
                assert_eq!(covered, expected, "n={n} world={world}");
            }
        }
    }

    #[test]
    fn roots_are_unconsumed_shard_indices() {
        // Aligned shards collapse to a single root; ragged ones to few.
        assert_eq!(local_roots(16, &(0..8)), vec![0]);
        assert_eq!(local_roots(16, &(8..16)), vec![8]);
        assert_eq!(local_roots(16, &(4..8)), vec![4]);
        // A shard of one leaf ships that leaf verbatim.
        assert_eq!(local_roots(9, &(8..9)), vec![8]);
        // Empty shard (world > batch): nothing local, nothing shipped.
        assert!(local_adds(4, &(3..3)).is_empty());
        assert!(local_roots(4, &(3..3)).is_empty());
    }
}
