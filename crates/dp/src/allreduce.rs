//! Fixed-order tree reduction over per-sample gradient leaves.
//!
//! Floating-point addition is not associative, so the *order* in which
//! gradient contributions are summed is part of a training run's identity.
//! The data-parallel engine therefore never lets the reduction order
//! depend on how work was scheduled: workers produce one gradient leaf
//! per **sample**, and this module sums the leaves in a stride-doubling
//! binary-tree order that is a pure function of the leaf *count* — the
//! batch size — and nothing else. Any shard layout over the same batch
//! feeds identical leaves into an identical tree and yields a bitwise
//! identical reduced gradient.

/// Sums `leaves` into `leaves[0]` in a fixed stride-doubling binary-tree
/// order.
///
/// The tree pairs `(0,1), (2,3), …` at stride 1, then `(0,2), (4,6), …`
/// at stride 2, and so on — e.g. for six leaves the result is
/// `((l0+l1)+(l2+l3)) + (l4+l5)`, with every `+` an elementwise f32 add.
/// The summation order depends only on `leaves.len()`, which is what
/// makes the reduction bitwise reproducible across worker counts.
///
/// Leaves other than index 0 are used as scratch and hold partial sums
/// afterwards.
///
/// # Panics
///
/// Panics when the leaves do not all have the same length.
pub fn tree_reduce_into_first(leaves: &mut [Vec<f32>]) {
    let n = leaves.len();
    if n == 0 {
        return;
    }
    let len = leaves[0].len();
    assert!(
        leaves.iter().all(|l| l.len() == len),
        "tree_reduce: leaf length mismatch"
    );
    let mut stride = 1usize;
    while stride < n {
        let mut i = 0usize;
        while i + stride < n {
            // Disjoint borrows of leaves[i] (dst) and leaves[i+stride] (src).
            let (head, tail) = leaves.split_at_mut(i + stride);
            let (dst, src) = (&mut head[i], &tail[0]);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += *s;
            }
            i += 2 * stride;
        }
        stride *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves_of(values: &[&[f32]]) -> Vec<Vec<f32>> {
        values.iter().map(|v| v.to_vec()).collect()
    }

    #[test]
    fn sums_ones_for_any_count() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 13] {
            let mut leaves = vec![vec![1.0f32; 3]; n];
            tree_reduce_into_first(&mut leaves);
            assert_eq!(leaves[0], vec![n as f32; 3], "count {n}");
        }
    }

    #[test]
    fn order_is_the_documented_tree() {
        // Values chosen so float addition order matters: summing left to
        // right gives a different bit pattern than the tree.
        let vals = [1.0e8f32, 1.0, -1.0e8, 1.0, 0.25, 0.5];
        let mut leaves = leaves_of(&[
            &[vals[0]],
            &[vals[1]],
            &[vals[2]],
            &[vals[3]],
            &[vals[4]],
            &[vals[5]],
        ]);
        tree_reduce_into_first(&mut leaves);
        let expected = ((vals[0] + vals[1]) + (vals[2] + vals[3])) + (vals[4] + vals[5]);
        assert_eq!(leaves[0][0].to_bits(), expected.to_bits());
        let left_fold: f32 = vals.iter().sum();
        // Sanity: the orders genuinely disagree on these inputs, so the
        // equality above actually pinned the tree order.
        assert_ne!(left_fold.to_bits(), expected.to_bits());
    }

    #[test]
    fn single_leaf_is_untouched_and_empty_is_a_noop() {
        let mut one = leaves_of(&[&[3.5, -1.0]]);
        tree_reduce_into_first(&mut one);
        assert_eq!(one[0], vec![3.5, -1.0]);
        let mut none: Vec<Vec<f32>> = Vec::new();
        tree_reduce_into_first(&mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn reduction_is_a_pure_function_of_count() {
        // Same leaves, reduced twice from fresh copies: identical bits.
        let base: Vec<Vec<f32>> = (0..7)
            .map(|i| vec![(i as f32 * 0.731).sin(), (i as f32 * 1.37).cos()])
            .collect();
        let mut a = base.clone();
        let mut b = base.clone();
        tree_reduce_into_first(&mut a);
        tree_reduce_into_first(&mut b);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    #[should_panic(expected = "leaf length mismatch")]
    fn mismatched_lengths_panic() {
        let mut bad = leaves_of(&[&[1.0, 2.0], &[3.0]]);
        tree_reduce_into_first(&mut bad);
    }
}
