//! Accelerator hardware description.

use serde::{Deserialize, Serialize};

/// Energy cost of one access at each memory level, normalised to a single
/// register-file read (= 1.0).
///
/// The defaults follow the relative costs published with Eyeriss
/// (Chen et al., ISCA 2016): register file 1×, inter-PE/global buffer 6×,
/// off-chip DRAM 200× — the same normalisation the paper uses for Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// Register-file access (the normalisation unit).
    pub rf: f64,
    /// Global (on-chip) buffer access.
    pub buffer: f64,
    /// Off-chip DRAM access.
    pub dram: f64,
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self {
            rf: 1.0,
            buffer: 6.0,
            dram: 200.0,
        }
    }
}

/// An Eyeriss-like spatial accelerator.
///
/// # Example
///
/// ```
/// use alf_hwmodel::Accelerator;
///
/// let acc = Accelerator::eyeriss();
/// assert_eq!(acc.pe_count(), 256);
/// assert_eq!(acc.global_buffer_words, 65536); // 128 KiB of 16-bit words
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// Human-readable name.
    pub name: String,
    /// PE array rows.
    pub pe_rows: usize,
    /// PE array columns.
    pub pe_cols: usize,
    /// Register-file capacity per PE, in words (all three datatype RFs
    /// combined — 220 for Eyeriss).
    pub rf_words_per_pe: usize,
    /// Global buffer capacity in words (inputs + outputs only; weights
    /// bypass the buffer, as in the paper's configuration).
    pub global_buffer_words: usize,
    /// Word width in bytes (16-bit ⇒ 2).
    pub word_bytes: usize,
    /// DRAM bandwidth in words per cycle. Latency figures are normalised
    /// to the 2 byte/cycle register bandwidth (1 word = 1 unit); a 64-bit
    /// DRAM interface then moves 4 words per normalised cycle, which keeps
    /// well-mapped layers compute-bound, as on the real Eyeriss.
    pub dram_words_per_cycle: f64,
    /// Per-access energy table.
    pub energy: EnergyTable,
}

impl Accelerator {
    /// The Eyeriss configuration used in the paper's experiments: 16×16
    /// PEs, 220-word register files, 128 KiB global buffer, 16-bit words,
    /// a 4-word/cycle DRAM interface (normalised to the 2 byte/cycle
    /// register bandwidth).
    pub fn eyeriss() -> Self {
        Self {
            name: "eyeriss".into(),
            pe_rows: 16,
            pe_cols: 16,
            rf_words_per_pe: 220,
            global_buffer_words: 128 * 1024 / 2,
            word_bytes: 2,
            dram_words_per_cycle: 4.0,
            energy: EnergyTable::default(),
        }
    }

    /// The same Eyeriss silicon reinterpreted for 8-bit words, as the
    /// int8 deployment path sees it: halving the word width doubles the
    /// *word* capacity of the register files and the global buffer and
    /// doubles the words the 64-bit DRAM interface moves per normalised
    /// cycle. Per-access energies keep the 16-bit normalisation — the
    /// published relative table does not resolve datatype width, and the
    /// latency comparison (what the int8 benchmarks validate against) is
    /// unaffected by that choice.
    pub fn eyeriss_int8() -> Self {
        Self {
            name: "eyeriss-int8".into(),
            rf_words_per_pe: 440,
            global_buffer_words: 128 * 1024,
            word_bytes: 1,
            dram_words_per_cycle: 8.0,
            ..Self::eyeriss()
        }
    }

    /// Total number of processing elements.
    pub fn pe_count(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when any capacity or dimension is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.pe_rows == 0 || self.pe_cols == 0 {
            return Err("PE array has zero dimension".into());
        }
        if self.rf_words_per_pe == 0 {
            return Err("register file has zero capacity".into());
        }
        if self.global_buffer_words == 0 {
            return Err("global buffer has zero capacity".into());
        }
        if self.dram_words_per_cycle <= 0.0 {
            return Err("DRAM bandwidth must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eyeriss_matches_paper_configuration() {
        let acc = Accelerator::eyeriss();
        assert_eq!(acc.pe_rows, 16);
        assert_eq!(acc.pe_cols, 16);
        assert_eq!(acc.rf_words_per_pe, 220);
        assert_eq!(acc.global_buffer_words, 65536);
        assert_eq!(acc.word_bytes, 2);
        assert!(acc.validate().is_ok());
    }

    #[test]
    fn energy_table_is_eyeriss_relative() {
        let e = EnergyTable::default();
        assert_eq!(e.rf, 1.0);
        assert!(e.buffer > e.rf);
        assert!(e.dram > 10.0 * e.buffer);
    }

    #[test]
    fn validate_catches_degenerate_configs() {
        let mut acc = Accelerator::eyeriss();
        acc.pe_rows = 0;
        assert!(acc.validate().is_err());
        let mut acc = Accelerator::eyeriss();
        acc.rf_words_per_pe = 0;
        assert!(acc.validate().is_err());
        let mut acc = Accelerator::eyeriss();
        acc.global_buffer_words = 0;
        assert!(acc.validate().is_err());
        let mut acc = Accelerator::eyeriss();
        acc.dram_words_per_cycle = 0.0;
        assert!(acc.validate().is_err());
    }
}
