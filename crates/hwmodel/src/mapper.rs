//! Exhaustive mapping search with an iteration budget.
//!
//! The paper's Timeloop setup uses "an exhaustive method with a timeout of
//! 100 K iterations"; this mapper enumerates the legal tiling space
//! deterministically (divisor grids per loop dimension), evaluates each
//! candidate, and keeps the minimum-energy mapping, stopping early if the
//! budget is exhausted.

use std::fmt;

use crate::arch::Accelerator;
use crate::dataflow::Dataflow;
use crate::mapping::{Mapping, MappingCost};
use crate::workload::ConvWorkload;

/// Error returned when no legal mapping exists for a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapperError {
    workload: String,
    reason: String,
}

impl fmt::Display for MapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot map {}: {}", self.workload, self.reason)
    }
}

impl std::error::Error for MapperError {}

/// Result of a mapping search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// The minimum-energy mapping found.
    pub mapping: Mapping,
    /// Its evaluated cost.
    pub cost: MappingCost,
    /// Candidates examined (≤ the iteration budget).
    pub iterations: usize,
}

/// Deterministic exhaustive mapper.
///
/// # Example
///
/// ```
/// use alf_core::ConvShape;
/// use alf_hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper};
///
/// # fn main() -> Result<(), alf_hwmodel::MapperError> {
/// let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);
/// let layer = ConvWorkload::from_shape(&ConvShape::new("conv1", 3, 16, 3, 1, 32, 32), 16);
/// let result = mapper.search(&layer)?;
/// assert!(result.cost.total_energy() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mapper {
    accelerator: Accelerator,
    dataflow: Dataflow,
    iteration_budget: usize,
}

impl Mapper {
    /// Creates a mapper with the paper's 100 K-iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if the accelerator description is invalid.
    pub fn new(accelerator: Accelerator, dataflow: Dataflow) -> Self {
        accelerator
            .validate()
            .expect("invalid accelerator description");
        Self {
            accelerator,
            dataflow,
            iteration_budget: 100_000,
        }
    }

    /// Overrides the iteration budget.
    pub fn with_iteration_budget(mut self, budget: usize) -> Self {
        self.iteration_budget = budget.max(1);
        self
    }

    /// The accelerator being mapped to.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accelerator
    }

    /// The dataflow in use.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// Finds the minimum-energy legal mapping for a layer.
    ///
    /// Ties are broken toward lower latency, then toward the earlier
    /// candidate in enumeration order, so results are fully deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`MapperError`] when the workload is malformed or no legal
    /// mapping exists within the budget.
    pub fn search(&self, workload: &ConvWorkload) -> Result<SearchResult, MapperError> {
        workload.validate().map_err(|reason| MapperError {
            workload: workload.name.clone(),
            reason,
        })?;
        let mut best: Option<(Mapping, MappingCost)> = None;
        let mut iterations = 0usize;
        let max_m_spatial = (self.accelerator.pe_rows / workload.kernel.max(1)).max(1);
        let max_c_spatial = self.accelerator.pe_cols;
        // Larger tiles mean fewer DRAM passes and are usually better; visit
        // them first so the best mapping lands well within the budget.
        let mut e_candidates = tile_candidates(workload.h_out);
        e_candidates.reverse();
        let mut m_candidates = tile_candidates(workload.c_out);
        m_candidates.reverse();
        let mut c_candidates = tile_candidates(workload.c_in);
        c_candidates.reverse();
        'outer: for &e_rows in &e_candidates {
            for &m_tile in &m_candidates {
                for &c_tile in &c_candidates {
                    for m_spatial in 1..=m_tile.min(max_m_spatial) {
                        for c_spatial in 1..=c_tile.min(max_c_spatial) {
                            iterations += 1;
                            if iterations > self.iteration_budget {
                                break 'outer;
                            }
                            let mapping = Mapping {
                                e_rows,
                                m_tile,
                                c_tile,
                                m_spatial,
                                c_spatial,
                            };
                            let Some(cost) =
                                mapping.evaluate(&self.accelerator, self.dataflow, workload)
                            else {
                                continue;
                            };
                            let better = match &best {
                                None => true,
                                Some((_, b)) => {
                                    cost.total_energy() < b.total_energy()
                                        || (cost.total_energy() == b.total_energy()
                                            && cost.latency_cycles < b.latency_cycles)
                                }
                            };
                            if better {
                                best = Some((mapping, cost));
                            }
                        }
                    }
                }
            }
        }
        match best {
            Some((mapping, cost)) => Ok(SearchResult {
                mapping,
                cost,
                iterations: iterations.min(self.iteration_budget),
            }),
            None => Err(MapperError {
                workload: workload.name.clone(),
                reason: "no legal mapping in search space".into(),
            }),
        }
    }
}

/// All divisors of `n`, ascending.
fn divisors(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for d in 1..=n {
        if d * d > n {
            break;
        }
        if n.is_multiple_of(d) {
            out.push(d);
            if d != n / d {
                out.push(n / d);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Tiling candidates for a loop bound `n`: its divisors plus every ceiling
/// partition `⌈n/k⌉`. Divisor-only grids map prime bounds (e.g. a layer
/// pruned to 13 filters) terribly; ceiling partitions give near-balanced
/// imperfect tilings, as Timeloop's mapper allows.
fn tile_candidates(n: usize) -> Vec<usize> {
    let mut out = divisors(n);
    for k in 1..=n {
        out.push(n.div_ceil(k));
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_core::ConvShape;

    fn mapper() -> Mapper {
        Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary)
    }

    fn layer(ci: usize, co: usize, k: usize, s: usize, side: usize) -> ConvWorkload {
        ConvWorkload::from_shape(&ConvShape::new("l", ci, co, k, s, side, side), 16)
    }

    #[test]
    fn divisors_are_complete_and_sorted() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(7), vec![1, 7]);
        assert_eq!(divisors(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn search_is_deterministic() {
        let m = mapper();
        let l = layer(16, 32, 3, 1, 16);
        let a = m.search(&l).unwrap();
        let b = m.search(&l).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn best_mapping_beats_arbitrary_legal_mapping() {
        let m = mapper();
        let l = layer(16, 16, 3, 1, 32);
        let best = m.search(&l).unwrap();
        let naive = Mapping {
            e_rows: 1,
            m_tile: 1,
            c_tile: 1,
            m_spatial: 1,
            c_spatial: 1,
        };
        let naive_cost = naive
            .evaluate(m.accelerator(), Dataflow::RowStationary, &l)
            .unwrap();
        assert!(best.cost.total_energy() <= naive_cost.total_energy());
    }

    #[test]
    fn all_fig3_layer_shapes_are_mappable() {
        let m = mapper();
        for shape in alf_core::models::geometry::plain20_layers(32, 3) {
            let w = ConvWorkload::from_shape(&shape, 16);
            let r = m.search(&w).unwrap_or_else(|e| panic!("{e}"));
            assert!(r.cost.total_energy() > 0.0, "{}", shape.name);
        }
    }

    #[test]
    fn pointwise_expansion_layers_are_mappable() {
        let m = mapper();
        let r = m.search(&layer(14, 16, 1, 1, 32)).unwrap();
        assert!(r.cost.utilization > 0.0);
    }

    #[test]
    fn budget_limits_iterations() {
        let m = mapper().with_iteration_budget(500);
        let r = m.search(&layer(16, 16, 3, 1, 32)).unwrap();
        assert!(r.iterations <= 500);
    }

    #[test]
    fn prime_filter_counts_map_efficiently() {
        // A layer pruned to a prime filter count must not fall back to a
        // degenerate m_tile = 1 mapping (the divisor-only failure mode).
        let m = mapper();
        let pruned = m.search(&layer(32, 13, 3, 1, 16)).unwrap();
        let full = m.search(&layer(32, 32, 3, 1, 16)).unwrap();
        assert!(
            pruned.cost.total_energy() < full.cost.total_energy(),
            "13-filter layer should cost less than the 32-filter layer: {} vs {}",
            pruned.cost.total_energy(),
            full.cost.total_energy()
        );
        assert!(pruned.mapping.m_tile > 1);
    }

    #[test]
    fn tile_candidates_cover_ceil_partitions() {
        let c = tile_candidates(13);
        // divisors {1, 13} plus ceilings {7, 5, 4, 3, 2}.
        for v in [1, 2, 3, 4, 5, 7, 13] {
            assert!(c.contains(&v), "{v} missing from {c:?}");
        }
        assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted+dedup");
    }

    #[test]
    fn compressed_layer_has_lower_energy() {
        // ALF shrinks Co; energy must shrink too (fewer MACs dominate RF).
        let m = mapper();
        let full = m.search(&layer(16, 16, 3, 1, 32)).unwrap();
        let pruned = m.search(&layer(16, 6, 3, 1, 32)).unwrap();
        assert!(pruned.cost.total_energy() < full.cost.total_energy());
    }

    #[test]
    fn rejects_malformed_workload() {
        let mut w = layer(1, 1, 1, 1, 1);
        w.c_out = 0;
        assert!(mapper().search(&w).is_err());
    }

    #[test]
    fn other_dataflows_search_too() {
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            let m = Mapper::new(Accelerator::eyeriss(), df);
            let r = m.search(&layer(16, 16, 3, 1, 16)).unwrap();
            assert!(r.cost.total_energy() > 0.0, "{df}");
        }
    }
}
