//! Convolution workload description (loop bounds of one layer).

use alf_core::ConvShape;
use serde::{Deserialize, Serialize};

/// One convolution layer's execution bounds, including the batch size.
///
/// Constructed directly or from an [`alf_core::ConvShape`] via
/// [`ConvWorkload::from_shape`].
///
/// # Example
///
/// ```
/// use alf_core::ConvShape;
/// use alf_hwmodel::ConvWorkload;
///
/// let shape = ConvShape::new("conv1", 3, 16, 3, 1, 32, 32);
/// let w = ConvWorkload::from_shape(&shape, 16);
/// assert_eq!(w.macs(), 16 * 3 * 16 * 9 * 32 * 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvWorkload {
    /// Layer name.
    pub name: String,
    /// Batch size `N`.
    pub batch: usize,
    /// Input channels `Ci`.
    pub c_in: usize,
    /// Output channels `Co`.
    pub c_out: usize,
    /// Square kernel `K`.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Output height `Ho`.
    pub h_out: usize,
    /// Output width `Wo`.
    pub w_out: usize,
}

impl ConvWorkload {
    /// Builds a workload from a layer geometry and a batch size.
    pub fn from_shape(shape: &ConvShape, batch: usize) -> Self {
        Self {
            name: shape.name.clone(),
            batch,
            c_in: shape.c_in,
            c_out: shape.c_out,
            kernel: shape.kernel,
            stride: shape.stride,
            h_out: shape.h_out,
            w_out: shape.w_out,
        }
    }

    /// Input spatial height (`Ho·stride + K − stride` exactly covers the
    /// taps the output touches; we use the common `Ho·stride` convention
    /// consistent with [`ConvShape::h_in`]).
    pub fn h_in(&self) -> usize {
        self.h_out * self.stride + self.kernel.saturating_sub(self.stride)
    }

    /// Input spatial width.
    pub fn w_in(&self) -> usize {
        self.w_out * self.stride + self.kernel.saturating_sub(self.stride)
    }

    /// Total multiply–accumulates for the whole batch.
    pub fn macs(&self) -> u64 {
        (self.batch * self.c_in * self.c_out * self.kernel * self.kernel) as u64
            * (self.h_out * self.w_out) as u64
    }

    /// Input volume in words (whole batch).
    pub fn input_words(&self) -> u64 {
        (self.batch * self.c_in * self.h_in() * self.w_in()) as u64
    }

    /// Weight volume in words.
    pub fn weight_words(&self) -> u64 {
        (self.c_in * self.c_out * self.kernel * self.kernel) as u64
    }

    /// Output volume in words (whole batch).
    pub fn output_words(&self) -> u64 {
        (self.batch * self.c_out * self.h_out * self.w_out) as u64
    }

    /// Validates the bounds.
    ///
    /// # Errors
    ///
    /// Returns a message when any bound is zero.
    pub fn validate(&self) -> Result<(), String> {
        for (label, v) in [
            ("batch", self.batch),
            ("c_in", self.c_in),
            ("c_out", self.c_out),
            ("kernel", self.kernel),
            ("stride", self.stride),
            ("h_out", self.h_out),
            ("w_out", self.w_out),
        ] {
            if v == 0 {
                return Err(format!("{label} must be positive"));
            }
        }
        Ok(())
    }
}

/// Expands a layer geometry into the ALF block's two executed
/// convolutions: the code conv (`Ci → c_code` at the original
/// kernel/stride) named `<layer>+code`, and the 1×1 expansion
/// (`c_code → Co`) named `<layer>+exp`. Merge the evaluated pair back into
/// one display row with [`crate::NetworkReport::merged`].
///
/// # Panics
///
/// Panics when `c_code` is zero or exceeds the layer's output channels.
pub fn alf_pair(shape: &ConvShape, c_code: usize, batch: usize) -> (ConvWorkload, ConvWorkload) {
    assert!(
        c_code >= 1 && c_code <= shape.c_out,
        "c_code {c_code} out of range for {} ({} filters)",
        shape.name,
        shape.c_out
    );
    let code = ConvWorkload::from_shape(
        &ConvShape::new(
            format!("{}+code", shape.name),
            shape.c_in,
            c_code,
            shape.kernel,
            shape.stride,
            shape.h_out,
            shape.w_out,
        ),
        batch,
    );
    let expansion = ConvWorkload::from_shape(
        &ConvShape::new(
            format!("{}+exp", shape.name),
            c_code,
            shape.c_out,
            1,
            1,
            shape.h_out,
            shape.w_out,
        ),
        batch,
    );
    (code, expansion)
}

/// Builds the workload list of an ALF-compressed network from its layer
/// geometries and per-layer remaining-filter ratios (`ratio[i]` of layer
/// `i`'s filters kept; missing entries default to fully dense). Layers
/// come back as `+code`/`+exp` pairs, flattened in execution order.
pub fn alf_network(shapes: &[ConvShape], ratios: &[f32], batch: usize) -> Vec<ConvWorkload> {
    shapes
        .iter()
        .enumerate()
        .flat_map(|(i, s)| {
            let r = ratios.get(i).copied().unwrap_or(1.0);
            let c_code = ((s.c_out as f32 * r).round() as usize).clamp(1, s.c_out);
            let (code, exp) = alf_pair(s, c_code, batch);
            [code, exp]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv1() -> ConvWorkload {
        ConvWorkload::from_shape(&ConvShape::new("conv1", 3, 16, 3, 1, 32, 32), 16)
    }

    #[test]
    fn volumes_and_macs() {
        let w = conv1();
        assert_eq!(w.macs(), 16 * 442_368);
        assert_eq!(w.weight_words(), 432);
        assert_eq!(w.output_words(), 16 * 16 * 1024);
        assert_eq!(w.h_in(), 34); // 32 + 3 − 1 (padding halo included)
    }

    #[test]
    fn strided_input_geometry() {
        let w = ConvWorkload::from_shape(&ConvShape::new("s", 16, 32, 3, 2, 16, 16), 1);
        assert_eq!(w.h_in(), 33);
        assert_eq!(w.w_in(), 33);
    }

    #[test]
    fn pointwise_geometry() {
        let w = ConvWorkload::from_shape(&ConvShape::new("pw", 8, 4, 1, 1, 10, 10), 2);
        assert_eq!(w.h_in(), 10);
        assert_eq!(w.macs(), 2 * 8 * 4 * 100);
    }

    #[test]
    fn validate_rejects_zero_bounds() {
        let mut w = conv1();
        assert!(w.validate().is_ok());
        w.c_in = 0;
        assert!(w.validate().is_err());
    }

    #[test]
    fn alf_pair_builds_code_and_expansion() {
        let shape = ConvShape::new("conv211", 16, 16, 3, 1, 32, 32);
        let (code, exp) = alf_pair(&shape, 6, 16);
        assert_eq!(code.name, "conv211+code");
        assert_eq!(code.c_out, 6);
        assert_eq!(code.kernel, 3);
        assert_eq!(exp.name, "conv211+exp");
        assert_eq!(exp.c_in, 6);
        assert_eq!(exp.c_out, 16);
        assert_eq!(exp.kernel, 1);
        assert_eq!(exp.h_out, code.h_out);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn alf_pair_rejects_oversized_code() {
        let shape = ConvShape::new("l", 16, 16, 3, 1, 8, 8);
        alf_pair(&shape, 17, 1);
    }

    #[test]
    fn alf_network_defaults_missing_ratios_to_dense() {
        let shapes = vec![
            ConvShape::new("a", 3, 8, 3, 1, 8, 8),
            ConvShape::new("b", 8, 8, 3, 1, 8, 8),
        ];
        let ws = alf_network(&shapes, &[0.5], 4);
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0].c_out, 4); // 0.5 × 8
        assert_eq!(ws[2].c_out, 8); // defaulted dense
    }
}
