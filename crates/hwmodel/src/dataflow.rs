//! Dataflow taxonomy (Chen et al., ISCA 2016).
//!
//! A dataflow fixes *which* datatype stays stationary in each PE's register
//! file and therefore which reuse the lower memory levels provide. The
//! row-stationary dataflow is the one Eyeriss implements and the paper
//! models; weight- and output-stationary are provided for the ablation
//! bench (`ablation_dataflow`).

use serde::{Deserialize, Serialize};

/// The spatial/temporal reuse pattern of the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Eyeriss row-stationary: a PE holds one filter row and slides it over
    /// one input row; kernel rows map onto PE rows, output rows onto PE
    /// columns. Inputs are reused `K`× inside a PE (sliding window) and
    /// multicast to the vertically-replicated filters; partial sums
    /// accumulate inside the PE over the kernel window.
    RowStationary,
    /// Weights pinned in the register files; inputs stream past them.
    /// Minimises weight DRAM traffic at the cost of partial-sum movement.
    WeightStationary,
    /// Partial sums pinned; each PE owns an output pixel. Weights must be
    /// re-streamed for every use (they bypass the global buffer on this
    /// accelerator), which is the dataflow's known weakness.
    OutputStationary,
}

impl Dataflow {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Dataflow::RowStationary => "row-stationary",
            Dataflow::WeightStationary => "weight-stationary",
            Dataflow::OutputStationary => "output-stationary",
        }
    }

    /// Register-file accesses per MAC charged at the innermost level
    /// (operand reads plus the partial-sum update that stays local).
    pub fn rf_accesses_per_mac(self) -> f64 {
        match self {
            // weight read + input read + psum read/write folded into one
            // local update.
            Dataflow::RowStationary => 3.0,
            // stationary weight is a register hit; input + psum traffic.
            Dataflow::WeightStationary => 3.0,
            // stationary psum; weight + input reads.
            Dataflow::OutputStationary => 3.0,
        }
    }
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Dataflow::RowStationary.label(),
            Dataflow::WeightStationary.label(),
            Dataflow::OutputStationary.label(),
        ];
        assert_eq!(
            labels.len(),
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
    }

    #[test]
    fn rf_cost_is_positive() {
        for df in [
            Dataflow::RowStationary,
            Dataflow::WeightStationary,
            Dataflow::OutputStationary,
        ] {
            assert!(df.rf_accesses_per_mac() > 0.0);
        }
    }
}
