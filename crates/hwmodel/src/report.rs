//! Per-layer and per-network evaluation reports (the data behind Fig. 3).

use serde::{Deserialize, Serialize};

use crate::mapper::{Mapper, MapperError};
use crate::workload::ConvWorkload;

/// Evaluated cost of one layer on the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// MACs executed (whole batch).
    pub macs: u64,
    /// Register-file energy (normalised units).
    pub energy_rf: f64,
    /// Global-buffer energy.
    pub energy_buffer: f64,
    /// DRAM energy.
    pub energy_dram: f64,
    /// Normalised latency in cycles.
    pub latency_cycles: f64,
    /// PE utilisation of the chosen mapping.
    pub utilization: f64,
}

impl LayerReport {
    /// Total energy across memory levels.
    pub fn total_energy(&self) -> f64 {
        self.energy_rf + self.energy_buffer + self.energy_dram
    }
}

/// Aggregate report over a network's layers.
///
/// Multi-part layers (an ALF block's code conv + expansion) can be merged
/// into a single display row with [`NetworkReport::merged`] so the output
/// lines up with the paper's per-layer figure.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Per-layer reports, in execution order.
    pub layers: Vec<LayerReport>,
}

impl NetworkReport {
    /// Evaluates a sequence of workloads with the given mapper.
    ///
    /// # Errors
    ///
    /// Returns the first mapping failure.
    pub fn evaluate(mapper: &Mapper, workloads: &[ConvWorkload]) -> Result<Self, MapperError> {
        let mut layers = Vec::with_capacity(workloads.len());
        for w in workloads {
            let r = mapper.search(w)?;
            layers.push(LayerReport {
                name: w.name.clone(),
                macs: w.macs(),
                energy_rf: r.cost.energy_rf,
                energy_buffer: r.cost.energy_buffer,
                energy_dram: r.cost.energy_dram,
                latency_cycles: r.cost.latency_cycles,
                utilization: r.cost.utilization,
            });
        }
        Ok(Self { layers })
    }

    /// Total energy of the network.
    pub fn total_energy(&self) -> f64 {
        self.layers.iter().map(LayerReport::total_energy).sum()
    }

    /// Total latency (layers execute sequentially).
    pub fn total_latency(&self) -> f64 {
        self.layers.iter().map(|l| l.latency_cycles).sum()
    }

    /// Merges layers sharing a display name prefix (everything before an
    /// optional `'+'` suffix separator) into combined rows — used to fold
    /// an ALF block's `convXYZ+code` / `convXYZ+exp` pair into `convXYZ`.
    pub fn merged(&self) -> NetworkReport {
        let mut out: Vec<LayerReport> = Vec::new();
        for l in &self.layers {
            let key = l.name.split('+').next().unwrap_or(&l.name).to_string();
            match out.last_mut() {
                Some(prev) if prev.name == key => {
                    prev.macs += l.macs;
                    prev.energy_rf += l.energy_rf;
                    prev.energy_buffer += l.energy_buffer;
                    prev.energy_dram += l.energy_dram;
                    prev.latency_cycles += l.latency_cycles;
                    // Utilisation of the pair: MAC-weighted mean.
                    let w_prev = (prev.macs - l.macs) as f64;
                    let w_new = l.macs as f64;
                    prev.utilization = (prev.utilization * w_prev + l.utilization * w_new)
                        / (w_prev + w_new).max(1.0);
                }
                _ => out.push(LayerReport {
                    name: key,
                    ..l.clone()
                }),
            }
        }
        NetworkReport { layers: out }
    }

    /// Evaluates an ALF block's `code → expansion` pair with *fused-layer
    /// scheduling* (Alwani et al., MICRO 2016 — the optimisation the paper
    /// points to for eliminating the expansion layer's DRAM overhead): the
    /// intermediate feature map `Ã` stays in the global buffer instead of
    /// round-tripping through DRAM.
    ///
    /// Concretely, the code conv's output DRAM writes and the expansion's
    /// input DRAM reads are re-priced as global-buffer accesses. The pair
    /// is returned as a single merged [`LayerReport`] named after the code
    /// layer's prefix.
    ///
    /// # Errors
    ///
    /// Returns the first mapping failure.
    pub fn evaluate_fused_pairs(
        mapper: &Mapper,
        pairs: &[(ConvWorkload, ConvWorkload)],
    ) -> Result<Self, MapperError> {
        let energy = mapper.accelerator().energy;
        let mut layers = Vec::with_capacity(pairs.len());
        for (code, expansion) in pairs {
            let rc = mapper.search(code)?;
            let re = mapper.search(expansion)?;
            // Words that no longer cross DRAM: the intermediate map once on
            // the way out (code) and once on the way in (expansion input,
            // re-fetched per expansion m-pass in the unfused schedule; the
            // fused schedule reads it from the buffer instead).
            let moved = code.output_words() as f64 + expansion.input_words() as f64;
            let dram = (rc.cost.dram_accesses + re.cost.dram_accesses - moved).max(0.0);
            let buffer = rc.cost.buffer_accesses + re.cost.buffer_accesses + moved;
            let name = code
                .name
                .split('+')
                .next()
                .unwrap_or(&code.name)
                .to_string();
            let macs = code.macs() + expansion.macs();
            // The two stages still execute sequentially.
            let compute = rc.cost.latency_cycles + re.cost.latency_cycles;
            let dram_cycles = dram / mapper.accelerator().dram_words_per_cycle;
            layers.push(LayerReport {
                name,
                macs,
                energy_rf: rc.cost.energy_rf + re.cost.energy_rf,
                energy_buffer: buffer * energy.buffer,
                energy_dram: dram * energy.dram,
                latency_cycles: compute.max(dram_cycles),
                utilization: (rc.cost.utilization * code.macs() as f64
                    + re.cost.utilization * expansion.macs() as f64)
                    / macs.max(1) as f64,
            });
        }
        Ok(Self { layers })
    }

    /// Renders the report as CSV (`layer,macs,energy_rf,energy_buffer,
    /// energy_dram,energy_total,latency_cycles,utilization`), one row per
    /// layer plus a trailing `TOTAL` row — convenient for external
    /// plotting of Fig. 3-style charts.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "layer,macs,energy_rf,energy_buffer,energy_dram,energy_total,latency_cycles,utilization\n",
        );
        for l in &self.layers {
            out.push_str(&format!(
                "{},{},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.4}\n",
                l.name,
                l.macs,
                l.energy_rf,
                l.energy_buffer,
                l.energy_dram,
                l.total_energy(),
                l.latency_cycles,
                l.utilization
            ));
        }
        out.push_str(&format!(
            "TOTAL,{},,,,{:.6e},{:.6e},\n",
            self.layers.iter().map(|l| l.macs).sum::<u64>(),
            self.total_energy(),
            self.total_latency()
        ));
        out
    }

    /// Relative energy and latency reduction versus a baseline report, in
    /// percent (positive = this report is cheaper).
    pub fn reduction_vs(&self, baseline: &NetworkReport) -> (f64, f64) {
        let pct = |ours: f64, base: f64| {
            if base == 0.0 {
                0.0
            } else {
                100.0 * (1.0 - ours / base)
            }
        };
        (
            pct(self.total_energy(), baseline.total_energy()),
            pct(self.total_latency(), baseline.total_latency()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Accelerator;
    use crate::dataflow::Dataflow;
    use alf_core::ConvShape;

    fn report_of(layers: &[(&str, usize, usize)]) -> NetworkReport {
        let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);
        let workloads: Vec<ConvWorkload> = layers
            .iter()
            .map(|(name, ci, co)| {
                ConvWorkload::from_shape(&ConvShape::new(*name, *ci, *co, 3, 1, 16, 16), 16)
            })
            .collect();
        NetworkReport::evaluate(&mapper, &workloads).unwrap()
    }

    #[test]
    fn totals_sum_layers() {
        let r = report_of(&[("a", 16, 16), ("b", 16, 32)]);
        assert_eq!(r.layers.len(), 2);
        let sum: f64 = r.layers.iter().map(|l| l.total_energy()).sum();
        assert!((r.total_energy() - sum).abs() < 1e-9);
        assert!(r.total_latency() > 0.0);
    }

    #[test]
    fn merged_folds_plus_suffixed_rows() {
        let r = report_of(&[
            ("conv211+code", 16, 8),
            ("conv211+exp", 8, 16),
            ("conv212+code", 16, 16),
        ]);
        let m = r.merged();
        assert_eq!(m.layers.len(), 2);
        assert_eq!(m.layers[0].name, "conv211");
        assert_eq!(m.layers[0].macs, r.layers[0].macs + r.layers[1].macs);
        assert!(
            (m.layers[0].total_energy() - r.layers[0].total_energy() - r.layers[1].total_energy())
                .abs()
                < 1e-9
        );
        assert_eq!(m.layers[1].name, "conv212");
    }

    #[test]
    fn reduction_vs_baseline() {
        let base = report_of(&[("a", 16, 16)]);
        let smaller = report_of(&[("a", 16, 8)]);
        let (de, dl) = smaller.reduction_vs(&base);
        assert!(de > 0.0, "energy reduction {de}");
        assert!(dl >= 0.0, "latency reduction {dl}");
        // Self-comparison is zero.
        let (z1, z2) = base.reduction_vs(&base);
        assert!(z1.abs() < 1e-9 && z2.abs() < 1e-9);
    }

    #[test]
    fn csv_has_one_row_per_layer_plus_total() {
        let r = report_of(&[("a", 16, 16), ("b", 16, 32)]);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 1 + 2 + 1);
        assert!(lines[0].starts_with("layer,macs,"));
        assert!(lines[1].starts_with("a,"));
        assert!(lines[3].starts_with("TOTAL,"));
        // Every data row has the full column count.
        assert!(lines[1].split(',').count() == 8);
    }

    #[test]
    fn fused_pairs_trade_dram_for_buffer() {
        let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);
        let code =
            ConvWorkload::from_shape(&ConvShape::new("conv211+code", 16, 6, 3, 1, 32, 32), 16);
        let exp = ConvWorkload::from_shape(&ConvShape::new("conv211+exp", 6, 16, 1, 1, 32, 32), 16);
        let unfused = NetworkReport::evaluate(&mapper, &[code.clone(), exp.clone()])
            .unwrap()
            .merged();
        let fused = NetworkReport::evaluate_fused_pairs(&mapper, &[(code, exp)]).unwrap();
        assert_eq!(fused.layers.len(), 1);
        assert_eq!(fused.layers[0].name, "conv211");
        let u = &unfused.layers[0];
        let f = &fused.layers[0];
        assert!(f.energy_dram < u.energy_dram, "fusion must cut DRAM energy");
        assert!(
            f.energy_buffer > u.energy_buffer,
            "…by moving traffic to the buffer"
        );
        assert_eq!(f.energy_rf, u.energy_rf, "RF traffic unchanged");
        assert!(
            f.total_energy() < u.total_energy(),
            "buffer accesses are 33× cheaper than DRAM, so fusion wins overall"
        );
        assert_eq!(f.macs, u.macs);
    }

    #[test]
    fn deeper_layers_are_rf_dominated() {
        // The paper observes high RF contribution in deep layers (small
        // spatial, many channels) thanks to the row-stationary reuse.
        let r = report_of(&[("deep", 64, 64)]);
        let l = &r.layers[0];
        assert!(
            l.energy_rf > l.energy_dram,
            "rf {} vs dram {}",
            l.energy_rf,
            l.energy_dram
        );
    }
}
