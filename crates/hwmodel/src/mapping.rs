//! Mapping of a convolution onto the accelerator and its analytical cost.

use serde::{Deserialize, Serialize};

use crate::arch::Accelerator;
use crate::dataflow::Dataflow;
use crate::workload::ConvWorkload;

/// A two-level tiling plus spatial unrolling.
///
/// * `e_rows` — output rows processed per pixel pass (temporal tile of
///   `Ho`).
/// * `m_tile` — output channels resident per global-buffer pass.
/// * `c_tile` — input channels resident in the global buffer at once.
/// * `m_spatial` — filters unrolled vertically across the PE array.
/// * `c_spatial` — input channels unrolled horizontally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// Output rows per pixel pass.
    pub e_rows: usize,
    /// Output channels per global-buffer pass.
    pub m_tile: usize,
    /// Input channels resident in the global buffer.
    pub c_tile: usize,
    /// Vertical (filter) spatial unrolling.
    pub m_spatial: usize,
    /// Horizontal (channel) spatial unrolling.
    pub c_spatial: usize,
}

/// Evaluated cost of a mapping: access counts per level, energy breakdown,
/// latency and PE utilisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingCost {
    /// Register-file accesses.
    pub rf_accesses: f64,
    /// Global-buffer accesses (inputs + partial sums; weights bypass it).
    pub buffer_accesses: f64,
    /// DRAM accesses (inputs + weights + outputs).
    pub dram_accesses: f64,
    /// Energy at the register-file level (normalised units).
    pub energy_rf: f64,
    /// Energy at the global-buffer level.
    pub energy_buffer: f64,
    /// Energy at the DRAM level.
    pub energy_dram: f64,
    /// Execution latency in cycles, normalised to the register bandwidth.
    pub latency_cycles: f64,
    /// Fraction of PEs doing useful work.
    pub utilization: f64,
}

impl MappingCost {
    /// Total energy across all levels.
    pub fn total_energy(&self) -> f64 {
        self.energy_rf + self.energy_buffer + self.energy_dram
    }
}

impl Mapping {
    /// Number of PEs this mapping occupies under `dataflow`.
    pub fn active_pes(&self, acc: &Accelerator, dataflow: Dataflow, w: &ConvWorkload) -> usize {
        match dataflow {
            Dataflow::RowStationary => {
                let rows = w.kernel * self.m_spatial;
                let cols = self.e_rows.min(acc.pe_cols) * self.c_spatial;
                rows.min(acc.pe_rows) * cols.min(acc.pe_cols)
            }
            Dataflow::WeightStationary => {
                self.m_spatial.min(acc.pe_rows) * self.c_spatial.min(acc.pe_cols)
            }
            Dataflow::OutputStationary => {
                let rows = self.e_rows.min(acc.pe_rows);
                let cols = w.w_out.min(acc.pe_cols);
                rows * cols
            }
        }
    }

    /// Checks spatial and capacity legality of the mapping.
    pub fn is_legal(&self, acc: &Accelerator, dataflow: Dataflow, w: &ConvWorkload) -> bool {
        if self.e_rows == 0
            || self.m_tile == 0
            || self.c_tile == 0
            || self.m_spatial == 0
            || self.c_spatial == 0
            || self.e_rows > w.h_out
            || self.m_tile > w.c_out
            || self.c_tile > w.c_in
            || self.m_spatial > self.m_tile
            || self.c_spatial > self.c_tile
        {
            return false;
        }
        // Spatial fit.
        match dataflow {
            Dataflow::RowStationary => {
                if w.kernel * self.m_spatial > acc.pe_rows {
                    return false;
                }
                if self.e_rows.min(acc.pe_cols) * self.c_spatial > acc.pe_cols {
                    return false;
                }
            }
            Dataflow::WeightStationary => {
                if self.m_spatial > acc.pe_rows || self.c_spatial > acc.pe_cols {
                    return false;
                }
            }
            Dataflow::OutputStationary => {
                if self.e_rows > acc.pe_rows {
                    return false;
                }
            }
        }
        // Register-file fit: one channel's filter rows for the PE's share
        // of filters, one input row, one partial-sum row segment.
        let m_rf = self.m_tile.div_ceil(self.m_spatial);
        let rf_words = m_rf * w.kernel + w.kernel + m_rf * w.w_out.min(16);
        if rf_words > acc.rf_words_per_pe {
            return false;
        }
        // Global-buffer fit: one input tile plus one output tile (weights
        // bypass the buffer). Sized for a single batch element; the batch
        // is streamed.
        let in_rows = self.e_rows * w.stride + w.kernel - w.stride;
        let input_tile = self.c_tile * in_rows * w.w_in();
        let output_tile = self.m_tile * self.e_rows * w.w_out;
        input_tile + output_tile <= acc.global_buffer_words
    }

    /// Evaluates the mapping, returning `None` when it is illegal.
    ///
    /// Access counting follows the Timeloop rule: accesses at a level equal
    /// total MACs divided by the reuse provided below that level. Weights
    /// bypass the global buffer (the paper's Eyeriss configuration), so
    /// weight traffic appears only at the DRAM and RF levels.
    pub fn evaluate(
        &self,
        acc: &Accelerator,
        dataflow: Dataflow,
        w: &ConvWorkload,
    ) -> Option<MappingCost> {
        if !self.is_legal(acc, dataflow, w) {
            return None;
        }
        let macs = w.macs() as f64;
        let input_words = w.input_words() as f64;
        let weight_words = w.weight_words() as f64;
        let output_words = w.output_words() as f64;
        let m_passes = w.c_out.div_ceil(self.m_tile) as f64;
        let pixel_passes = w.h_out.div_ceil(self.e_rows) as f64;
        let psum_groups = w.c_in.div_ceil(self.c_spatial) as f64;

        let (gb_in, gb_ps, dram_in, dram_w, dram_out) = match dataflow {
            Dataflow::RowStationary => {
                // Inputs: K× sliding reuse inside the PE, multicast to
                // m_spatial vertical replicas.
                let gb_in = macs / (w.kernel as f64 * self.m_spatial as f64);
                // Psums: cross into the buffer once per channel group.
                let gb_ps = output_words * (2.0 * psum_groups - 1.0);
                // Inputs re-fetched once per output-channel pass; weights
                // re-streamed per pixel pass (they bypass the buffer);
                // outputs written once.
                (
                    gb_in,
                    gb_ps,
                    input_words * m_passes,
                    weight_words * pixel_passes,
                    output_words,
                )
            }
            Dataflow::WeightStationary => {
                // No convolutional input reuse in the RF; multicast only.
                let gb_in = macs / self.m_spatial as f64;
                // Psums leave the array after each spatial accumulation.
                let gb_ps = 2.0 * macs / self.c_spatial as f64;
                (
                    gb_in,
                    gb_ps,
                    input_words * m_passes,
                    weight_words, // pinned: fetched once
                    output_words,
                )
            }
            Dataflow::OutputStationary => {
                // Sliding-window reuse only.
                let gb_in = macs / w.kernel as f64;
                // Psums stationary: written out once.
                let gb_ps = output_words;
                let spatial = self.active_pes(acc, dataflow, w).max(1) as f64;
                // Weights bypass the buffer and have no RF residency here:
                // re-streamed per use, amortised only by spatial sharing.
                (
                    gb_in,
                    gb_ps,
                    input_words * m_passes,
                    macs / spatial,
                    output_words,
                )
            }
        };

        let rf = macs * dataflow.rf_accesses_per_mac();
        let buffer = gb_in + gb_ps;
        let dram = dram_in + dram_w + dram_out;
        let active = self.active_pes(acc, dataflow, w).max(1);
        let compute_cycles = macs / active as f64;
        let dram_cycles = dram / acc.dram_words_per_cycle;
        Some(MappingCost {
            rf_accesses: rf,
            buffer_accesses: buffer,
            dram_accesses: dram,
            energy_rf: rf * acc.energy.rf,
            energy_buffer: buffer * acc.energy.buffer,
            energy_dram: dram * acc.energy.dram,
            latency_cycles: compute_cycles.max(dram_cycles),
            utilization: active as f64 / acc.pe_count() as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_core::ConvShape;

    fn acc() -> Accelerator {
        Accelerator::eyeriss()
    }

    fn conv() -> ConvWorkload {
        ConvWorkload::from_shape(&ConvShape::new("c", 16, 16, 3, 1, 32, 32), 16)
    }

    fn legal_mapping() -> Mapping {
        Mapping {
            e_rows: 8,
            m_tile: 16,
            c_tile: 16,
            m_spatial: 4,
            c_spatial: 2,
        }
    }

    #[test]
    fn legal_mapping_evaluates() {
        let m = legal_mapping();
        assert!(m.is_legal(&acc(), Dataflow::RowStationary, &conv()));
        let cost = m
            .evaluate(&acc(), Dataflow::RowStationary, &conv())
            .unwrap();
        assert!(cost.total_energy() > 0.0);
        assert!(cost.latency_cycles > 0.0);
        assert!((0.0..=1.0).contains(&cost.utilization));
    }

    #[test]
    fn rf_energy_tracks_macs() {
        let m = legal_mapping();
        let cost = m
            .evaluate(&acc(), Dataflow::RowStationary, &conv())
            .unwrap();
        assert_eq!(cost.rf_accesses, conv().macs() as f64 * 3.0);
        assert_eq!(cost.energy_rf, cost.rf_accesses);
    }

    #[test]
    fn illegal_when_spatial_overflows() {
        let mut m = legal_mapping();
        m.m_spatial = 8; // 8 × K(3) = 24 > 16 rows
        assert!(!m.is_legal(&acc(), Dataflow::RowStationary, &conv()));
        assert!(m
            .evaluate(&acc(), Dataflow::RowStationary, &conv())
            .is_none());
    }

    #[test]
    fn illegal_when_rf_overflows() {
        let w = ConvWorkload::from_shape(&ConvShape::new("big", 64, 256, 3, 1, 16, 16), 1);
        let m = Mapping {
            e_rows: 4,
            m_tile: 256,
            c_tile: 64,
            m_spatial: 1, // 256 filters in one PE ⇒ RF overflow
            c_spatial: 1,
        };
        assert!(!m.is_legal(&acc(), Dataflow::RowStationary, &w));
    }

    #[test]
    fn illegal_when_gb_overflows() {
        let w = ConvWorkload::from_shape(&ConvShape::new("wide", 512, 16, 3, 1, 64, 64), 1);
        let m = Mapping {
            e_rows: 64,
            m_tile: 16,
            c_tile: 512, // 512 × 66 × 66 words ≫ 64 Ki-words
            m_spatial: 4,
            c_spatial: 1,
        };
        assert!(!m.is_legal(&acc(), Dataflow::RowStationary, &w));
    }

    #[test]
    fn fewer_m_passes_means_less_input_dram() {
        let w = conv();
        let small = Mapping {
            m_tile: 4,
            ..legal_mapping()
        };
        let large = legal_mapping();
        let cs = small.evaluate(&acc(), Dataflow::RowStationary, &w).unwrap();
        let cl = large.evaluate(&acc(), Dataflow::RowStationary, &w).unwrap();
        assert!(cl.dram_accesses < cs.dram_accesses);
    }

    #[test]
    fn weight_stationary_fetches_weights_once() {
        let w = conv();
        let m = Mapping {
            e_rows: 8,
            m_tile: 16,
            c_tile: 16,
            m_spatial: 8,
            c_spatial: 8,
        };
        let cost = m.evaluate(&acc(), Dataflow::WeightStationary, &w).unwrap();
        // DRAM = inputs (1 m-pass) + weights (once) + outputs.
        let expected = (w.input_words() + w.weight_words() + w.output_words()) as f64;
        assert!((cost.dram_accesses - expected).abs() < 1.0);
    }

    #[test]
    fn output_stationary_pays_for_weight_streaming() {
        let w = conv();
        let m_os = Mapping {
            e_rows: 16,
            m_tile: 4,
            c_tile: 16,
            m_spatial: 1,
            c_spatial: 1,
        };
        let m_rs = legal_mapping();
        let os = m_os
            .evaluate(&acc(), Dataflow::OutputStationary, &w)
            .unwrap();
        let rs = m_rs.evaluate(&acc(), Dataflow::RowStationary, &w).unwrap();
        assert!(os.dram_accesses > rs.dram_accesses);
    }

    #[test]
    fn utilization_drops_for_tiny_layers() {
        // The conv312-style anomaly: few output rows + small channel counts
        // leave most of the array idle.
        let tiny = ConvWorkload::from_shape(&ConvShape::new("tiny", 4, 4, 3, 1, 4, 4), 16);
        let m = Mapping {
            e_rows: 4,
            m_tile: 4,
            c_tile: 4,
            m_spatial: 1,
            c_spatial: 1,
        };
        let cost = m.evaluate(&acc(), Dataflow::RowStationary, &tiny).unwrap();
        assert!(cost.utilization < 0.1, "utilization {}", cost.utilization);
    }
}
