//! Deterministic analytical model of an Eyeriss-like CNN accelerator with a
//! Timeloop-style mapping search.
//!
//! The paper validates ALF on "an accurate, deterministic hardware-model":
//! Timeloop configured to replicate the Eyeriss accelerator (16×16 PE
//! array, 220-word register files per PE, 128 KiB global buffer, 16-bit
//! datatypes, weights bypassing the global buffer, row-stationary
//! dataflow). This crate rebuilds that methodology from scratch:
//!
//! * [`arch::Accelerator`] — the hardware description (array geometry,
//!   buffer capacities, per-access energy table normalised to one register
//!   file read, register bandwidth for latency normalisation).
//! * [`workload::ConvWorkload`] — one convolution layer's loop bounds.
//! * [`dataflow::Dataflow`] — row-stationary (Eyeriss), weight-stationary
//!   and output-stationary reuse patterns (the latter two for ablations).
//! * [`mapping::Mapping`] — a two-level tiling (DRAM → global buffer →
//!   PE/RF) plus the spatial unrolling onto the array.
//! * [`mapper::Mapper`] — exhaustive search over legal mappings (bounded by
//!   an iteration budget, like the paper's 100 K-iteration timeout) that
//!   minimises energy.
//! * [`report`] — per-layer and per-network energy breakdowns
//!   (RF / global buffer / DRAM) and normalised latency, the quantities
//!   plotted in the paper's Fig. 3.
//!
//! Access counting follows Timeloop's principle: a datum's accesses at a
//! memory level equal the total MACs divided by the reuse the levels below
//! it provide. The exact reuse factors per dataflow are documented on
//! [`dataflow::Dataflow`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod dataflow;
pub mod mapper;
pub mod mapping;
pub mod report;
pub mod workload;

pub use arch::{Accelerator, EnergyTable};
pub use dataflow::Dataflow;
pub use mapper::{Mapper, MapperError};
pub use mapping::Mapping;
pub use report::{LayerReport, NetworkReport};
pub use workload::{alf_network, alf_pair, ConvWorkload};
