//! Binary serialisation of datasets.
//!
//! Generating the larger synthetic datasets takes noticeable time; the
//! bench harness caches them on disk using this compact little-endian
//! format (magic + geometry header + label/pixel payloads).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::dataset::{Dataset, Split};

const MAGIC: &[u8; 8] = b"ALFDATA1";

/// Error returned when a byte stream is not a valid encoded dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeDatasetError(String);

impl std::fmt::Display for DecodeDatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid dataset encoding: {}", self.0)
    }
}

impl std::error::Error for DecodeDatasetError {}

/// Serialises a dataset to bytes.
///
/// The format is: magic, `u32` geometry (`channels`, `height`, `width`,
/// `num_classes`, train count, test count), train labels (`u32` each),
/// test labels, train pixels (`f32` LE), test pixels.
pub fn encode_dataset(dataset: &Dataset) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    let [c, h, w] = dataset.image_dims();
    for v in [
        c,
        h,
        w,
        dataset.num_classes(),
        dataset.len_of(Split::Train),
        dataset.len_of(Split::Test),
    ] {
        buf.put_u32_le(v as u32);
    }
    for split in [Split::Train, Split::Test] {
        for &l in dataset.labels(split) {
            buf.put_u32_le(l as u32);
        }
    }
    for split in [Split::Train, Split::Test] {
        for &p in dataset.images(split) {
            buf.put_f32_le(p);
        }
    }
    buf.freeze()
}

/// Deserialises a dataset previously produced by [`encode_dataset`].
///
/// # Errors
///
/// Returns an error on a bad magic value, truncated payload, or internally
/// inconsistent geometry.
pub fn decode_dataset(mut bytes: Bytes) -> Result<Dataset, DecodeDatasetError> {
    if bytes.remaining() < MAGIC.len() {
        return Err(DecodeDatasetError("truncated header".into()));
    }
    let mut magic = [0u8; 8];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeDatasetError("bad magic".into()));
    }
    let mut geom = [0usize; 6];
    for g in &mut geom {
        if bytes.remaining() < 4 {
            return Err(DecodeDatasetError("truncated geometry".into()));
        }
        *g = bytes.get_u32_le() as usize;
    }
    let [c, h, w, classes, n_train, n_test] = geom;
    let pix = c * h * w;
    let need = 4 * (n_train + n_test) + 4 * pix * (n_train + n_test);
    if bytes.remaining() < need {
        return Err(DecodeDatasetError(format!(
            "payload truncated: {} bytes left, {need} needed",
            bytes.remaining()
        )));
    }
    let read_labels = |bytes: &mut Bytes, n: usize| -> Vec<usize> {
        (0..n).map(|_| bytes.get_u32_le() as usize).collect()
    };
    let train_labels = read_labels(&mut bytes, n_train);
    let test_labels = read_labels(&mut bytes, n_test);
    let read_pixels = |bytes: &mut Bytes, n: usize| -> Vec<f32> {
        (0..n * pix).map(|_| bytes.get_f32_le()).collect()
    };
    let train_images = read_pixels(&mut bytes, n_train);
    let test_images = read_pixels(&mut bytes, n_test);
    Dataset::from_parts(
        train_images,
        train_labels,
        test_images,
        test_labels,
        c,
        h,
        w,
        classes,
    )
    .map_err(|e| DecodeDatasetError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthVision;

    #[test]
    fn round_trip_preserves_dataset() {
        let d = SynthVision::cifar_like(21)
            .with_train_size(12)
            .with_test_size(6)
            .with_image_size(8)
            .build()
            .unwrap();
        let encoded = encode_dataset(&d);
        let decoded = decode_dataset(encoded).unwrap();
        assert_eq!(d, decoded);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode_dataset(Bytes::from_static(b"NOTDATA1rest")).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncation() {
        let d = SynthVision::cifar_like(22)
            .with_train_size(4)
            .with_test_size(2)
            .with_image_size(8)
            .build()
            .unwrap();
        let encoded = encode_dataset(&d);
        for cut in [0, 4, 10, encoded.len() / 2, encoded.len() - 1] {
            assert!(
                decode_dataset(encoded.slice(0..cut)).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn corrupt_labels_are_caught_by_dataset_validation() {
        let d = SynthVision::cifar_like(23)
            .with_train_size(4)
            .with_test_size(2)
            .with_image_size(8)
            .with_num_classes(2)
            .build()
            .unwrap();
        let mut raw = encode_dataset(&d).to_vec();
        // First train label lives right after the 8-byte magic + 24-byte
        // geometry; overwrite it with an out-of-range class id.
        raw[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_dataset(Bytes::from(raw)).is_err());
    }
}
