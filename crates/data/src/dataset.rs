//! In-memory labelled image dataset.

use alf_tensor::{ShapeError, Tensor};

use crate::batcher::Batches;
use crate::Result;

/// Which partition of a [`Dataset`] to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training partition.
    Train,
    /// Held-out evaluation partition.
    Test,
}

/// A labelled image dataset held fully in memory (`NCHW`, `f32`).
///
/// Construction goes through [`Dataset::from_parts`], which validates that
/// image count, label count and geometry are mutually consistent; the
/// invariants therefore hold for the dataset's whole lifetime.
///
/// # Example
///
/// ```
/// use alf_data::SynthVision;
///
/// # fn main() -> alf_data::Result<()> {
/// let data = SynthVision::cifar_like(0)
///     .with_train_size(64)
///     .with_test_size(32)
///     .build()?;
/// assert_eq!(data.num_classes(), 10);
/// assert_eq!(data.image_dims(), [3, 32, 32]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    train_images: Vec<f32>,
    train_labels: Vec<usize>,
    test_images: Vec<f32>,
    test_labels: Vec<usize>,
    channels: usize,
    height: usize,
    width: usize,
    num_classes: usize,
}

impl Dataset {
    /// Builds a dataset from raw buffers.
    ///
    /// # Errors
    ///
    /// Returns an error when buffer lengths disagree with the geometry or
    /// any label is out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        train_images: Vec<f32>,
        train_labels: Vec<usize>,
        test_images: Vec<f32>,
        test_labels: Vec<usize>,
        channels: usize,
        height: usize,
        width: usize,
        num_classes: usize,
    ) -> Result<Self> {
        let pix = channels * height * width;
        if pix == 0 || num_classes == 0 {
            return Err(ShapeError::new("dataset", "zero-sized geometry"));
        }
        for (name, images, labels) in [
            ("train", &train_images, &train_labels),
            ("test", &test_images, &test_labels),
        ] {
            if images.len() != labels.len() * pix {
                return Err(ShapeError::new(
                    "dataset",
                    format!(
                        "{name}: {} floats for {} labels × {pix} pixels",
                        images.len(),
                        labels.len()
                    ),
                ));
            }
            if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
                return Err(ShapeError::new(
                    "dataset",
                    format!("{name}: label {bad} out of range ({num_classes} classes)"),
                ));
            }
        }
        Ok(Self {
            train_images,
            train_labels,
            test_images,
            test_labels,
            channels,
            height,
            width,
            num_classes,
        })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Per-image dimensions `[channels, height, width]`.
    pub fn image_dims(&self) -> [usize; 3] {
        [self.channels, self.height, self.width]
    }

    /// Number of samples in a split.
    pub fn len_of(&self, split: Split) -> usize {
        match split {
            Split::Train => self.train_labels.len(),
            Split::Test => self.test_labels.len(),
        }
    }

    /// Labels of a split.
    pub fn labels(&self, split: Split) -> &[usize] {
        match split {
            Split::Train => &self.train_labels,
            Split::Test => &self.test_labels,
        }
    }

    /// Raw pixel buffer of a split (row-major `NCHW`).
    pub fn images(&self, split: Split) -> &[f32] {
        match split {
            Split::Train => &self.train_images,
            Split::Test => &self.test_images,
        }
    }

    /// Materialises the samples at `indices` as an `NCHW` batch tensor plus
    /// labels.
    ///
    /// # Errors
    ///
    /// Returns an error when any index is out of range or `indices` is
    /// empty.
    pub fn gather(&self, split: Split, indices: &[usize]) -> Result<(Tensor, Vec<usize>)> {
        if indices.is_empty() {
            return Err(ShapeError::new("dataset gather", "empty index list"));
        }
        let n = self.len_of(split);
        let pix = self.channels * self.height * self.width;
        let mut out = Vec::with_capacity(indices.len() * pix);
        let mut labels = Vec::with_capacity(indices.len());
        let (images, all_labels) = (self.images(split), self.labels(split));
        for &i in indices {
            if i >= n {
                return Err(ShapeError::new(
                    "dataset gather",
                    format!("index {i} out of range ({n} samples)"),
                ));
            }
            out.extend_from_slice(&images[i * pix..(i + 1) * pix]);
            labels.push(all_labels[i]);
        }
        let batch = Tensor::from_vec(
            out,
            &[indices.len(), self.channels, self.height, self.width],
        )?;
        Ok((batch, labels))
    }

    /// Iterates a split in fixed-size batches, optionally shuffled.
    ///
    /// The final short batch is included. See [`Batches`].
    pub fn batches(
        &self,
        split: Split,
        batch_size: usize,
        shuffle: Option<&mut alf_tensor::rng::Rng>,
    ) -> Batches<'_> {
        Batches::new(self, split, batch_size, shuffle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        // 3 train + 2 test samples of 1×2×2.
        Dataset::from_parts(
            (0..12).map(|i| i as f32).collect(),
            vec![0, 1, 0],
            (0..8).map(|i| i as f32).collect(),
            vec![1, 1],
            1,
            2,
            2,
            2,
        )
        .unwrap()
    }

    #[test]
    fn from_parts_validates_lengths() {
        assert!(Dataset::from_parts(vec![0.0; 3], vec![0], vec![], vec![], 1, 2, 2, 2).is_err());
        assert!(Dataset::from_parts(vec![0.0; 4], vec![5], vec![], vec![], 1, 2, 2, 2).is_err());
        assert!(Dataset::from_parts(vec![], vec![], vec![], vec![], 0, 2, 2, 2).is_err());
        assert!(Dataset::from_parts(vec![0.0; 4], vec![0], vec![], vec![], 1, 2, 2, 2).is_ok());
    }

    #[test]
    fn gather_builds_batches() {
        let d = tiny();
        let (batch, labels) = d.gather(Split::Train, &[2, 0]).unwrap();
        assert_eq!(batch.dims(), &[2, 1, 2, 2]);
        assert_eq!(labels, vec![0, 0]);
        assert_eq!(batch.at(&[0, 0, 0, 0]), 8.0); // sample 2 starts at 8
        assert_eq!(batch.at(&[1, 0, 0, 0]), 0.0);
    }

    #[test]
    fn gather_rejects_bad_indices() {
        let d = tiny();
        assert!(d.gather(Split::Train, &[3]).is_err());
        assert!(d.gather(Split::Test, &[2]).is_err());
        assert!(d.gather(Split::Train, &[]).is_err());
    }

    #[test]
    fn split_accessors() {
        let d = tiny();
        assert_eq!(d.len_of(Split::Train), 3);
        assert_eq!(d.len_of(Split::Test), 2);
        assert_eq!(d.labels(Split::Test), &[1, 1]);
        assert_eq!(d.images(Split::Train).len(), 12);
    }
}
