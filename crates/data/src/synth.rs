//! Synthetic dataset generator.

use alf_tensor::rng::Rng;
use alf_tensor::ShapeError;

use crate::dataset::Dataset;
use crate::Result;

/// Entry points for the two dataset families used by the experiments.
///
/// [`SynthVision::cifar_like`] mirrors CIFAR-10's geometry (32×32×3,
/// 10 classes); [`SynthVision::imagenet_like`] is a scaled-down stand-in
/// for ImageNet (64×64×3, 100 classes — documented in `DESIGN.md`).
///
/// # Example
///
/// ```
/// use alf_data::SynthVision;
///
/// # fn main() -> alf_data::Result<()> {
/// let data = SynthVision::cifar_like(42)
///     .with_train_size(256)
///     .with_test_size(64)
///     .build()?;
/// assert_eq!(data.image_dims(), [3, 32, 32]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SynthVision;

impl SynthVision {
    /// CIFAR-10-like configuration: 32×32 RGB, 10 classes.
    pub fn cifar_like(seed: u64) -> SynthVisionBuilder {
        SynthVisionBuilder {
            seed,
            num_classes: 10,
            channels: 3,
            image_size: 32,
            train_size: 2000,
            test_size: 500,
            noise: 0.25,
            max_shift: 3,
            blobs_per_class: 6,
        }
    }

    /// ImageNet-like configuration: 64×64 RGB, 100 classes (scaled-down
    /// substitution, see `DESIGN.md`).
    pub fn imagenet_like(seed: u64) -> SynthVisionBuilder {
        SynthVisionBuilder {
            seed,
            num_classes: 100,
            channels: 3,
            image_size: 64,
            train_size: 5000,
            test_size: 1000,
            noise: 0.25,
            max_shift: 6,
            blobs_per_class: 10,
        }
    }
}

/// Builder configuring and generating a synthetic [`Dataset`].
#[derive(Debug, Clone)]
pub struct SynthVisionBuilder {
    seed: u64,
    num_classes: usize,
    channels: usize,
    image_size: usize,
    train_size: usize,
    test_size: usize,
    noise: f32,
    max_shift: usize,
    blobs_per_class: usize,
}

impl SynthVisionBuilder {
    /// Sets the number of training samples.
    pub fn with_train_size(mut self, n: usize) -> Self {
        self.train_size = n;
        self
    }

    /// Sets the number of test samples.
    pub fn with_test_size(mut self, n: usize) -> Self {
        self.test_size = n;
        self
    }

    /// Sets the square image side length.
    pub fn with_image_size(mut self, side: usize) -> Self {
        self.image_size = side;
        self
    }

    /// Sets the number of classes.
    pub fn with_num_classes(mut self, n: usize) -> Self {
        self.num_classes = n;
        self
    }

    /// Sets the additive Gaussian pixel-noise standard deviation.
    pub fn with_noise(mut self, sigma: f32) -> Self {
        self.noise = sigma;
        self
    }

    /// Sets the maximum random translation (pixels, per axis).
    pub fn with_max_shift(mut self, shift: usize) -> Self {
        self.max_shift = shift;
        self
    }

    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is degenerate (zero classes,
    /// zero image size, or an image smaller than twice the shift range).
    pub fn build(&self) -> Result<Dataset> {
        if self.num_classes == 0 || self.image_size == 0 || self.channels == 0 {
            return Err(ShapeError::new("synth", "degenerate configuration"));
        }
        if self.image_size <= 2 * self.max_shift {
            return Err(ShapeError::new(
                "synth",
                format!(
                    "image size {} too small for shift ±{}",
                    self.image_size, self.max_shift
                ),
            ));
        }
        let mut rng = Rng::new(self.seed);
        let templates = self.make_templates(&mut rng);
        let mut train_rng = rng.split();
        let mut test_rng = rng.split();
        let (train_images, train_labels) =
            self.make_split(self.train_size, &templates, &mut train_rng);
        let (test_images, test_labels) = self.make_split(self.test_size, &templates, &mut test_rng);
        Dataset::from_parts(
            train_images,
            train_labels,
            test_images,
            test_labels,
            self.channels,
            self.image_size,
            self.image_size,
            self.num_classes,
        )
    }

    /// One smooth template per class: a sum of Gaussian blobs per channel,
    /// normalised to roughly unit amplitude.
    fn make_templates(&self, rng: &mut Rng) -> Vec<Vec<f32>> {
        let side = self.image_size as f32;
        let pix = self.channels * self.image_size * self.image_size;
        (0..self.num_classes)
            .map(|_| {
                let mut tpl = vec![0.0f32; pix];
                for c in 0..self.channels {
                    for _ in 0..self.blobs_per_class {
                        let cx = rng.uniform(0.2 * side, 0.8 * side);
                        let cy = rng.uniform(0.2 * side, 0.8 * side);
                        let sigma = rng.uniform(0.08 * side, 0.25 * side);
                        let amp = rng.uniform(-1.0, 1.0);
                        let inv2s2 = 1.0 / (2.0 * sigma * sigma);
                        for y in 0..self.image_size {
                            for x in 0..self.image_size {
                                let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                                tpl[(c * self.image_size + y) * self.image_size + x] +=
                                    amp * (-d2 * inv2s2).exp();
                            }
                        }
                    }
                }
                // Normalise to unit max-abs so noise levels are comparable
                // across classes.
                let max_abs = tpl.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
                for v in &mut tpl {
                    *v /= max_abs;
                }
                tpl
            })
            .collect()
    }

    fn make_split(
        &self,
        n: usize,
        templates: &[Vec<f32>],
        rng: &mut Rng,
    ) -> (Vec<f32>, Vec<usize>) {
        let s = self.image_size;
        let pix = self.channels * s * s;
        let mut images = Vec::with_capacity(n * pix);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Round-robin class assignment keeps the splits balanced.
            let label = i % self.num_classes;
            labels.push(label);
            let tpl = &templates[label];
            let shift = self.max_shift as isize;
            let dx = if shift > 0 {
                rng.below((2 * shift + 1) as usize) as isize - shift
            } else {
                0
            };
            let dy = if shift > 0 {
                rng.below((2 * shift + 1) as usize) as isize - shift
            } else {
                0
            };
            let contrast = rng.uniform(0.8, 1.2);
            for c in 0..self.channels {
                for y in 0..s {
                    for x in 0..s {
                        let sy = y as isize - dy;
                        let sx = x as isize - dx;
                        let base = if sy >= 0 && sx >= 0 && (sy as usize) < s && (sx as usize) < s {
                            tpl[(c * s + sy as usize) * s + sx as usize]
                        } else {
                            0.0
                        };
                        images.push(contrast * base + self.noise * rng.normal());
                    }
                }
            }
        }
        (images, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Split;

    #[test]
    fn build_is_deterministic() {
        let a = SynthVision::cifar_like(5)
            .with_train_size(20)
            .with_test_size(10)
            .build()
            .unwrap();
        let b = SynthVision::cifar_like(5)
            .with_train_size(20)
            .with_test_size(10)
            .build()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthVision::cifar_like(1)
            .with_train_size(10)
            .build()
            .unwrap();
        let b = SynthVision::cifar_like(2)
            .with_train_size(10)
            .build()
            .unwrap();
        assert_ne!(a.images(Split::Train), b.images(Split::Train));
    }

    #[test]
    fn labels_are_balanced_round_robin() {
        let d = SynthVision::cifar_like(3)
            .with_train_size(25)
            .with_num_classes(5)
            .build()
            .unwrap();
        let mut counts = [0usize; 5];
        for &l in d.labels(Split::Train) {
            counts[l] += 1;
        }
        assert_eq!(counts, [5, 5, 5, 5, 5]);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(SynthVision::cifar_like(0)
            .with_num_classes(0)
            .build()
            .is_err());
        assert!(SynthVision::cifar_like(0)
            .with_image_size(0)
            .build()
            .is_err());
        assert!(SynthVision::cifar_like(0)
            .with_image_size(6)
            .with_max_shift(3)
            .build()
            .is_err());
    }

    #[test]
    fn imagenet_like_geometry() {
        let d = SynthVision::imagenet_like(0)
            .with_train_size(4)
            .with_test_size(2)
            .build()
            .unwrap();
        assert_eq!(d.image_dims(), [3, 64, 64]);
        assert_eq!(d.num_classes(), 100);
    }

    #[test]
    fn same_class_closer_than_other_class_on_average() {
        // Sanity: the task must be learnable — intra-class distance below
        // inter-class distance (in expectation) for noiseless samples.
        let d = SynthVision::cifar_like(11)
            .with_train_size(40)
            .with_num_classes(4)
            .with_noise(0.0)
            .with_max_shift(0)
            .build()
            .unwrap();
        let pix: usize = d.image_dims().iter().product();
        let img = |i: usize| &d.images(Split::Train)[i * pix..(i + 1) * pix];
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        // Samples 0 and 4 share class 0; samples 0 and 1 differ.
        let intra = dist(img(0), img(4));
        let inter = dist(img(0), img(1));
        assert!(
            intra < inter,
            "intra-class {intra} should be below inter-class {inter}"
        );
    }

    #[test]
    fn pixel_values_are_bounded_sanely() {
        let d = SynthVision::cifar_like(13)
            .with_train_size(10)
            .with_noise(0.1)
            .build()
            .unwrap();
        assert!(d
            .images(Split::Train)
            .iter()
            .all(|v| v.is_finite() && v.abs() < 5.0));
    }
}
