//! Training-time data augmentation.
//!
//! The standard CIFAR recipe (random horizontal flip + shifted crop, plus
//! optional pixel noise), applied in place to `NCHW` batch tensors.
//! Deterministic given the caller's RNG, like everything else in the
//! workspace.

use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};
use serde::{Deserialize, Serialize};

use crate::Result;

/// Augmentation policy applied independently to each sample of a batch.
///
/// # Example
///
/// ```
/// use alf_data::Augment;
/// use alf_tensor::{rng::Rng, Tensor};
///
/// # fn main() -> alf_data::Result<()> {
/// let policy = Augment::cifar_standard();
/// let mut batch = Tensor::ones(&[2, 3, 16, 16]);
/// policy.apply(&mut batch, &mut Rng::new(0))?;
/// assert_eq!(batch.dims(), &[2, 3, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Augment {
    /// Probability of a horizontal flip per sample.
    pub hflip_prob: f32,
    /// Maximum random translation per axis, in pixels (zero-filled).
    pub max_shift: usize,
    /// Additive Gaussian pixel-noise standard deviation.
    pub noise: f32,
}

impl Augment {
    /// The standard CIFAR policy: flip with probability 0.5, shift ±2 px.
    pub fn cifar_standard() -> Self {
        Self {
            hflip_prob: 0.5,
            max_shift: 2,
            noise: 0.0,
        }
    }

    /// No-op policy.
    pub fn none() -> Self {
        Self {
            hflip_prob: 0.0,
            max_shift: 0,
            noise: 0.0,
        }
    }

    /// Applies the policy in place to an `NCHW` batch.
    ///
    /// # Errors
    ///
    /// Returns an error when `batch` is not rank 4 or smaller than twice
    /// the shift range.
    pub fn apply(&self, batch: &mut Tensor, rng: &mut Rng) -> Result<()> {
        let (n, c, h, w) = match batch.dims() {
            &[n, c, h, w] => (n, c, h, w),
            _ => {
                return Err(ShapeError::new(
                    "augment",
                    format!("expected NCHW batch, got {}", batch.shape()),
                ))
            }
        };
        if h <= 2 * self.max_shift || w <= 2 * self.max_shift {
            return Err(ShapeError::new(
                "augment",
                format!("{h}x{w} image too small for shift ±{}", self.max_shift),
            ));
        }
        let plane = h * w;
        let mut scratch = vec![0.0f32; plane];
        for b in 0..n {
            let flip = self.hflip_prob > 0.0 && rng.next_f32() < self.hflip_prob;
            let (dx, dy) = if self.max_shift > 0 {
                let s = self.max_shift as isize;
                (
                    rng.below(2 * self.max_shift + 1) as isize - s,
                    rng.below(2 * self.max_shift + 1) as isize - s,
                )
            } else {
                (0, 0)
            };
            for ch in 0..c {
                let base = (b * c + ch) * plane;
                let src = &batch.data()[base..base + plane];
                for y in 0..h {
                    for x in 0..w {
                        let sx0 = if flip { w - 1 - x } else { x } as isize;
                        let sy = y as isize - dy;
                        let sx = sx0 - dx * if flip { -1 } else { 1 };
                        scratch[y * w + x] =
                            if sy >= 0 && sx >= 0 && (sy as usize) < h && (sx as usize) < w {
                                src[sy as usize * w + sx as usize]
                            } else {
                                0.0
                            };
                    }
                }
                let dst = &mut batch.data_mut()[base..base + plane];
                if self.noise > 0.0 {
                    for (d, &s) in dst.iter_mut().zip(&scratch) {
                        *d = s + self.noise * rng.normal();
                    }
                } else {
                    dst.copy_from_slice(&scratch);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Tensor {
        Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32)
    }

    #[test]
    fn none_policy_is_identity() {
        let mut b = batch();
        let before = b.clone();
        Augment::none().apply(&mut b, &mut Rng::new(0)).unwrap();
        assert_eq!(b, before);
    }

    #[test]
    fn flip_reverses_rows() {
        let policy = Augment {
            hflip_prob: 1.0,
            max_shift: 0,
            noise: 0.0,
        };
        let mut b = batch();
        policy.apply(&mut b, &mut Rng::new(1)).unwrap();
        // Row 0 was [0,1,2,3]; flipped → [3,2,1,0].
        assert_eq!(&b.data()[..4], &[3.0, 2.0, 1.0, 0.0]);
        // Double flip restores.
        policy.apply(&mut b, &mut Rng::new(1)).unwrap();
        assert_eq!(b, batch());
    }

    #[test]
    fn shift_moves_content_and_zero_fills() {
        // Deterministically probe: with max_shift=1 some shift occurs over
        // many draws; check zero padding appears and content is preserved
        // in count.
        let policy = Augment {
            hflip_prob: 0.0,
            max_shift: 1,
            noise: 0.0,
        };
        let mut rng = Rng::new(2);
        let mut seen_shifted = false;
        for _ in 0..20 {
            let mut b = Tensor::ones(&[1, 1, 4, 4]);
            policy.apply(&mut b, &mut rng).unwrap();
            let zeros = b.count_near_zero(0.0);
            assert!(
                zeros == 0 || zeros.is_multiple_of(4) || zeros == 7,
                "zeros {zeros}"
            );
            if zeros > 0 {
                seen_shifted = true;
            }
        }
        assert!(seen_shifted, "a shift should occur within 20 draws");
    }

    #[test]
    fn noise_perturbs_every_pixel() {
        let policy = Augment {
            hflip_prob: 0.0,
            max_shift: 0,
            noise: 0.1,
        };
        let mut b = Tensor::zeros(&[1, 1, 4, 4]);
        policy.apply(&mut b, &mut Rng::new(3)).unwrap();
        assert!(b.data().iter().all(|&v| v != 0.0));
        assert!(b.data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn rejects_bad_inputs() {
        let policy = Augment::cifar_standard();
        let mut wrong_rank = Tensor::zeros(&[4, 4]);
        assert!(policy.apply(&mut wrong_rank, &mut Rng::new(0)).is_err());
        let mut too_small = Tensor::zeros(&[1, 1, 4, 4]);
        assert!(policy.apply(&mut too_small, &mut Rng::new(0)).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let policy = Augment::cifar_standard();
        let run = |seed| {
            let mut b = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 17) as f32);
            policy.apply(&mut b, &mut Rng::new(seed)).unwrap();
            b
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
