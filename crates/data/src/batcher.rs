//! Batched iteration over a [`Dataset`] split.

use alf_tensor::rng::Rng;
use alf_tensor::Tensor;

use crate::dataset::{Dataset, Split};

/// Iterator yielding `(images, labels)` batches from a dataset split.
///
/// Produced by [`Dataset::batches`]. When a shuffling RNG is supplied the
/// sample order is a fresh Fisher–Yates permutation; otherwise samples are
/// visited in storage order. The final batch may be short.
///
/// # Example
///
/// ```
/// use alf_data::{Split, SynthVision};
///
/// # fn main() -> alf_data::Result<()> {
/// let data = SynthVision::cifar_like(1).with_train_size(10).build()?;
/// let sizes: Vec<usize> = data
///     .batches(Split::Train, 4, None)
///     .map(|b| b.map(|(x, _)| x.dims()[0]))
///     .collect::<Result<_, _>>()?;
/// assert_eq!(sizes, vec![4, 4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    split: Split,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> Batches<'a> {
    pub(crate) fn new(
        dataset: &'a Dataset,
        split: Split,
        batch_size: usize,
        shuffle: Option<&mut Rng>,
    ) -> Self {
        let mut order: Vec<usize> = (0..dataset.len_of(split)).collect();
        if let Some(rng) = shuffle {
            rng.shuffle(&mut order);
        }
        Self {
            dataset,
            split,
            order,
            batch_size: batch_size.max(1),
            cursor: 0,
        }
    }

    /// Number of batches this iterator will yield in total.
    pub fn batch_count(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for Batches<'_> {
    type Item = crate::Result<(Tensor, Vec<usize>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        Some(self.dataset.gather(self.split, idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.order.len() - self.cursor).div_ceil(self.batch_size);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Batches<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthVision;

    fn data() -> Dataset {
        SynthVision::cifar_like(7)
            .with_train_size(13)
            .with_test_size(5)
            .with_image_size(8)
            .build()
            .unwrap()
    }

    #[test]
    fn covers_every_sample_exactly_once() {
        let d = data();
        let mut count = 0;
        for batch in d.batches(Split::Train, 4, None) {
            let (x, labels) = batch.unwrap();
            assert_eq!(x.dims()[0], labels.len());
            count += labels.len();
        }
        assert_eq!(count, 13);
    }

    #[test]
    fn shuffled_order_is_a_permutation() {
        let d = data();
        let mut rng = Rng::new(99);
        let mut all_labels = Vec::new();
        for batch in d.batches(Split::Train, 5, Some(&mut rng)) {
            all_labels.extend(batch.unwrap().1);
        }
        let mut sorted = all_labels.clone();
        sorted.sort_unstable();
        let mut expected = d.labels(Split::Train).to_vec();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn batch_count_and_size_hint() {
        let d = data();
        let it = d.batches(Split::Train, 4, None);
        assert_eq!(it.batch_count(), 4); // ceil(13/4)
        assert_eq!(it.len(), 4);
        let it = d.batches(Split::Test, 10, None);
        assert_eq!(it.batch_count(), 1);
    }

    #[test]
    fn zero_batch_size_is_clamped_to_one() {
        let d = data();
        assert_eq!(d.batches(Split::Test, 0, None).batch_count(), 5);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// `size_hint` stays exact at every step of consumption and
            /// agrees with `batch_count`, including a short final batch and
            /// `batch_size > len` (single short batch).
            #[test]
            fn size_hint_and_batch_count_agree(
                len in 1usize..24,
                batch_size in 1usize..32,
                seed in 0u64..1000,
            ) {
                let d = SynthVision::cifar_like(seed)
                    .with_train_size(len)
                    .with_test_size(1)
                    .with_image_size(4)
                    .with_max_shift(1)
                    .build()
                    .unwrap();
                let mut it = d.batches(Split::Train, batch_size, None);
                let expected_total = len.div_ceil(batch_size);
                prop_assert_eq!(it.batch_count(), expected_total);
                prop_assert_eq!(it.len(), expected_total);

                let mut yielded = 0usize;
                let mut samples = 0usize;
                loop {
                    let remaining = expected_total - yielded;
                    prop_assert_eq!(it.size_hint(), (remaining, Some(remaining)));
                    let Some(batch) = it.next() else { break };
                    let (x, labels) = batch.unwrap();
                    prop_assert_eq!(x.dims()[0], labels.len());
                    yielded += 1;
                    samples += labels.len();
                    // Only the final batch may be short.
                    if yielded < expected_total {
                        prop_assert_eq!(labels.len(), batch_size);
                    } else {
                        let tail = len - (expected_total - 1) * batch_size;
                        prop_assert_eq!(labels.len(), tail);
                    }
                }
                prop_assert_eq!(yielded, expected_total);
                prop_assert_eq!(samples, len);
                prop_assert_eq!(it.size_hint(), (0, Some(0)));
            }
        }
    }
}
