//! Deterministic synthetic vision datasets.
//!
//! The paper evaluates on CIFAR-10 and ImageNet. Neither dataset can be
//! shipped with this reproduction, so this crate synthesises classification
//! problems with the same interface and the properties that matter for the
//! experiments:
//!
//! * multi-class image classification learnable by a small CNN,
//! * controllable difficulty (noise, jitter, class count, resolution),
//! * deterministic generation from a single seed, and
//! * the same `NCHW` tensor layout a real data loader would produce.
//!
//! Each class is defined by a smooth random *template* (a sum of Gaussian
//! blobs per channel); a sample is its class template under a random
//! translation, contrast scaling and additive pixel noise. A CNN must learn
//! translation-tolerant spatial features to separate classes — the same
//! qualitative task as natural-image classification, at tractable scale.
//!
//! See `DESIGN.md` (Substitutions) for the full argument of why this
//! preserves the paper's measured trends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod batcher;
mod dataset;
mod encode;
pub mod plan;
mod synth;

pub use augment::Augment;
pub use batcher::Batches;
pub use dataset::{Dataset, Split};
pub use encode::{decode_dataset, encode_dataset, DecodeDatasetError};
pub use plan::EpochPlan;
pub use synth::{SynthVision, SynthVisionBuilder};

/// Crate-wide result alias.
pub type Result<T> = alf_tensor::Result<T>;
