//! Seeded epoch plans: deterministic, resumable sample orders for
//! data-parallel training.
//!
//! [`crate::Batches`] owns its shuffle RNG, which is the right shape for a
//! single-process epoch loop but the wrong one for two things the
//! data-parallel engine needs:
//!
//! 1. **Sharding** — workers need *index* access to a batch so each can
//!    gather its own contiguous slice of samples.
//! 2. **Resume** — a killed run must be able to regenerate the exact order
//!    of a half-finished epoch from nothing but a checkpoint. A stateful
//!    RNG threaded through the epoch loop cannot do that cheaply; a pure
//!    function of `(seed, epoch)` can.
//!
//! [`EpochPlan`] is that pure function: the order for epoch `e` depends
//! only on `(len, seed, e)` — never on how many workers consume it, how far
//! a previous run got, or what other RNG consumers exist in the process.
//! That property is the data half of the engine's bitwise-resume contract.

use alf_tensor::rng::Rng;

/// Derives the shuffle generator for one epoch as a pure function of
/// `(seed, epoch)`.
///
/// Both inputs pass through a SplitMix64 avalanche before being combined,
/// so structured seeds (0, 1, 2, …) and consecutive epochs still yield
/// uncorrelated permutations; the rotate keeps `seed == epoch` from
/// cancelling to a zero state.
pub fn epoch_rng(seed: u64, epoch: u64) -> Rng {
    let s = Rng::new(seed).next_u64();
    let e = Rng::new(epoch).next_u64();
    Rng::new(s ^ e.rotate_left(1))
}

/// The contiguous index range `[lo, hi)` of shard `shard` out of `shards`
/// over `len` items. Ranges cover `0..len` exactly once, are in order, and
/// differ in size by at most one item.
///
/// # Panics
///
/// Panics when `shards == 0` or `shard >= shards`.
///
/// # Example
///
/// ```
/// use alf_data::plan::shard_range;
///
/// assert_eq!(shard_range(10, 0, 4), 0..2);
/// assert_eq!(shard_range(10, 3, 4), 7..10);
/// assert_eq!(shard_range(2, 0, 4), 0..0); // more shards than items: some empty
/// ```
pub fn shard_range(len: usize, shard: usize, shards: usize) -> std::ops::Range<usize> {
    assert!(shards > 0, "shard_range needs at least one shard");
    assert!(shard < shards, "shard {shard} out of range ({shards})");
    let lo = shard * len / shards;
    let hi = (shard + 1) * len / shards;
    lo..hi
}

/// A deterministic batch schedule for one training epoch.
///
/// The plan is a shuffled permutation of `0..len` cut into fixed-size
/// contiguous batches (the final batch may be short). Two plans built from
/// equal `(len, batch_size, seed, epoch)` are identical — the resume
/// contract checkpointing relies on.
///
/// # Example
///
/// ```
/// use alf_data::plan::EpochPlan;
///
/// let plan = EpochPlan::new(10, 4, 7, 0);
/// assert_eq!(plan.num_batches(), 3);
/// assert_eq!(plan.batch(0).len(), 4);
/// assert_eq!(plan.batch(2).len(), 2); // short tail
/// // Regenerating the plan reproduces it exactly.
/// assert_eq!(plan.batch(1), EpochPlan::new(10, 4, 7, 0).batch(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochPlan {
    order: Vec<usize>,
    batch_size: usize,
}

impl EpochPlan {
    /// Builds the plan for `epoch` over a split of `len` samples.
    /// `batch_size` is clamped to at least 1.
    pub fn new(len: usize, batch_size: usize, seed: u64, epoch: u64) -> Self {
        let mut order: Vec<usize> = (0..len).collect();
        epoch_rng(seed, epoch).shuffle(&mut order);
        Self {
            order,
            batch_size: batch_size.max(1),
        }
    }

    /// Number of samples in the epoch.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the epoch has no samples.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Configured batch size (the final batch may be shorter).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of batches in the epoch.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Sample indices of batch `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= num_batches()`.
    pub fn batch(&self, i: usize) -> &[usize] {
        assert!(i < self.num_batches(), "batch {i} out of range");
        let lo = i * self.batch_size;
        let hi = (lo + self.batch_size).min(self.order.len());
        &self.order[lo..hi]
    }

    /// The full shuffled sample order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_permutation_and_reproducible() {
        let a = EpochPlan::new(37, 8, 123, 4);
        let b = EpochPlan::new(37, 8, 123, 4);
        assert_eq!(a, b);
        let mut sorted = a.order().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn different_epochs_and_seeds_give_different_orders() {
        let base = EpochPlan::new(64, 8, 1, 0);
        assert_ne!(base.order(), EpochPlan::new(64, 8, 1, 1).order());
        assert_ne!(base.order(), EpochPlan::new(64, 8, 2, 0).order());
    }

    #[test]
    fn batches_cover_the_epoch_exactly() {
        let plan = EpochPlan::new(13, 4, 9, 2);
        assert_eq!(plan.num_batches(), 4);
        let mut seen: Vec<usize> = Vec::new();
        for i in 0..plan.num_batches() {
            seen.extend_from_slice(plan.batch(i));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..13).collect::<Vec<_>>());
        assert_eq!(plan.batch(3).len(), 1); // 13 = 3·4 + 1
    }

    #[test]
    fn zero_len_and_zero_batch_size_are_safe() {
        let empty = EpochPlan::new(0, 4, 0, 0);
        assert!(empty.is_empty());
        assert_eq!(empty.num_batches(), 0);
        let clamped = EpochPlan::new(3, 0, 0, 0);
        assert_eq!(clamped.batch_size(), 1);
        assert_eq!(clamped.num_batches(), 3);
    }

    #[test]
    fn shard_ranges_partition_in_order() {
        for (len, shards) in [(10usize, 4usize), (3, 7), (16, 1), (0, 3), (7, 7)] {
            let mut next = 0usize;
            for s in 0..shards {
                let r = shard_range(len, s, shards);
                assert_eq!(r.start, next, "gap at shard {s} of {len}/{shards}");
                assert!(r.end >= r.start);
                next = r.end;
            }
            assert_eq!(next, len);
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..4).map(|s| shard_range(10, s, 4).len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_out_of_range_panics() {
        shard_range(10, 4, 4);
    }

    #[test]
    fn epoch_rng_is_pure() {
        assert_eq!(epoch_rng(5, 9).next_u64(), epoch_rng(5, 9).next_u64());
        assert_ne!(epoch_rng(5, 9).next_u64(), epoch_rng(5, 10).next_u64());
        // seed == epoch must not collapse to a degenerate state.
        assert_ne!(epoch_rng(3, 3).next_u64(), 0);
    }
}
