//! The serving engine: bounded admission queue, worker-side dynamic
//! micro-batching, hot checkpoint swap and graceful drain.
//!
//! Concurrency layout (std primitives only — the vendored `crossbeam`
//! carries just scoped threads, which long-lived workers cannot use):
//!
//! * One `Mutex<QueueState>` + `Condvar` carries requests and the drain
//!   flag. Workers coalesce batches *pull-side*: the worker that pops the
//!   first request keeps popping until `max_batch` or until
//!   `first.enqueued + max_wait` passes (waiting on the condvar with a
//!   timeout in between), so batching adds no dedicated batcher thread
//!   and no per-request wakeup churn.
//! * Hot swap is a versioned blob behind its own mutex: `swap_checkpoint`
//!   validates against a staging replica, then publishes the blob with a
//!   bumped version (`AtomicU64`, release). Workers compare the version
//!   before every batch (acquire) and reload between batches — in-flight
//!   requests always run on a consistent model.
//! * Per-request responses travel through a oneshot `ResponseSlot`
//!   (`Mutex<Option<..>>` + `Condvar`) handed back to the caller as a
//!   [`Pending`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use alf_core::checkpoint;
use alf_core::model::CnnModel;
use alf_obs::metrics::{Counter, Gauge, HistogramSpec, MetricsRegistry};
use alf_tensor::Tensor;

use crate::replica::{Prediction, Replica};
use crate::stats::{LatencyHistogram, ServerStats};
use crate::{Result, ServeError};

/// Numeric form the worker replicas execute.
///
/// `F32` serves the model exactly as handed to [`Server::start`]. `Int8`
/// lowers it through `alf_core::deploy::Pipeline` first — batch-norm
/// folding, then symmetric int8 quantization with activation scales
/// calibrated on the carried `NCHW` batch — and serves the fused int8
/// engine. The f32 model is kept alongside for checkpoint validation; a
/// hot swap re-runs the lowering against the same calibration batch.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Precision {
    /// Full-precision f32 execution (the default).
    #[default]
    F32,
    /// Fused int8 execution, calibrated on the carried `NCHW` batch.
    Int8(Tensor),
}

/// Serving configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads, each owning one model replica.
    pub workers: usize,
    /// Largest micro-batch a worker will coalesce.
    pub max_batch: usize,
    /// Longest a request waits for batch-mates before its batch flushes.
    pub max_wait: Duration,
    /// Admission bound: submissions beyond this many queued requests are
    /// rejected with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Run each replica at `max_batch` and at 1 before serving, so the
    /// arenas reach steady state ahead of the first real request.
    pub prewarm: bool,
    /// Instance name for metric prefixes. Empty (the default) keeps the
    /// historical `serve.*` names; a non-empty name exports
    /// `serve.<name>.*` instead, so multiple servers can share one
    /// [`MetricsRegistry`] (multi-model routing) without their counters
    /// and histograms colliding. Restricted to `[A-Za-z0-9_.-]`.
    pub name: String,
    /// Numeric form the replicas execute ([`Precision::F32`] by default).
    pub precision: Precision,
}

impl ServeConfig {
    /// Defaults for a `[channels, height, width]` input geometry: 2
    /// workers, batches of up to 8, 2 ms batching window, 64-deep queue,
    /// prewarm on.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_depth: 64,
            channels,
            height,
            width,
            prewarm: true,
            name: String::new(),
            precision: Precision::F32,
        }
    }

    /// The prefix serving instruments are registered under: `serve.` for
    /// an unnamed server, `serve.<name>.` otherwise.
    pub fn metric_prefix(&self) -> String {
        if self.name.is_empty() {
            "serve.".to_string()
        } else {
            format!("serve.{}.", self.name)
        }
    }

    fn validate(&self) -> Result<()> {
        let bad = |what: &str| Err(ServeError::BadRequest(format!("config: {what}")));
        if self.workers == 0 {
            return bad("workers must be >= 1");
        }
        if self.max_batch == 0 {
            return bad("max_batch must be >= 1");
        }
        if self.queue_depth == 0 {
            return bad("queue_depth must be >= 1");
        }
        if self.channels == 0 || self.height == 0 || self.width == 0 {
            return bad("image dims must be non-zero");
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
        {
            return bad("name must contain only [A-Za-z0-9_.-]");
        }
        if let Precision::Int8(calib) = &self.precision {
            if calib.dims().len() != 4 || calib.dims()[0] == 0 {
                return bad("int8 calibration batch must be a non-empty NCHW tensor");
            }
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct ResponseSlot {
    result: Mutex<Option<Result<Prediction>>>,
    cv: Condvar,
}

impl ResponseSlot {
    fn fill(&self, r: Result<Prediction>) {
        *self.result.lock().expect("response slot poisoned") = Some(r);
        self.cv.notify_all();
    }
}

/// Handle to an admitted request; resolves to the prediction once its
/// batch has been served (or to the batch's error).
#[derive(Debug)]
pub struct Pending {
    slot: Arc<ResponseSlot>,
}

impl Pending {
    /// Non-blocking poll: takes the answer if the request has been served
    /// (or rejected) and `None` while it is still queued or in flight.
    /// Once this returns `Some`, the slot is empty — the caller owns the
    /// taken value and later polls (or [`Pending::wait`]) would block
    /// forever, so poll-driven callers must keep it.
    pub fn try_wait(&self) -> Option<Result<Prediction>> {
        self.slot
            .result
            .lock()
            .expect("response slot poisoned")
            .take()
    }

    /// Blocks until the request is answered.
    ///
    /// # Errors
    ///
    /// Returns the serving error of this request's batch, if any.
    pub fn wait(self) -> Result<Prediction> {
        let mut guard = self.slot.result.lock().expect("response slot poisoned");
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self.slot.cv.wait(guard).expect("response slot poisoned");
        }
    }
}

#[derive(Debug)]
struct QueuedRequest {
    image: Tensor,
    enqueued: Instant,
    deadline: Option<Instant>,
    slot: Arc<ResponseSlot>,
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<QueuedRequest>,
    draining: bool,
}

#[derive(Debug)]
struct SwapState {
    /// Architecture validator: a blob must load here before workers see it.
    staging: CnnModel,
    blob: Arc<Vec<u8>>,
    version: u64,
}

/// The exact batch-size distribution (`batch[n]` = batches of exactly `n`
/// requests) keeps linear buckets behind a short mutex; everything else in
/// [`Shared`] is a lock-free registry instrument.
#[derive(Debug, Default)]
struct Hists {
    batch: Vec<u64>,
    occupancy_sum: u64,
}

#[derive(Debug)]
struct Shared {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    swap: Mutex<SwapState>,
    swap_version: AtomicU64,
    freeze: AtomicBool,
    /// The registry all serving instruments live in (`serve.*` names);
    /// shared with the caller through [`Server::registry`].
    registry: MetricsRegistry,
    submitted: Counter,
    completed: Counter,
    rejected_overloaded: Counter,
    rejected_shutdown: Counter,
    expired: Counter,
    swaps: Counter,
    batches: Counter,
    queue_len: Gauge,
    latency: LatencyHistogram,
    hists: Mutex<Hists>,
    /// Per-worker cumulative arena allocation-event counters, published
    /// after every batch; tests sum them across a frozen window to assert
    /// the zero-allocation steady state.
    worker_alloc_events: Vec<AtomicU64>,
}

/// A running inference server. See the crate docs for the architecture.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    handles: Mutex<Option<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Validates the configuration, builds one prewarmed replica per
    /// worker from `model`, and starts the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for an invalid configuration or a model
    /// that rejects the configured geometry.
    pub fn start(model: &CnnModel, cfg: ServeConfig) -> Result<Self> {
        Self::start_with_registry(model, cfg, MetricsRegistry::new())
    }

    /// Like [`Server::start`], but registers the serving instruments
    /// (`serve.submitted`, `serve.completed`, `serve.rejected_*`,
    /// `serve.expired`, `serve.swaps`, `serve.batches`, `serve.queue_len`,
    /// `serve.latency_ns`) in the caller's `registry`, so one registry
    /// snapshot can cover serving alongside training and profiling
    /// metrics. A non-empty [`ServeConfig::name`] prefixes every
    /// instrument as `serve.<name>.*` instead, letting multiple servers
    /// (one per routed model) share a registry without name collisions.
    ///
    /// # Errors
    ///
    /// Same contract as [`Server::start`].
    pub fn start_with_registry(
        model: &CnnModel,
        cfg: ServeConfig,
        registry: MetricsRegistry,
    ) -> Result<Self> {
        cfg.validate()?;
        let prefix = cfg.metric_prefix();
        let dims = [cfg.channels, cfg.height, cfg.width];
        let mut replicas = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let mut replica = Replica::with_precision(model.clone(), dims, &cfg.precision)?;
            if cfg.prewarm {
                replica.prewarm(cfg.max_batch)?;
            }
            replicas.push(replica);
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
            swap: Mutex::new(SwapState {
                staging: model.clone(),
                blob: Arc::new(Vec::new()),
                version: 0,
            }),
            swap_version: AtomicU64::new(0),
            freeze: AtomicBool::new(false),
            submitted: registry.counter(&format!("{prefix}submitted")),
            completed: registry.counter(&format!("{prefix}completed")),
            rejected_overloaded: registry.counter(&format!("{prefix}rejected_overloaded")),
            rejected_shutdown: registry.counter(&format!("{prefix}rejected_shutdown")),
            expired: registry.counter(&format!("{prefix}expired")),
            swaps: registry.counter(&format!("{prefix}swaps")),
            batches: registry.counter(&format!("{prefix}batches")),
            queue_len: registry.gauge(&format!("{prefix}queue_len")),
            latency: LatencyHistogram::from_shared(
                registry.histogram(&format!("{prefix}latency_ns"), HistogramSpec::latency_ns()),
            ),
            registry,
            hists: Mutex::new(Hists {
                batch: vec![0; cfg.max_batch + 1],
                occupancy_sum: 0,
            }),
            worker_alloc_events: (0..cfg.workers).map(|_| AtomicU64::new(0)).collect(),
            cfg,
        });
        let handles = replicas
            .into_iter()
            .enumerate()
            .map(|(i, replica)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("alf-serve-{i}"))
                    .spawn(move || worker_loop(i, replica, shared))
                    .expect("spawn serving worker")
            })
            .collect();
        Ok(Self {
            shared,
            handles: Mutex::new(Some(handles)),
        })
    }

    /// The configuration this server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Submits one `[C, H, W]` image for classification with no deadline.
    ///
    /// # Errors
    ///
    /// * [`ServeError::BadRequest`] — wrong image geometry (not counted as
    ///   a queue rejection; the request was never a queue candidate).
    /// * [`ServeError::Overloaded`] — the queue is at `queue_depth`.
    /// * [`ServeError::ShuttingDown`] — the server is draining.
    pub fn submit(&self, image: Tensor) -> Result<Pending> {
        self.submit_with_deadline(image, None)
    }

    /// Like [`Server::submit`], but with an optional deadline: a request
    /// whose deadline has passed by the time a worker pops it from the
    /// queue is answered with [`ServeError::Expired`] instead of spending
    /// a replica slot on an answer the caller has given up on. A request
    /// that entered a batch before its deadline passed is served normally.
    ///
    /// # Errors
    ///
    /// Same admission contract as [`Server::submit`].
    pub fn submit_with_deadline(
        &self,
        image: Tensor,
        deadline: Option<Instant>,
    ) -> Result<Pending> {
        let cfg = &self.shared.cfg;
        let want = [cfg.channels, cfg.height, cfg.width];
        if image.dims() != want {
            return Err(ServeError::BadRequest(format!(
                "expected {:?} image, got {:?}",
                want,
                image.dims()
            )));
        }
        let slot = Arc::new(ResponseSlot::default());
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            if queue.draining {
                self.shared.rejected_shutdown.inc();
                return Err(ServeError::ShuttingDown);
            }
            if queue.items.len() >= cfg.queue_depth {
                self.shared.rejected_overloaded.inc();
                return Err(ServeError::Overloaded {
                    queue_depth: cfg.queue_depth,
                });
            }
            queue.items.push_back(QueuedRequest {
                image,
                enqueued: Instant::now(),
                deadline,
                slot: Arc::clone(&slot),
            });
            self.shared.queue_len.set(queue.items.len() as f64);
        }
        self.shared.queue_cv.notify_one();
        self.shared.submitted.inc();
        Ok(Pending { slot })
    }

    /// Validates `blob` against the staging replica and, on success,
    /// publishes it; every worker reloads it before its next batch. No
    /// queued or in-flight request is dropped by a swap.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadCheckpoint`] when the blob is malformed or does
    /// not match the serving architecture; the serving model is unchanged.
    pub fn swap_checkpoint(&self, blob: &[u8]) -> Result<()> {
        let mut swap = self.shared.swap.lock().expect("swap state poisoned");
        checkpoint::load(&mut swap.staging, blob)
            .map_err(|e| ServeError::BadCheckpoint(e.to_string()))?;
        swap.blob = Arc::new(blob.to_vec());
        swap.version += 1;
        self.shared
            .swap_version
            .store(swap.version, Ordering::Release);
        drop(swap);
        self.shared.swaps.inc();
        Ok(())
    }

    /// Hot-swaps to the state of `model` (same architecture) by
    /// serialising it through the read-only state visitor — the source
    /// model only needs a shared borrow, so a trainer can push its live
    /// model into the server without handing over `&mut`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Server::swap_checkpoint`].
    pub fn swap_model(&self, model: &CnnModel) -> Result<()> {
        self.swap_checkpoint(&checkpoint::save(model))
    }

    /// Stops admissions, serves every already-admitted request, then joins
    /// the workers. Idempotent; concurrent callers after the first return
    /// once the drain they observe is complete.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            queue.draining = true;
        }
        self.shared.queue_cv.notify_all();
        let handles = self.handles.lock().expect("handles poisoned").take();
        if let Some(handles) = handles {
            for h in handles {
                let _ = h.join();
            }
        }
    }

    /// The metrics registry the serving instruments live in. With
    /// [`Server::start_with_registry`] this is the caller's registry;
    /// otherwise a private one created at start.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.shared.registry
    }

    /// Point-in-time statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        let hists = self.shared.hists.lock().expect("hists poisoned");
        let batches = self.shared.batches.get();
        ServerStats {
            submitted: self.shared.submitted.get(),
            completed: self.shared.completed.get(),
            rejected_overloaded: self.shared.rejected_overloaded.get(),
            rejected_shutdown: self.shared.rejected_shutdown.get(),
            expired: self.shared.expired.get(),
            swaps: self.shared.swaps.get(),
            batches,
            batch_histogram: hists.batch.clone(),
            mean_batch_occupancy: if batches > 0 {
                hists.occupancy_sum as f64 / batches as f64
            } else {
                0.0
            },
            p50_ms: self.shared.latency.quantile_ms(0.50),
            p95_ms: self.shared.latency.quantile_ms(0.95),
            p99_ms: self.shared.latency.quantile_ms(0.99),
        }
    }

    /// Asks every worker to freeze (or thaw) its arena before its next
    /// batch. With prewarm on, a frozen steady state must not allocate —
    /// growth trips the arena's debug assertion and bumps the counters
    /// read by [`Server::arena_alloc_events`].
    pub fn freeze_arenas(&self, on: bool) {
        self.shared.freeze.store(on, Ordering::Release);
    }

    /// Sum of all workers' cumulative arena allocation-event counters
    /// (published after each batch). Constant across a window ⇒ no arena
    /// allocation happened in that window.
    pub fn arena_alloc_events(&self) -> u64 {
        self.shared
            .worker_alloc_events
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .sum()
    }

    /// Requests currently waiting in the submission queue.
    pub fn queue_len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("queue poisoned")
            .items
            .len()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Batcher-side deadline enforcement: a popped request whose deadline has
/// passed is answered with [`ServeError::Expired`] on the spot (the slot
/// fill wakes its waiter) and never reaches a replica. Returns `true` when
/// the request survived and was appended to `batch`.
fn expire_if_late(request: QueuedRequest, shared: &Shared, batch: &mut Vec<QueuedRequest>) -> bool {
    let late = request
        .deadline
        .is_some_and(|deadline| Instant::now() >= deadline);
    if late {
        shared.expired.inc();
        request.slot.fill(Err(ServeError::Expired));
        return false;
    }
    batch.push(request);
    true
}

fn worker_loop(index: usize, mut replica: Replica, shared: Arc<Shared>) {
    let cfg = &shared.cfg;
    let mut seen_version = 0u64;
    let mut frozen = false;
    // Publish the post-prewarm baseline so `arena_alloc_events` reads the
    // same value whether or not this worker has served a batch yet.
    shared.worker_alloc_events[index].store(replica.ctx().ws.alloc_events(), Ordering::Release);
    loop {
        // ---- coalesce one micro-batch (pull-side batching) ----
        let mut batch: Vec<QueuedRequest> = Vec::with_capacity(cfg.max_batch);
        {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(first) = queue.items.pop_front() {
                    if expire_if_late(first, &shared, &mut batch) {
                        break;
                    }
                    continue;
                }
                if queue.draining {
                    return; // queue empty + draining ⇒ done
                }
                queue = shared.queue_cv.wait(queue).expect("queue poisoned");
            }
            let deadline = batch[0].enqueued + cfg.max_wait;
            while batch.len() < cfg.max_batch {
                if let Some(next) = queue.items.pop_front() {
                    expire_if_late(next, &shared, &mut batch);
                    continue;
                }
                if queue.draining {
                    break; // flush immediately during drain
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) = shared
                    .queue_cv
                    .wait_timeout(queue, deadline - now)
                    .expect("queue poisoned");
                queue = guard;
            }
            // A coalescing wait may have consumed a wakeup aimed at an
            // idle sibling; if work remains, pass the baton.
            if !queue.items.is_empty() {
                shared.queue_cv.notify_one();
            }
            shared.queue_len.set(queue.items.len() as f64);
        }

        // ---- apply a pending hot swap between batches ----
        if shared.swap_version.load(Ordering::Acquire) != seen_version {
            let swap = shared.swap.lock().expect("swap state poisoned");
            // The staging replica already validated this blob; a failure
            // here would mean this replica diverged from staging, in which
            // case we keep serving the old weights rather than die.
            let _ = replica.load_checkpoint(&swap.blob);
            seen_version = swap.version;
        }

        // ---- honour freeze/thaw requests outside the serving path ----
        let want_freeze = shared.freeze.load(Ordering::Acquire);
        if want_freeze != frozen {
            if want_freeze {
                replica.ctx_mut().ws.freeze();
            } else {
                replica.ctx_mut().ws.thaw();
            }
            frozen = want_freeze;
        }

        // ---- serve the batch ----
        let images: Vec<&Tensor> = batch.iter().map(|r| &r.image).collect();
        let outcome = replica.run_batch(&images);
        drop(images);
        shared.worker_alloc_events[index].store(replica.ctx().ws.alloc_events(), Ordering::Release);
        match outcome {
            Ok(predictions) => {
                let n = batch.len();
                shared.batches.inc();
                shared.completed.add(n as u64);
                // The latency histogram is lock-free; only the exact
                // batch-size buckets need the short mutex.
                for request in &batch {
                    shared.latency.record(request.enqueued.elapsed());
                }
                {
                    let mut hists = shared.hists.lock().expect("hists poisoned");
                    hists.batch[n] += 1;
                    hists.occupancy_sum += n as u64;
                }
                for (request, prediction) in batch.into_iter().zip(predictions) {
                    request.slot.fill(Ok(prediction));
                }
            }
            Err(e) => {
                // Every request of a failed batch is answered with the
                // error — "answered or explicitly rejected", never lost.
                shared.completed.add(batch.len() as u64);
                for request in batch {
                    request.slot.fill(Err(e.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_core::models::plain20;
    use alf_nn::layer::Layer;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_depth: 32,
            prewarm: true,
            ..ServeConfig::new(3, 12, 12)
        }
    }

    fn image(seed: usize) -> Tensor {
        Tensor::from_fn(&[3, 12, 12], move |i| ((i + seed) % 13) as f32 * 0.1)
    }

    #[test]
    fn config_validation_catches_zeroes() {
        let model = plain20(4, 4).unwrap();
        for broken in [
            ServeConfig {
                workers: 0,
                ..tiny_config()
            },
            ServeConfig {
                max_batch: 0,
                ..tiny_config()
            },
            ServeConfig {
                queue_depth: 0,
                ..tiny_config()
            },
            ServeConfig {
                channels: 0,
                ..tiny_config()
            },
            ServeConfig {
                name: "has space".to_string(),
                ..tiny_config()
            },
        ] {
            assert!(matches!(
                Server::start(&model, broken),
                Err(ServeError::BadRequest(_))
            ));
        }
    }

    #[test]
    fn serves_requests_and_counts_them() {
        let model = plain20(4, 4).unwrap();
        let server = Server::start(&model, tiny_config()).unwrap();
        let pendings: Vec<Pending> = (0..10).map(|i| server.submit(image(i)).unwrap()).collect();
        for p in pendings {
            let prediction = p.wait().unwrap();
            assert!(prediction.class < 4);
            assert_eq!(prediction.logits.dims(), &[4]);
        }
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.rejected(), 0);
        assert!(stats.batches >= 1);
        let histogrammed: u64 = stats.batch_histogram.iter().sum();
        assert_eq!(histogrammed, stats.batches);
        assert!(stats.mean_batch_occupancy >= 1.0);
        assert!(stats.p50_ms > 0.0 && stats.p50_ms <= stats.p99_ms);
    }

    #[test]
    fn registry_snapshot_matches_stats() {
        use alf_obs::metrics::MetricsRegistry;
        let model = plain20(4, 4).unwrap();
        let registry = MetricsRegistry::new();
        let server = Server::start_with_registry(&model, tiny_config(), registry.clone()).unwrap();
        let pendings: Vec<Pending> = (0..6).map(|i| server.submit(image(i)).unwrap()).collect();
        for p in pendings {
            p.wait().unwrap();
        }
        server.shutdown();
        let stats = server.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.submitted"), Some(stats.submitted));
        assert_eq!(snap.counter("serve.completed"), Some(stats.completed));
        assert_eq!(snap.counter("serve.batches"), Some(stats.batches));
        let latency = snap.histogram("serve.latency_ns").unwrap();
        assert_eq!(latency.total, stats.completed);
        assert_eq!(latency.p99 / 1e6, stats.p99_ms);
        assert_eq!(snap.gauge("serve.queue_len"), Some(0.0));
    }

    #[test]
    fn wrong_geometry_is_rejected_before_queueing() {
        let model = plain20(4, 4).unwrap();
        let server = Server::start(&model, tiny_config()).unwrap();
        let err = server.submit(Tensor::zeros(&[3, 8, 8])).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert_eq!(server.stats().submitted, 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_late_submits() {
        let model = plain20(4, 4).unwrap();
        let server = Server::start(&model, tiny_config()).unwrap();
        let pending = server.submit(image(0)).unwrap();
        server.shutdown();
        server.shutdown(); // second call is a no-op
        assert!(pending.wait().is_ok(), "queued request served during drain");
        assert_eq!(
            server.submit(image(1)).unwrap_err(),
            ServeError::ShuttingDown
        );
        assert_eq!(server.stats().rejected_shutdown, 1);
    }

    #[test]
    fn overload_rejection_is_typed_and_counted() {
        let model = plain20(4, 4).unwrap();
        // One worker with a long batching window and a tiny queue: fill
        // the in-flight batch, then the queue, then watch rejections.
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_millis(50),
            queue_depth: 2,
            ..tiny_config()
        };
        let server = Server::start(&model, cfg).unwrap();
        let mut pendings = Vec::new();
        let mut overloaded = 0usize;
        for i in 0..64 {
            match server.submit(image(i)) {
                Ok(p) => pendings.push(p),
                Err(ServeError::Overloaded { queue_depth }) => {
                    assert_eq!(queue_depth, 2);
                    overloaded += 1;
                }
                Err(other) => panic!("unexpected rejection {other}"),
            }
        }
        assert!(overloaded > 0, "queue never filled");
        for p in pendings {
            p.wait().unwrap();
        }
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.rejected_overloaded, overloaded as u64);
        assert_eq!(stats.submitted + stats.rejected(), 64);
        assert_eq!(stats.completed, stats.submitted);
    }

    #[test]
    fn expired_requests_are_dropped_by_the_batcher() {
        let model = plain20(4, 4).unwrap();
        let server = Server::start(&model, tiny_config()).unwrap();
        // A deadline of "now" has always passed by the time a worker pops
        // the request, so the batcher must answer Expired without running
        // the model; a generous deadline is served normally.
        let expired = server
            .submit_with_deadline(image(0), Some(Instant::now()))
            .unwrap();
        assert_eq!(expired.wait().unwrap_err(), ServeError::Expired);
        let served = server
            .submit_with_deadline(image(1), Some(Instant::now() + Duration::from_secs(60)))
            .unwrap();
        assert!(served.wait().is_ok());
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(
            stats.completed + stats.expired,
            stats.submitted,
            "every admitted request is answered or expired"
        );
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let model = plain20(4, 4).unwrap();
        let server = Server::start(&model, tiny_config()).unwrap();
        let pending = server.submit(image(0)).unwrap();
        let answer = loop {
            if let Some(result) = pending.try_wait() {
                break result;
            }
            std::thread::yield_now();
        };
        assert!(answer.unwrap().class < 4);
        // The slot was emptied by the successful poll.
        assert!(pending.try_wait().is_none());
        server.shutdown();
    }

    #[test]
    fn named_servers_share_a_registry_without_collisions() {
        use alf_obs::metrics::MetricsRegistry;
        let model = plain20(4, 4).unwrap();
        let registry = MetricsRegistry::new();
        let alpha = ServeConfig {
            name: "alpha".to_string(),
            ..tiny_config()
        };
        let beta = ServeConfig {
            name: "beta".to_string(),
            ..tiny_config()
        };
        let a = Server::start_with_registry(&model, alpha, registry.clone()).unwrap();
        let b = Server::start_with_registry(&model, beta, registry.clone()).unwrap();
        a.submit(image(0)).unwrap().wait().unwrap();
        for i in 0..2 {
            b.submit(image(i)).unwrap().wait().unwrap();
        }
        a.shutdown();
        b.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.alpha.submitted"), Some(1));
        assert_eq!(snap.counter("serve.beta.submitted"), Some(2));
        assert_eq!(snap.histogram("serve.alpha.latency_ns").unwrap().total, 1);
        assert_eq!(snap.histogram("serve.beta.latency_ns").unwrap().total, 2);
        // Unnamed instruments must not appear: nothing collided.
        assert_eq!(snap.counter("serve.submitted"), None);
    }

    #[test]
    fn swap_rejects_garbage_and_mismatched_architectures() {
        let model = plain20(4, 4).unwrap();
        let server = Server::start(&model, tiny_config()).unwrap();
        assert!(matches!(
            server.swap_checkpoint(b"not a checkpoint"),
            Err(ServeError::BadCheckpoint(_))
        ));
        let wide = plain20(4, 8).unwrap();
        assert!(matches!(
            server.swap_model(&wide),
            Err(ServeError::BadCheckpoint(_))
        ));
        assert_eq!(server.stats().swaps, 0);
        // Serving still works on the original weights.
        assert!(server.submit(image(3)).unwrap().wait().is_ok());
        server.shutdown();
    }

    #[test]
    fn hot_swap_changes_answers_without_dropping_requests() {
        let model = plain20(4, 4).unwrap();
        let server = Server::start(&model, tiny_config()).unwrap();
        let probe = image(5);
        let before = server.submit(probe.clone()).unwrap().wait().unwrap();
        let mut swapped = plain20(4, 4).unwrap();
        swapped.visit_params(&mut |p| {
            for v in p.value.data_mut() {
                *v += 0.1;
            }
        });
        server.swap_model(&swapped).unwrap();
        let after = server.submit(probe).unwrap().wait().unwrap();
        assert_ne!(before.logits, after.logits);
        assert_eq!(server.stats().swaps, 1);
        server.shutdown();
    }
}
