//! A worker-owned `(model, execution context)` pair — the compute half of
//! the serving engine, usable (and testable) without any threads.
//!
//! Mirrors the replica pattern of `alf_core::train::Evaluator`: each
//! worker keeps a long-lived model clone plus its own [`RunCtx`], so the
//! arena warms once and every later batch reuses the same scratch memory.
//! The batch staging buffer is recovered from the input tensor after each
//! forward (`Tensor::into_vec`), so steady-state serving performs no
//! per-batch staging allocation either.

use alf_core::checkpoint;
use alf_core::deploy::{Pipeline, QuantSpec};
use alf_core::model::CnnModel;
use alf_core::qmodel::QuantizedModel;
use alf_nn::layer::Layer;
use alf_nn::RunCtx;
use alf_tensor::Tensor;

use crate::server::Precision;
use crate::{Result, ServeError};

/// One classification answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Index of the highest logit (first on ties).
    pub class: usize,
    /// Raw logits, shape `[num_classes]`.
    pub logits: Tensor,
}

/// A long-lived model replica with its own eval-mode execution context.
///
/// # Example
///
/// ```
/// use alf_core::models::plain20;
/// use alf_serve::Replica;
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_serve::Result<()> {
/// let model = plain20(4, 4).expect("model");
/// let mut replica = Replica::new(model, [3, 12, 12])?;
/// let images = [Tensor::zeros(&[3, 12, 12]), Tensor::ones(&[3, 12, 12])];
/// let refs: Vec<&Tensor> = images.iter().collect();
/// let predictions = replica.run_batch(&refs)?;
/// assert_eq!(predictions.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Replica {
    model: CnnModel,
    /// The fused int8 engine, when this replica serves
    /// [`Precision::Int8`]; rebuilt after every checkpoint swap.
    quant: Option<QuantizedModel>,
    /// Calibration batch retained for those rebuilds.
    calib: Option<Tensor>,
    ctx: RunCtx,
    staging: Vec<f32>,
    image_dims: [usize; 3],
    classes: usize,
}

impl Replica {
    /// Builds an f32 replica serving `[C, H, W]` images, probing the model
    /// with one zero image to validate the geometry and learn the class
    /// count.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the dimensions are zero, the model
    /// rejects them, or its output is not `[1, classes]` logits.
    pub fn new(model: CnnModel, image_dims: [usize; 3]) -> Result<Self> {
        Self::with_precision(model, image_dims, &Precision::F32)
    }

    /// Like [`Replica::new`], but for an explicit numeric form. For
    /// [`Precision::Int8`] the model is lowered through
    /// `deploy::Pipeline` (BN folding + int8 quantization calibrated on
    /// the carried batch) and batches run on the fused int8 engine; the
    /// f32 model is kept for checkpoint swaps.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] additionally when the int8 lowering
    /// rejects the model (unsupported form, bad calibration batch).
    pub fn with_precision(
        model: CnnModel,
        image_dims: [usize; 3],
        precision: &Precision,
    ) -> Result<Self> {
        let [c, h, w] = image_dims;
        if c == 0 || h == 0 || w == 0 {
            return Err(ServeError::BadRequest(format!(
                "image dims must be non-zero, got {image_dims:?}"
            )));
        }
        let (quant, calib) = match precision {
            Precision::F32 => (None, None),
            Precision::Int8(calib) => (Some(Self::lower_int8(&model, calib)?), Some(calib.clone())),
        };
        let mut replica = Self {
            model,
            quant,
            calib,
            ctx: RunCtx::eval(),
            staging: Vec::new(),
            image_dims,
            classes: 0,
        };
        let probe = Tensor::zeros(&[1, c, h, w]);
        let logits = replica.forward(&probe).map_err(|e| {
            ServeError::BadRequest(format!("model rejects [1, {c}, {h}, {w}] inputs: {e}"))
        })?;
        if logits.dims().len() != 2 || logits.dims()[0] != 1 || logits.dims()[1] == 0 {
            return Err(ServeError::BadRequest(format!(
                "model produced {:?} for a single image; expected [1, classes] logits",
                logits.dims()
            )));
        }
        replica.classes = logits.dims()[1];
        Ok(replica)
    }

    /// Runs the deploy pipeline that turns the f32 model into the fused
    /// int8 engine.
    fn lower_int8(model: &CnnModel, calib: &Tensor) -> Result<QuantizedModel> {
        let deployed = Pipeline::new()
            .fold_bn(true)
            .quantize(QuantSpec::int8(calib.clone()))
            .run(model)
            .map_err(|e| ServeError::BadRequest(format!("int8 lowering failed: {e}")))?;
        Ok(deployed.quantized.expect("quantize(..) produces an engine"))
    }

    /// One batched forward through whichever engine this replica runs.
    fn forward(&mut self, batch: &Tensor) -> alf_core::Result<Tensor> {
        match &mut self.quant {
            Some(q) => q.forward(batch),
            None => self.model.forward(batch, &mut self.ctx),
        }
    }

    /// The `[C, H, W]` geometry this replica serves.
    pub fn image_dims(&self) -> [usize; 3] {
        self.image_dims
    }

    /// Number of output classes (learned from the probe forward).
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The served model (the f32 form, even for int8 replicas).
    pub fn model(&self) -> &CnnModel {
        &self.model
    }

    /// Whether batches run on the fused int8 engine.
    pub fn is_int8(&self) -> bool {
        self.quant.is_some()
    }

    /// The replica's execution context (arena + profiler).
    pub fn ctx(&self) -> &RunCtx {
        &self.ctx
    }

    /// Mutable context access — used by the server's freeze/thaw hooks and
    /// by tests asserting the zero-allocation steady state.
    pub fn ctx_mut(&mut self) -> &mut RunCtx {
        &mut self.ctx
    }

    /// Grows the arena and layer caches to their steady state by running
    /// zero batches at `max_batch` and at 1. After this, any batch size in
    /// `1..=max_batch` reuses existing capacity — which is what lets the
    /// server freeze worker arenas under load.
    ///
    /// # Errors
    ///
    /// Propagates forward failures as [`ServeError::Internal`].
    pub fn prewarm(&mut self, max_batch: usize) -> Result<()> {
        let [c, h, w] = self.image_dims;
        for b in [max_batch.max(1), 1] {
            let x = Tensor::zeros(&[b, c, h, w]);
            self.forward(&x)
                .map_err(|e| ServeError::Internal(format!("prewarm forward failed: {e}")))?;
        }
        Ok(())
    }

    /// Forwards `images` (each `[C, H, W]`) as one `[B, C, H, W]` batch
    /// and returns one [`Prediction`] per image, in order.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on a geometry mismatch,
    /// [`ServeError::Internal`] when the forward itself fails.
    pub fn run_batch(&mut self, images: &[&Tensor]) -> Result<Vec<Prediction>> {
        if images.is_empty() {
            return Ok(Vec::new());
        }
        let [c, h, w] = self.image_dims;
        let mut staged = std::mem::take(&mut self.staging);
        staged.clear();
        staged.reserve(images.len() * c * h * w);
        for img in images {
            if img.dims() != self.image_dims {
                self.staging = staged;
                return Err(ServeError::BadRequest(format!(
                    "expected {:?} image, got {:?}",
                    self.image_dims,
                    img.dims()
                )));
            }
            staged.extend_from_slice(img.data());
        }
        let batch = Tensor::from_vec(staged, &[images.len(), c, h, w])
            .map_err(|e| ServeError::Internal(e.to_string()))?;
        let logits = match self.forward(&batch) {
            Ok(l) => l,
            Err(e) => {
                self.staging = batch.into_vec();
                return Err(ServeError::Internal(format!("batch forward failed: {e}")));
            }
        };
        self.staging = batch.into_vec();
        let k = self.classes;
        let data = logits.data();
        let predictions = (0..images.len())
            .map(|i| {
                let row = &data[i * k..(i + 1) * k];
                let class = row
                    .iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (j, &v)| {
                        if v > bv {
                            (j, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0;
                Prediction {
                    class,
                    logits: Tensor::from_vec(row.to_vec(), &[k]).expect("row matches [k]"),
                }
            })
            .collect();
        Ok(predictions)
    }

    /// Replaces the replica's weights from a checkpoint blob. Called by
    /// the server between batches, so in-flight requests never observe a
    /// half-swapped model.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadCheckpoint`] when the blob is malformed or its
    /// state structure mismatches the model (the model is left untouched),
    /// or when the swapped weights cannot be re-lowered to int8.
    pub fn load_checkpoint(&mut self, blob: &[u8]) -> Result<()> {
        checkpoint::load(&mut self.model, blob)
            .map_err(|e| ServeError::BadCheckpoint(e.to_string()))?;
        if let Some(calib) = &self.calib {
            // Int8 replicas re-run the lowering so the served engine
            // tracks the new weights.
            self.quant = Some(
                Self::lower_int8(&self.model, calib)
                    .map_err(|e| ServeError::BadCheckpoint(e.to_string()))?,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_core::models::plain20;

    fn replica() -> Replica {
        Replica::new(plain20(4, 4).unwrap(), [3, 12, 12]).unwrap()
    }

    #[test]
    fn probe_learns_class_count() {
        let r = replica();
        assert_eq!(r.classes(), 4);
        assert_eq!(r.image_dims(), [3, 12, 12]);
    }

    #[test]
    fn zero_dims_are_rejected() {
        let err = Replica::new(plain20(4, 4).unwrap(), [3, 0, 12]).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
    }

    #[test]
    fn batch_matches_single_image_forwards() {
        let mut r = replica();
        let a = Tensor::from_fn(&[3, 12, 12], |i| (i % 7) as f32 * 0.1);
        let b = Tensor::from_fn(&[3, 12, 12], |i| (i % 5) as f32 * -0.2);
        let batched = r.run_batch(&[&a, &b]).unwrap();
        let solo_a = r.run_batch(&[&a]).unwrap().remove(0);
        let solo_b = r.run_batch(&[&b]).unwrap().remove(0);
        assert_eq!(batched[0], solo_a);
        assert_eq!(batched[1], solo_b);
        assert_eq!(batched[0].logits.dims(), &[4]);
    }

    #[test]
    fn wrong_geometry_is_a_bad_request() {
        let mut r = replica();
        let img = Tensor::zeros(&[3, 8, 8]);
        assert!(matches!(
            r.run_batch(&[&img]),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn prewarm_makes_batches_allocation_free() {
        let mut r = replica();
        r.prewarm(4).unwrap();
        let imgs: Vec<Tensor> = (0..4).map(|_| Tensor::zeros(&[3, 12, 12])).collect();
        let refs: Vec<&Tensor> = imgs.iter().collect();
        // One settling batch, then freeze: every later batch size must
        // reuse existing arena capacity.
        r.run_batch(&refs).unwrap();
        let events = r.ctx().ws.alloc_events();
        r.ctx_mut().ws.freeze();
        for n in [4usize, 1, 2, 3] {
            r.run_batch(&refs[..n]).unwrap();
        }
        r.ctx_mut().ws.thaw();
        assert_eq!(r.ctx().ws.alloc_events(), events);
    }

    fn int8_replica() -> Replica {
        let mut rng = alf_tensor::rng::Rng::new(3);
        let calib = Tensor::randn(&[4, 3, 12, 12], alf_tensor::init::Init::Rand, &mut rng);
        Replica::with_precision(plain20(4, 4).unwrap(), [3, 12, 12], &Precision::Int8(calib))
            .unwrap()
    }

    #[test]
    fn int8_replica_serves_and_mostly_agrees_with_f32() {
        let mut q = int8_replica();
        assert!(q.is_int8());
        assert_eq!(q.classes(), 4);
        let mut f = replica();
        let mut rng = alf_tensor::rng::Rng::new(4);
        let imgs: Vec<Tensor> = (0..16)
            .map(|_| Tensor::randn(&[3, 12, 12], alf_tensor::init::Init::Rand, &mut rng))
            .collect();
        let refs: Vec<&Tensor> = imgs.iter().collect();
        let qp = q.run_batch(&refs).unwrap();
        let fp = f.run_batch(&refs).unwrap();
        let agree = qp
            .iter()
            .zip(&fp)
            .filter(|(a, b)| a.class == b.class)
            .count();
        assert!(agree * 10 >= refs.len() * 9, "{agree}/{}", refs.len());
    }

    #[test]
    fn int8_replica_rebuilds_engine_on_checkpoint_swap() {
        let mut r = int8_replica();
        let img = Tensor::from_fn(&[3, 12, 12], |i| (i % 11) as f32 * 0.05);
        let before = r.run_batch(&[&img]).unwrap().remove(0);
        let mut other = plain20(4, 4).unwrap();
        other.visit_params(&mut |p| {
            for v in p.value.data_mut() {
                *v += 0.05;
            }
        });
        let blob = alf_core::checkpoint::save(&other);
        r.load_checkpoint(&blob).unwrap();
        assert!(r.is_int8());
        let after = r.run_batch(&[&img]).unwrap().remove(0);
        assert_ne!(before.logits, after.logits);
    }

    #[test]
    fn load_checkpoint_swaps_weights() {
        let mut r = replica();
        let img = Tensor::from_fn(&[3, 12, 12], |i| (i % 11) as f32 * 0.05);
        let before = r.run_batch(&[&img]).unwrap().remove(0);
        // `plain20` is deterministic, so nudge the weights to get a model
        // with the same architecture but different function.
        let mut other = plain20(4, 4).unwrap();
        other.visit_params(&mut |p| {
            for v in p.value.data_mut() {
                *v += 0.05;
            }
        });
        let blob = alf_core::checkpoint::save(&other);
        r.load_checkpoint(&blob).unwrap();
        let after = r.run_batch(&[&img]).unwrap().remove(0);
        assert_ne!(before.logits, after.logits);
        // A mismatched blob is rejected and leaves the weights alone.
        let wide = plain20(4, 8).unwrap();
        let bad = alf_core::checkpoint::save(&wide);
        assert!(matches!(
            r.load_checkpoint(&bad),
            Err(ServeError::BadCheckpoint(_))
        ));
        let unchanged = r.run_batch(&[&img]).unwrap().remove(0);
        assert_eq!(after.logits, unchanged.logits);
    }
}
