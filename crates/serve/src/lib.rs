//! Batched inference serving for deployed ALF models.
//!
//! The paper's deployment story ends with [`alf_core::deploy::Pipeline`]
//! producing a dense `code conv → 1×1 expansion` network; this crate is
//! the runtime that actually serves it. A [`Server`] accepts single-image
//! classification requests on a bounded submission queue, coalesces them
//! into dynamic micro-batches (flushing on `max_batch` or `max_wait`,
//! whichever comes first) and fans the batches out to a pool of worker
//! threads. Each worker owns a long-lived `(model, RunCtx)` [`Replica`],
//! so after warm-up the per-batch arena traffic is zero — the same
//! steady-state contract the training hot loop enforces in
//! `tests/profiling.rs`.
//!
//! [`ServeConfig::precision`] selects the numeric engine per model:
//! [`Precision::F32`] serves the deployed model as-is, while
//! [`Precision::Int8`] (with a calibration batch) has every replica fold
//! batch-norm and lower the model to the fused `i8×i8→i32` engine at
//! start-up — and again after every hot checkpoint swap, reusing the
//! same calibration.
//!
//! ```text
//! submit() ──► bounded queue ──► micro-batcher ──► worker replicas
//!    │              │                                   │
//!    │         Overloaded /                        Prediction per
//!    │         ShuttingDown                        request (Pending)
//!    └── Pending ◄──────────────────────────────────────┘
//! ```
//!
//! Operational features:
//!
//! * **Admission control.** The queue depth is bounded; a submit against a
//!   full queue gets a typed [`ServeError::Overloaded`] rejection instead
//!   of unbounded latency.
//! * **Request deadlines.** [`Server::submit_with_deadline`] attaches an
//!   optional deadline; the batcher drops requests whose deadline passed
//!   while they queued, answering them with [`ServeError::Expired`]
//!   instead of wasting a replica slot on a reply nobody is waiting for.
//! * **Graceful shutdown.** [`Server::shutdown`] stops admissions, drains
//!   every queued and in-flight request, and joins the workers; requests
//!   arriving during the drain are rejected with
//!   [`ServeError::ShuttingDown`] — nothing is silently dropped.
//! * **Hot model swap.** [`Server::swap_checkpoint`] validates a new
//!   checkpoint blob against a staging replica and then lets every worker
//!   reload it *between* batches; requests in flight during the swap are
//!   still answered.
//! * **Observability.** [`Server::stats`] snapshots request counters, a
//!   batch-size histogram and p50/p95/p99 latency from a fixed-bucket
//!   log-scale histogram; the hot path touches only `Instant`.
//!
//! # Example
//!
//! ```
//! use alf_core::models::plain20;
//! use alf_serve::{ServeConfig, Server};
//! use alf_tensor::Tensor;
//!
//! # fn main() -> alf_serve::Result<()> {
//! let model = plain20(4, 4).expect("model");
//! let server = Server::start(&model, ServeConfig::new(3, 12, 12))?;
//! let pending = server.submit(Tensor::zeros(&[3, 12, 12]))?;
//! let prediction = pending.wait()?;
//! assert!(prediction.class < 4);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod replica;
mod server;
mod stats;

pub use replica::{Prediction, Replica};
pub use server::{Pending, Precision, ServeConfig, Server};
pub use stats::{LatencyHistogram, ServerStats};

use std::fmt;

/// Typed serving failures. Rejections ([`ServeError::Overloaded`],
/// [`ServeError::ShuttingDown`]) are part of the protocol — a caller that
/// receives one knows its request was never enqueued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The submission queue was full; the request was not admitted.
    Overloaded {
        /// The configured queue bound that was hit.
        queue_depth: usize,
    },
    /// The server is draining (or already stopped); the request was not
    /// admitted.
    ShuttingDown,
    /// The request's deadline passed while it waited in the queue; it was
    /// dropped by the batcher without occupying a replica slot.
    Expired,
    /// The request (or configuration) is malformed — e.g. wrong image
    /// dimensions.
    BadRequest(String),
    /// A hot-swap blob failed validation; the serving model is unchanged.
    BadCheckpoint(String),
    /// A model forward failed while serving a batch.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "submission queue full ({queue_depth} waiting); retry later"
                )
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down; request rejected"),
            ServeError::Expired => {
                write!(f, "request deadline expired before a replica picked it up")
            }
            ServeError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            ServeError::BadCheckpoint(detail) => write!(f, "bad checkpoint: {detail}"),
            ServeError::Internal(detail) => write!(f, "internal serving error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
