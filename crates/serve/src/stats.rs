//! Serving observability: a fixed-bucket latency histogram and the
//! [`ServerStats`] snapshot assembled from it.

use std::time::Duration;

/// Sub-buckets per octave. Quarter-octave resolution bounds the relative
/// quantile error at `2^(1/4) − 1 ≈ 19%` of the reported value.
const SUB_BUCKETS: usize = 4;
/// Octaves covered, starting at 1 µs; the last bucket is a catch-all for
/// anything slower than `1 µs · 2^30 ≈ 18 min`.
const OCTAVES: usize = 30;
const BUCKETS: usize = SUB_BUCKETS * OCTAVES;

/// Fixed-bucket, log-scale latency histogram.
///
/// The bucket layout is decided at compile time, so [`record`] is a
/// branch, a `log2` and two increments — no allocation, no syscalls. That
/// keeps it safe to call from the serving hot path, where the only clock
/// source is `Instant`.
///
/// [`record`]: LatencyHistogram::record
///
/// # Example
///
/// ```
/// use alf_serve::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [1u64, 2, 3, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.total(), 4);
/// assert!(h.quantile_ms(0.5) >= 2.0);
/// assert!(h.quantile_ms(1.0) >= 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl LatencyHistogram {
    /// Empty histogram. The bucket vector is the only allocation this type
    /// ever makes.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Upper bound of the bucket containing the `q`-quantile sample, in
    /// milliseconds (0.0 for an empty histogram). `q` is clamped to
    /// `[0, 1]`.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::upper_bound_ns(i) / 1e6;
            }
        }
        Self::upper_bound_ns(BUCKETS - 1) / 1e6
    }

    fn bucket(ns: u64) -> usize {
        if ns <= 1_000 {
            return 0;
        }
        let octaves = (ns as f64 / 1_000.0).log2();
        ((octaves * SUB_BUCKETS as f64) as usize).min(BUCKETS - 1)
    }

    fn upper_bound_ns(bucket: usize) -> f64 {
        1_000.0 * 2f64.powf((bucket + 1) as f64 / SUB_BUCKETS as f64)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time snapshot of a [`Server`](crate::Server)'s counters and
/// distributions. Counters are monotone; a snapshot taken after
/// [`shutdown`](crate::Server::shutdown) is final.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered with a prediction (or a per-batch error).
    pub completed: u64,
    /// Requests rejected because the queue was full.
    pub rejected_overloaded: u64,
    /// Requests rejected because the server was draining.
    pub rejected_shutdown: u64,
    /// Successful hot swaps applied so far.
    pub swaps: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// `batch_histogram[n]` = number of batches carrying exactly `n`
    /// requests; index 0 is unused (batches are never empty).
    pub batch_histogram: Vec<u64>,
    /// Mean requests per executed batch (0.0 before the first batch).
    pub mean_batch_occupancy: f64,
    /// Median queue-to-response latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
}

impl ServerStats {
    /// Total typed rejections (overload + shutdown).
    pub fn rejected(&self) -> u64 {
        self.rejected_overloaded + self.rejected_shutdown
    }

    /// One JSON object (hand-rolled — the workspace is offline and carries
    /// no JSON dependency).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self.batch_histogram.iter().map(u64::to_string).collect();
        format!(
            "{{\"submitted\":{},\"completed\":{},\"rejected_overloaded\":{},\
             \"rejected_shutdown\":{},\"swaps\":{},\"batches\":{},\
             \"batch_histogram\":[{}],\"mean_batch_occupancy\":{:.4},\
             \"p50_ms\":{:.4},\"p95_ms\":{:.4},\"p99_ms\":{:.4}}}",
            self.submitted,
            self.completed,
            self.rejected_overloaded,
            self.rejected_shutdown,
            self.swaps,
            self.batches,
            hist.join(","),
            self.mean_batch_occupancy,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.quantile_ms(0.99), 0.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_samples() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile_ms(0.50);
        let p95 = h.quantile_ms(0.95);
        let p99 = h.quantile_ms(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // The reported bound must sit within one bucket (≤ 19%) above the
        // exact quantile and never below it.
        assert!((50.0..=60.0).contains(&p50), "p50 {p50}");
        assert!((95.0..=114.0).contains(&p95), "p95 {p95}");
        assert!((99.0..=119.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(100_000));
        assert_eq!(h.total(), 2);
        assert!(h.quantile_ms(0.0) > 0.0);
        assert!(h.quantile_ms(1.0).is_finite());
    }

    #[test]
    fn stats_json_contains_counters() {
        let stats = ServerStats {
            submitted: 10,
            completed: 8,
            rejected_overloaded: 1,
            rejected_shutdown: 1,
            swaps: 2,
            batches: 3,
            batch_histogram: vec![0, 1, 2],
            mean_batch_occupancy: 2.67,
            p50_ms: 1.5,
            p95_ms: 3.0,
            p99_ms: 4.0,
        };
        assert_eq!(stats.rejected(), 2);
        let json = stats.to_json();
        assert!(json.contains("\"submitted\":10"));
        assert!(json.contains("\"batch_histogram\":[0,1,2]"));
        assert!(json.contains("\"p99_ms\":4.0000"));
    }
}
