//! Serving observability: a latency view over the shared workspace
//! histogram and the [`ServerStats`] snapshot assembled from it.
//!
//! The fixed-bucket log2 histogram that used to live here was generalised
//! into [`alf_obs::metrics::Histogram`]; [`LatencyHistogram`] remains as
//! the duration-typed serving view (`record(Duration)`, quantiles in
//! milliseconds) and can wrap a histogram registered in a
//! [`MetricsRegistry`](alf_obs::metrics::MetricsRegistry), so the server's
//! latency distribution is the *same cells* whether read through
//! [`ServerStats`] or a registry snapshot.

use std::sync::Arc;
use std::time::Duration;

use alf_obs::json::JsonWriter;
use alf_obs::metrics::{Histogram, HistogramSpec};

/// Fixed-bucket, log-scale latency histogram.
///
/// A duration-typed view over [`alf_obs::metrics::Histogram`] with the
/// [`HistogramSpec::latency_ns`] layout: bucket 0 at ≤ 1 µs, quarter
/// octaves (quantile error ≤ `2^(1/4) − 1 ≈ 19%`), catch-all above
/// `1 µs · 2^30 ≈ 18 min`. [`record`] is a branch, a `log2` and two
/// relaxed atomic increments — no allocation, no syscalls — so it is safe
/// to call from the serving hot path, where the only clock source is
/// `Instant`.
///
/// [`record`]: LatencyHistogram::record
///
/// # Example
///
/// ```
/// use alf_serve::LatencyHistogram;
/// use std::time::Duration;
///
/// let h = LatencyHistogram::new();
/// for ms in [1u64, 2, 3, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.total(), 4);
/// assert!(h.quantile_ms(0.5) >= 2.0);
/// assert!(h.quantile_ms(1.0) >= 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    inner: Arc<Histogram>,
}

impl LatencyHistogram {
    /// Empty histogram. The bucket vector is the only allocation this type
    /// ever makes.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Histogram::new(HistogramSpec::latency_ns())),
        }
    }

    /// View over an existing shared histogram (typically registered as
    /// `serve.latency_ns` in a metrics registry). Samples recorded through
    /// either handle are visible through both.
    ///
    /// # Panics
    ///
    /// Panics when `inner` does not use the [`HistogramSpec::latency_ns`]
    /// layout — the millisecond quantile math depends on nanosecond
    /// samples.
    pub fn from_shared(inner: Arc<Histogram>) -> Self {
        assert_eq!(
            inner.spec(),
            HistogramSpec::latency_ns(),
            "LatencyHistogram requires the latency_ns bucket layout"
        );
        Self { inner }
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.inner.record(ns);
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.inner.total()
    }

    /// Upper bound of the bucket containing the `q`-quantile sample, in
    /// milliseconds (0.0 for an empty histogram). `q` is clamped to
    /// `[0, 1]`.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.inner.quantile(q) / 1e6
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time snapshot of a [`Server`](crate::Server)'s counters and
/// distributions. Counters are monotone; a snapshot taken after
/// [`shutdown`](crate::Server::shutdown) is final.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered with a prediction (or a per-batch error).
    pub completed: u64,
    /// Requests rejected because the queue was full.
    pub rejected_overloaded: u64,
    /// Requests rejected because the server was draining.
    pub rejected_shutdown: u64,
    /// Admitted requests answered with [`Expired`](crate::ServeError::Expired)
    /// because their deadline passed in the queue. After a drain,
    /// `completed + expired == submitted`.
    pub expired: u64,
    /// Successful hot swaps applied so far.
    pub swaps: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// `batch_histogram[n]` = number of batches carrying exactly `n`
    /// requests; index 0 is unused (batches are never empty).
    pub batch_histogram: Vec<u64>,
    /// Mean requests per executed batch (0.0 before the first batch).
    pub mean_batch_occupancy: f64,
    /// Median queue-to-response latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
}

impl ServerStats {
    /// Total typed rejections (overload + shutdown).
    pub fn rejected(&self) -> u64 {
        self.rejected_overloaded + self.rejected_shutdown
    }

    /// Writes the snapshot as one JSON object into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("submitted", self.submitted);
        w.field_u64("completed", self.completed);
        w.field_u64("rejected_overloaded", self.rejected_overloaded);
        w.field_u64("rejected_shutdown", self.rejected_shutdown);
        w.field_u64("expired", self.expired);
        w.field_u64("swaps", self.swaps);
        w.field_u64("batches", self.batches);
        w.field_u64s("batch_histogram", self.batch_histogram.iter().copied());
        w.field_f64("mean_batch_occupancy", self.mean_batch_occupancy);
        w.field_f64("p50_ms", self.p50_ms);
        w.field_f64("p95_ms", self.p95_ms);
        w.field_f64("p99_ms", self.p99_ms);
        w.end_object();
    }

    /// One JSON object, serialised through the shared workspace writer
    /// (`alf_obs::json`). Floats use shortest round-trip form.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.quantile_ms(0.99), 0.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_samples() {
        let h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile_ms(0.50);
        let p95 = h.quantile_ms(0.95);
        let p99 = h.quantile_ms(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // The reported bound must sit within one bucket (≤ 19%) above the
        // exact quantile and never below it.
        assert!((50.0..=60.0).contains(&p50), "p50 {p50}");
        assert!((95.0..=114.0).contains(&p95), "p95 {p95}");
        assert!((99.0..=119.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(100_000));
        assert_eq!(h.total(), 2);
        assert!(h.quantile_ms(0.0) > 0.0);
        assert!(h.quantile_ms(1.0).is_finite());
    }

    #[test]
    fn shared_histogram_is_visible_through_both_handles() {
        let shared = Arc::new(Histogram::new(HistogramSpec::latency_ns()));
        let view = LatencyHistogram::from_shared(Arc::clone(&shared));
        view.record(Duration::from_millis(2));
        shared.record(3_000_000);
        assert_eq!(view.total(), 2);
        assert_eq!(shared.total(), 2);
    }

    #[test]
    fn stats_json_contains_counters() {
        let stats = ServerStats {
            submitted: 10,
            completed: 8,
            rejected_overloaded: 1,
            rejected_shutdown: 1,
            expired: 1,
            swaps: 2,
            batches: 3,
            batch_histogram: vec![0, 1, 2],
            mean_batch_occupancy: 2.67,
            p50_ms: 1.5,
            p95_ms: 3.0,
            p99_ms: 4.0,
        };
        assert_eq!(stats.rejected(), 2);
        let json = stats.to_json();
        assert!(json.contains("\"submitted\":10"));
        assert!(json.contains("\"expired\":1"));
        assert!(json.contains("\"batch_histogram\":[0,1,2]"));
        assert!(json.contains("\"mean_batch_occupancy\":2.67"));
        assert!(json.contains("\"p99_ms\":4}"));
    }
}
