//! Incremental HTTP/1.1 request parsing and response serialisation.
//!
//! [`RequestParser`] is a byte-at-a-time state machine: [`feed`] accepts
//! any chunking of the input stream — one byte per call, the whole request
//! at once, or arbitrary splits — and produces the identical [`Request`]
//! and consumed-byte count in every case (the property test in
//! `tests/http_proptest.rs` drives exactly that invariant). It consumes
//! *only* the bytes of the request it returns, so pipelined keep-alive
//! bytes stay in the caller's buffer for the next `feed`.
//!
//! The parser is deliberately small and strict: request line + headers +
//! `content-length`-framed body, HTTP/1.0 and 1.1 only. Every limit
//! (request-line length, cumulative header bytes, header count, body
//! size) is enforced as bytes arrive, so a hostile peer cannot make the
//! parser buffer unboundedly, and every failure is a typed [`HttpError`]
//! carrying its HTTP status — never a panic. `transfer-encoding` is
//! refused with `501` rather than half-supported.
//!
//! [`feed`]: RequestParser::feed

use std::fmt;

/// Size bounds enforced while parsing; all are checked incrementally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Cumulative header-block bound, bytes (sum of header line lengths).
    pub max_header_bytes: usize,
    /// Most headers accepted in one request.
    pub max_headers: usize,
    /// Largest accepted `content-length`, bytes.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    /// 4 KiB request line, 16 KiB of headers, 64 headers, 1 MiB body.
    fn default() -> Self {
        Self {
            max_request_line: 4096,
            max_header_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 1 << 20,
        }
    }
}

/// A typed parse failure; [`HttpError::status`] maps it to the HTTP
/// status the connection answers with before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line is not `METHOD SP target SP HTTP/x.y`.
    BadRequestLine(String),
    /// The request line exceeded [`HttpLimits::max_request_line`].
    RequestLineTooLong {
        /// The configured bound that was hit.
        limit: usize,
    },
    /// A header line is malformed (missing colon, empty or non-token
    /// name, obs-fold continuation).
    BadHeader(String),
    /// The header block exceeded [`HttpLimits::max_header_bytes`].
    HeaderTooLarge {
        /// The configured bound that was hit.
        limit: usize,
    },
    /// More headers than [`HttpLimits::max_headers`].
    TooManyHeaders {
        /// The configured bound that was hit.
        limit: usize,
    },
    /// `content-length` is non-numeric or repeated with disagreeing
    /// values.
    BadContentLength(String),
    /// The declared body exceeds [`HttpLimits::max_body_bytes`].
    BodyTooLarge {
        /// The configured bound that was hit.
        limit: usize,
    },
    /// The version token is `HTTP/…` but neither 1.0 nor 1.1.
    UnsupportedVersion(String),
    /// A `transfer-encoding` header was present; only
    /// `content-length` framing is implemented.
    UnsupportedTransferEncoding,
}

impl HttpError {
    /// The `(status code, reason phrase)` this error is answered with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequestLine(_)
            | HttpError::BadHeader(_)
            | HttpError::BadContentLength(_) => (400, "Bad Request"),
            HttpError::RequestLineTooLong { .. } => (414, "URI Too Long"),
            HttpError::HeaderTooLarge { .. } | HttpError::TooManyHeaders { .. } => {
                (431, "Request Header Fields Too Large")
            }
            HttpError::BodyTooLarge { .. } => (413, "Content Too Large"),
            HttpError::UnsupportedVersion(_) => (505, "HTTP Version Not Supported"),
            HttpError::UnsupportedTransferEncoding => (501, "Not Implemented"),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequestLine(detail) => write!(f, "bad request line: {detail}"),
            HttpError::RequestLineTooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            HttpError::BadHeader(detail) => write!(f, "bad header: {detail}"),
            HttpError::HeaderTooLarge { limit } => {
                write!(f, "header block exceeds {limit} bytes")
            }
            HttpError::TooManyHeaders { limit } => write!(f, "more than {limit} headers"),
            HttpError::BadContentLength(detail) => write!(f, "bad content-length: {detail}"),
            HttpError::BodyTooLarge { limit } => write!(f, "body exceeds {limit} bytes"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version '{v}'"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// The two protocol versions the parser accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpVersion {
    /// `HTTP/1.0`: connections close unless `connection: keep-alive`.
    Http10,
    /// `HTTP/1.1`: connections persist unless `connection: close`.
    Http11,
}

/// One fully parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// Request target, as sent (path plus optional `?query`).
    pub target: String,
    /// Protocol version.
    pub version: HttpVersion,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The `content-length`-framed body (empty when none was declared).
    pub body: Vec<u8>,
}

impl Request {
    /// First header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target with any `?query` suffix removed.
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(p, _)| p)
    }

    /// Whether the connection persists after this exchange: HTTP/1.1
    /// unless `connection: close`, HTTP/1.0 only with
    /// `connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let conn = self.header("connection").unwrap_or("");
        match self.version {
            HttpVersion::Http11 => !conn.eq_ignore_ascii_case("close"),
            HttpVersion::Http10 => conn.eq_ignore_ascii_case("keep-alive"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    RequestLine,
    Headers,
    Body { remaining: usize },
}

/// Incremental request parser; see the module docs for the contract.
#[derive(Debug)]
pub struct RequestParser {
    limits: HttpLimits,
    state: State,
    line: Vec<u8>,
    header_bytes: usize,
    method: String,
    target: String,
    version: HttpVersion,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    failed: Option<HttpError>,
}

impl RequestParser {
    /// Fresh parser with the given limits.
    pub fn new(limits: HttpLimits) -> Self {
        Self {
            limits,
            state: State::RequestLine,
            line: Vec::new(),
            header_bytes: 0,
            method: String::new(),
            target: String::new(),
            version: HttpVersion::Http11,
            headers: Vec::new(),
            body: Vec::new(),
            failed: None,
        }
    }

    /// True between requests: nothing of a partial request is buffered.
    pub fn is_idle(&self) -> bool {
        self.state == State::RequestLine && self.line.is_empty() && self.failed.is_none()
    }

    /// Feeds bytes in. Returns `(consumed, Some(request))` when a request
    /// completed — `consumed` covers exactly that request's bytes, any
    /// remainder of `input` belongs to the next request — or
    /// `(input.len(), None)` when more bytes are needed. The parser resets
    /// itself after each completed request, so one instance serves a whole
    /// keep-alive connection.
    ///
    /// # Errors
    ///
    /// A typed [`HttpError`]; the parser is poisoned afterwards (every
    /// later call returns the same error) and the connection must close
    /// after answering with [`HttpError::status`].
    pub fn feed(&mut self, input: &[u8]) -> Result<(usize, Option<Request>), HttpError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        match self.feed_inner(input) {
            Ok(done) => Ok(done),
            Err(e) => {
                self.failed = Some(e.clone());
                Err(e)
            }
        }
    }

    fn feed_inner(&mut self, input: &[u8]) -> Result<(usize, Option<Request>), HttpError> {
        let mut consumed = 0;
        while consumed < input.len() {
            match self.state {
                State::RequestLine | State::Headers => {
                    let byte = input[consumed];
                    consumed += 1;
                    if byte == b'\n' {
                        if self.finish_line()? {
                            return Ok((consumed, Some(self.take_request())));
                        }
                    } else {
                        self.push_line_byte(byte)?;
                    }
                }
                State::Body { remaining } => {
                    let take = remaining.min(input.len() - consumed);
                    self.body
                        .extend_from_slice(&input[consumed..consumed + take]);
                    consumed += take;
                    if remaining == take {
                        return Ok((consumed, Some(self.take_request())));
                    }
                    self.state = State::Body {
                        remaining: remaining - take,
                    };
                }
            }
        }
        Ok((consumed, None))
    }

    fn push_line_byte(&mut self, byte: u8) -> Result<(), HttpError> {
        match self.state {
            State::RequestLine => {
                if self.line.len() >= self.limits.max_request_line {
                    return Err(HttpError::RequestLineTooLong {
                        limit: self.limits.max_request_line,
                    });
                }
            }
            State::Headers => {
                self.header_bytes += 1;
                if self.header_bytes > self.limits.max_header_bytes {
                    return Err(HttpError::HeaderTooLarge {
                        limit: self.limits.max_header_bytes,
                    });
                }
            }
            State::Body { .. } => unreachable!("body bytes never reach the line accumulator"),
        }
        self.line.push(byte);
        Ok(())
    }

    /// Handles one completed line (terminator already consumed, trailing
    /// `\r` stripped here). Returns `true` when the whole request is done.
    fn finish_line(&mut self) -> Result<bool, HttpError> {
        if self.line.last() == Some(&b'\r') {
            self.line.pop();
        }
        let line = std::mem::take(&mut self.line);
        match self.state {
            State::RequestLine => {
                // Robustness (RFC 9112 §2.2): skip empty line(s) that
                // precede the request line.
                if line.is_empty() {
                    return Ok(false);
                }
                self.parse_request_line(&line)?;
                self.state = State::Headers;
                Ok(false)
            }
            State::Headers => {
                if line.is_empty() {
                    return self.finish_headers();
                }
                self.parse_header_line(&line)?;
                Ok(false)
            }
            State::Body { .. } => unreachable!("body bytes never reach the line accumulator"),
        }
    }

    fn parse_request_line(&mut self, line: &[u8]) -> Result<(), HttpError> {
        let text = std::str::from_utf8(line)
            .map_err(|_| HttpError::BadRequestLine("not valid UTF-8".to_string()))?;
        let mut parts = text.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
            _ => {
                return Err(HttpError::BadRequestLine(format!(
                    "expected 'METHOD SP target SP version', got {text:?}"
                )))
            }
        };
        if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(HttpError::BadRequestLine(format!(
                "method {method:?} is not an uppercase token"
            )));
        }
        if !target.starts_with('/') {
            return Err(HttpError::BadRequestLine(format!(
                "target {target:?} must start with '/'"
            )));
        }
        self.version = match version {
            "HTTP/1.1" => HttpVersion::Http11,
            "HTTP/1.0" => HttpVersion::Http10,
            v if v.starts_with("HTTP/") => {
                return Err(HttpError::UnsupportedVersion(v.to_string()))
            }
            v => {
                return Err(HttpError::BadRequestLine(format!(
                    "version token {v:?} is not HTTP/x.y"
                )))
            }
        };
        self.method = method.to_string();
        self.target = target.to_string();
        Ok(())
    }

    fn parse_header_line(&mut self, line: &[u8]) -> Result<(), HttpError> {
        if self.headers.len() >= self.limits.max_headers {
            return Err(HttpError::TooManyHeaders {
                limit: self.limits.max_headers,
            });
        }
        let text = std::str::from_utf8(line)
            .map_err(|_| HttpError::BadHeader("not valid UTF-8".to_string()))?;
        if text.starts_with(' ') || text.starts_with('\t') {
            return Err(HttpError::BadHeader(
                "obs-fold continuation lines are not supported".to_string(),
            ));
        }
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::BadHeader(format!("no colon in {text:?}")));
        };
        let token = |b: u8| {
            b.is_ascii_alphanumeric()
                || matches!(
                    b,
                    b'!' | b'#'
                        | b'$'
                        | b'%'
                        | b'&'
                        | b'\''
                        | b'*'
                        | b'+'
                        | b'-'
                        | b'.'
                        | b'^'
                        | b'_'
                        | b'`'
                        | b'|'
                        | b'~'
                )
        };
        if name.is_empty() || !name.bytes().all(token) {
            return Err(HttpError::BadHeader(format!(
                "name {name:?} is not a token"
            )));
        }
        self.headers
            .push((name.to_ascii_lowercase(), value.trim().to_string()));
        Ok(())
    }

    /// End of the header block: decide body framing.
    fn finish_headers(&mut self) -> Result<bool, HttpError> {
        if self.headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        let mut lengths = self.headers.iter().filter(|(n, _)| n == "content-length");
        let remaining = match lengths.next() {
            None => 0,
            Some((_, first)) => {
                if lengths.any(|(_, v)| v != first) {
                    return Err(HttpError::BadContentLength(
                        "repeated with disagreeing values".to_string(),
                    ));
                }
                first.parse::<usize>().map_err(|_| {
                    HttpError::BadContentLength(format!("{first:?} is not a number"))
                })?
            }
        };
        if remaining > self.limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge {
                limit: self.limits.max_body_bytes,
            });
        }
        if remaining == 0 {
            return Ok(true);
        }
        self.body.reserve(remaining);
        self.state = State::Body { remaining };
        Ok(false)
    }

    /// Extracts the completed request and resets for the next one.
    fn take_request(&mut self) -> Request {
        let request = Request {
            method: std::mem::take(&mut self.method),
            target: std::mem::take(&mut self.target),
            version: self.version,
            headers: std::mem::take(&mut self.headers),
            body: std::mem::take(&mut self.body),
        };
        self.state = State::RequestLine;
        self.header_bytes = 0;
        self.line.clear();
        request
    }
}

/// Serialises one response (status line, `content-type`,
/// `content-length`, `connection`) followed by `body` into `out`.
/// The only framing the parser on the other side needs is
/// `content-length`, which this always writes.
pub fn write_response(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) {
    use std::io::Write;
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // Writing into a Vec<u8> cannot fail.
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    );
    out.extend_from_slice(body);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(input: &[u8]) -> Result<(usize, Option<Request>), HttpError> {
        RequestParser::new(HttpLimits::default()).feed(input)
    }

    #[test]
    fn parses_a_get_without_body() {
        let (consumed, req) = parse_all(b"GET /metrics HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        let req = req.unwrap();
        assert_eq!(consumed, b"GET /metrics HTTP/1.1\r\nhost: x\r\n\r\n".len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/metrics");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_a_post_with_body_and_keeps_pipelined_bytes() {
        let wire = b"POST /p HTTP/1.1\r\ncontent-length: 3\r\n\r\nabcGET /next";
        let mut parser = RequestParser::new(HttpLimits::default());
        let (consumed, req) = parser.feed(wire).unwrap();
        let req = req.unwrap();
        assert_eq!(req.body, b"abc");
        assert_eq!(&wire[consumed..], b"GET /next");
        assert!(parser.is_idle());
    }

    #[test]
    fn byte_at_a_time_matches_whole_buffer() {
        let wire = b"POST /v1/models/m/predict HTTP/1.1\r\nx-tenant: t0\r\ncontent-length: 4\r\n\r\n\x01\x02\x03\x04";
        let whole = parse_all(wire).unwrap().1.unwrap();
        let mut parser = RequestParser::new(HttpLimits::default());
        let mut bytewise = None;
        for (i, b) in wire.iter().enumerate() {
            let (used, done) = parser.feed(std::slice::from_ref(b)).unwrap();
            assert_eq!(used, 1);
            if let Some(r) = done {
                assert_eq!(i, wire.len() - 1, "completed early");
                bytewise = Some(r);
            }
        }
        assert_eq!(bytewise.unwrap(), whole);
    }

    #[test]
    fn leading_blank_lines_are_skipped() {
        let (_, req) = parse_all(b"\r\n\r\nGET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.unwrap().method, "GET");
    }

    #[test]
    fn http10_defaults_to_close() {
        let (_, req) = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.unwrap().keep_alive());
        let (_, req) = parse_all(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.unwrap().keep_alive());
        let (_, req) = parse_all(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(!req.unwrap().keep_alive());
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for wire in [
            &b"GET/ HTTP/1.1\r\n\r\n"[..],
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET / FTP/1.1\r\n\r\n",
        ] {
            let err = parse_all(wire).unwrap_err();
            assert_eq!(err.status().0, 400, "{err} for {wire:?}");
        }
        let err = parse_all(b"GET / HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(err.status().0, 505);
    }

    #[test]
    fn oversized_pieces_get_their_own_statuses() {
        let limits = HttpLimits {
            max_request_line: 16,
            max_header_bytes: 32,
            max_headers: 2,
            max_body_bytes: 8,
        };
        let mut p = RequestParser::new(limits);
        let err = p
            .feed(b"GET /aaaaaaaaaaaaaaaaaaaaaa HTTP/1.1\r\n\r\n")
            .unwrap_err();
        assert_eq!(err.status().0, 414);

        let mut p = RequestParser::new(limits);
        let err = p
            .feed(b"GET / HTTP/1.1\r\nh: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n")
            .unwrap_err();
        assert_eq!(err, HttpError::HeaderTooLarge { limit: 32 });
        assert_eq!(err.status().0, 431);

        let mut p = RequestParser::new(limits);
        let err = p
            .feed(b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n")
            .unwrap_err();
        assert_eq!(err.status().0, 431);

        let mut p = RequestParser::new(limits);
        let err = p
            .feed(b"POST / HTTP/1.1\r\ncontent-length: 9\r\n\r\n")
            .unwrap_err();
        assert_eq!(err, HttpError::BodyTooLarge { limit: 8 });
        assert_eq!(err.status().0, 413);
    }

    #[test]
    fn truncated_body_stays_incomplete() {
        let mut parser = RequestParser::new(HttpLimits::default());
        let (consumed, done) = parser
            .feed(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
            .unwrap();
        assert_eq!(
            consumed,
            b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc".len()
        );
        assert!(done.is_none());
        assert!(!parser.is_idle());
        let (_, done) = parser.feed(b"defghij").unwrap();
        assert_eq!(done.unwrap().body, b"abcdefghij");
    }

    #[test]
    fn transfer_encoding_is_refused() {
        let err = parse_all(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::UnsupportedTransferEncoding);
        assert_eq!(err.status().0, 501);
    }

    #[test]
    fn content_length_disagreement_is_refused() {
        let err = parse_all(b"POST / HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 4\r\n\r\n")
            .unwrap_err();
        assert!(matches!(err, HttpError::BadContentLength(_)));
        let (_, req) =
            parse_all(b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nok")
                .unwrap();
        assert_eq!(req.unwrap().body, b"ok");
    }

    #[test]
    fn poisoned_parser_keeps_returning_the_error() {
        let mut parser = RequestParser::new(HttpLimits::default());
        let err = parser.feed(b"BROKEN\r\n").unwrap_err();
        assert_eq!(parser.feed(b"GET / HTTP/1.1\r\n\r\n").unwrap_err(), err);
    }

    #[test]
    fn response_writer_frames_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "text/plain", b"hi", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }
}
