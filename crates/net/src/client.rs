//! A small blocking HTTP/1.1 client for tests and benchmarks.
//!
//! One [`HttpClient`] owns one keep-alive connection; [`request`] writes
//! a request and blocks until the full `content-length`-framed response
//! arrives. Bytes read past the current response (server pipelining never
//! happens here, but short reads split anywhere) carry over to the next
//! call. This is the load-generation side of `serve_bench`'s socket mode
//! and of the socket smoke test — deliberately simple, not a general
//! client.
//!
//! The connection carries **both** a read and a write deadline (a
//! stalled server can block a writer too, once the socket send buffer
//! fills), and an expired deadline surfaces as the typed
//! [`ClientError::Timeout`] rather than a bare `io::Error` the caller
//! has to kind-match.
//!
//! [`request`]: HttpClient::request

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Typed client failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// A socket deadline expired. `during` names the phase ("connect",
    /// "write request", "read response") and `deadline` is the limit
    /// that was exceeded.
    Timeout {
        /// What the client was doing when the deadline hit.
        during: &'static str,
        /// The configured deadline.
        deadline: Duration,
    },
    /// Any other socket-level failure (refused, reset, EOF mid-response).
    Io(io::Error),
    /// The server answered, but not with parseable HTTP/1.1.
    Malformed(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout { during, deadline } => {
                write!(f, "timed out after {deadline:?} while {during}")
            }
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Malformed(detail) => write!(f, "malformed response: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl ClientError {
    /// Whether this failure was a deadline expiry.
    pub fn is_timeout(&self) -> bool {
        matches!(self, Self::Timeout { .. })
    }

    /// Classifies a raw socket error: deadline expiries (`WouldBlock` on
    /// Unix, `TimedOut` elsewhere) become [`ClientError::Timeout`].
    fn from_io(e: io::Error, during: &'static str, deadline: Duration) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                Self::Timeout { during, deadline }
            }
            _ => Self::Io(e),
        }
    }
}

/// Client result alias.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The `content-length`-framed body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A blocking keep-alive connection to an [`NetServer`](crate::NetServer).
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    timeout: Duration,
    /// Bytes read past the previous response.
    carry: Vec<u8>,
}

impl HttpClient {
    /// Connects (blocking) with `TCP_NODELAY` and `timeout` as both the
    /// read and the write deadline, so a wedged server fails a test with
    /// a typed [`ClientError::Timeout`] instead of hanging it.
    ///
    /// # Errors
    ///
    /// Connect/configuration failures, classified ([`ClientError`]).
    pub fn connect(addr: SocketAddr, timeout: Duration) -> ClientResult<Self> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ClientError::from_io(e, "connecting", timeout))?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(ClientError::Io)?;
        Ok(Self {
            stream,
            timeout,
            carry: Vec::new(),
        })
    }

    /// `GET target` with no extra headers.
    ///
    /// # Errors
    ///
    /// Same contract as [`HttpClient::request`].
    pub fn get(&mut self, target: &str) -> ClientResult<ClientResponse> {
        self.request("GET", target, &[], &[])
    }

    /// `POST target` with the given extra headers and body.
    ///
    /// # Errors
    ///
    /// Same contract as [`HttpClient::request`].
    pub fn post(
        &mut self,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> ClientResult<ClientResponse> {
        self.request("POST", target, headers, body)
    }

    /// Writes one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when either socket deadline expires,
    /// [`ClientError::Malformed`] for an unparseable response,
    /// [`ClientError::Io`] for everything else (including a server that
    /// closes mid-response).
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> ClientResult<ClientResponse> {
        let mut wire = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
        for (name, value) in headers {
            wire.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        wire.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
        wire.extend_from_slice(body);
        self.stream
            .write_all(&wire)
            .map_err(|e| ClientError::from_io(e, "writing request", self.timeout))?;
        self.read_response()
    }

    fn read_more(&mut self) -> ClientResult<()> {
        let mut chunk = [0u8; 4096];
        let n = self
            .stream
            .read(&mut chunk)
            .map_err(|e| ClientError::from_io(e, "reading response", self.timeout))?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            )));
        }
        self.carry.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    fn read_response(&mut self) -> ClientResult<ClientResponse> {
        // Header block: everything up to the first CRLFCRLF.
        let header_end = loop {
            if let Some(pos) = find_double_crlf(&self.carry) {
                break pos;
            }
            self.read_more()?;
        };
        let head = String::from_utf8(self.carry[..header_end].to_vec())
            .map_err(|_| bad("response head is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| bad("empty response head"))?;
        let mut parts = status_line.splitn(3, ' ');
        let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
            return Err(bad("malformed status line"));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(bad("not an HTTP/1.x response"));
        }
        let status: u16 = code.parse().map_err(|_| bad("non-numeric status code"))?;
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad("header without colon"))?;
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .ok_or_else(|| bad("response without content-length"))?
            .1
            .parse()
            .map_err(|_| bad("non-numeric content-length"))?;
        let body_start = header_end + 4;
        while self.carry.len() < body_start + length {
            self.read_more()?;
        }
        let body = self.carry[body_start..body_start + length].to_vec();
        self.carry.drain(..body_start + length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

fn bad(detail: &str) -> ClientError {
    ClientError::Malformed(detail.to_string())
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn stalled_server_surfaces_a_typed_timeout() {
        // A listener that accepts (kernel backlog) but never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = HttpClient::connect(addr, Duration::from_millis(60)).unwrap();
        let err = client.get("/stalled").unwrap_err();
        assert!(err.is_timeout(), "{err}");
        assert!(err.to_string().contains("reading response"), "{err}");
        drop(listener);
    }

    #[test]
    fn both_deadlines_are_installed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = HttpClient::connect(addr, Duration::from_millis(250)).unwrap();
        // The kernel may round the deadline to its timer granularity, so
        // assert presence and ballpark rather than the exact value.
        let near = |d: Option<Duration>| {
            let d = d.expect("deadline installed");
            d >= Duration::from_millis(200) && d <= Duration::from_millis(300)
        };
        assert!(near(client.stream.read_timeout().unwrap()));
        assert!(near(client.stream.write_timeout().unwrap()));
    }
}
