//! A small blocking HTTP/1.1 client for tests and benchmarks.
//!
//! One [`HttpClient`] owns one keep-alive connection; [`request`] writes
//! a request and blocks until the full `content-length`-framed response
//! arrives. Bytes read past the current response (server pipelining never
//! happens here, but short reads split anywhere) carry over to the next
//! call. This is the load-generation side of `serve_bench`'s socket mode
//! and of the socket smoke test — deliberately simple, not a general
//! client.
//!
//! [`request`]: HttpClient::request

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The `content-length`-framed body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A blocking keep-alive connection to an [`NetServer`](crate::NetServer).
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the previous response.
    carry: Vec<u8>,
}

impl HttpClient {
    /// Connects (blocking) with `TCP_NODELAY` and a read timeout, so a
    /// wedged server fails a test instead of hanging it.
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration I/O errors.
    pub fn connect(addr: SocketAddr, read_timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Self {
            stream,
            carry: Vec::new(),
        })
    }

    /// `GET target` with no extra headers.
    ///
    /// # Errors
    ///
    /// Same contract as [`HttpClient::request`].
    pub fn get(&mut self, target: &str) -> io::Result<ClientResponse> {
        self.request("GET", target, &[], &[])
    }

    /// `POST target` with the given extra headers and body.
    ///
    /// # Errors
    ///
    /// Same contract as [`HttpClient::request`].
    pub fn post(
        &mut self,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        self.request("POST", target, headers, body)
    }

    /// Writes one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket; `InvalidData` for a malformed response;
    /// `UnexpectedEof` / `WouldBlock`-as-timeout when the server closes or
    /// stalls mid-response.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut wire = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
        for (name, value) in headers {
            wire.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        wire.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
        wire.extend_from_slice(body);
        self.stream.write_all(&wire)?;
        self.read_response()
    }

    fn read_more(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        self.carry.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        // Header block: everything up to the first CRLFCRLF.
        let header_end = loop {
            if let Some(pos) = find_double_crlf(&self.carry) {
                break pos;
            }
            self.read_more()?;
        };
        let head = String::from_utf8(self.carry[..header_end].to_vec())
            .map_err(|_| bad("response head is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| bad("empty response head"))?;
        let mut parts = status_line.splitn(3, ' ');
        let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
            return Err(bad("malformed status line"));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(bad("not an HTTP/1.x response"));
        }
        let status: u16 = code.parse().map_err(|_| bad("non-numeric status code"))?;
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad("header without colon"))?;
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .ok_or_else(|| bad("response without content-length"))?
            .1
            .parse()
            .map_err(|_| bad("non-numeric content-length"))?;
        let body_start = header_end + 4;
        while self.carry.len() < body_start + length {
            self.read_more()?;
        }
        let body = self.carry[body_start..body_start + length].to_vec();
        self.carry.drain(..body_start + length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

fn bad(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.to_string())
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}
