//! The network front end: a nonblocking TCP listener plus one poll
//! thread driving every connection.
//!
//! No epoll, no `unsafe`, no dependencies: the listener and every
//! accepted stream are `set_nonblocking(true)`, and the single
//! `alf-net-poll` thread loops accept → tick-every-connection → (idle)
//! sleep ~300 µs. Each [`Connection`](crate::conn::Connection) tick makes
//! whatever progress its socket allows; ticks never block, so a stalled
//! peer cannot wedge the loop, and the replica workers inside each
//! [`alf_serve::Server`] do the actual inference on their own threads —
//! the poll thread only shuttles bytes and polls
//! [`Pending::try_wait`](alf_serve::Pending::try_wait).

use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use alf_obs::metrics::{Counter, HistogramSpec, MetricsRegistry};

use crate::conn::{Connection, NetCounters, Tick};
use crate::http::HttpLimits;
use crate::quota::{QuotaConfig, QuotaState};
use crate::router::{ModelSpec, Router};
use crate::{NetError, Result};

/// Front-end configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Listen address, e.g. `127.0.0.1:8080` (`:0` for an ephemeral
    /// port — read the result from [`NetServer::addr`]).
    pub addr: String,
    /// HTTP parser size bounds.
    pub limits: HttpLimits,
    /// Per-tenant admission quotas.
    pub quota: QuotaConfig,
    /// Most concurrently open connections; accepts beyond this are
    /// answered `503` and closed immediately.
    pub max_connections: usize,
    /// Worker budget shared by all models: `Some(n)` forces `n`,
    /// otherwise `ALF_NET_THREADS`, otherwise the host parallelism
    /// (see `alf_obs::runtime::resolve_threads`).
    pub threads: Option<usize>,
}

impl NetConfig {
    /// Defaults: the given address, default limits, unlimited quota,
    /// 256 connections, auto worker budget.
    pub fn new(addr: &str) -> Self {
        Self {
            addr: addr.to_string(),
            limits: HttpLimits::default(),
            quota: QuotaConfig::unlimited(),
            max_connections: 256,
            threads: None,
        }
    }
}

/// How long the poll loop sleeps when no connection made progress.
const IDLE_SLEEP: Duration = Duration::from_micros(300);

/// A running front end: listener, poll thread, and the model servers
/// behind [`Router`]. Dropping the server shuts it down.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    router: Arc<Router>,
    stop: Arc<AtomicBool>,
    poll: Mutex<Option<JoinHandle<()>>>,
}

impl NetServer {
    /// Binds `cfg.addr`, starts the per-model servers, and spawns the
    /// poll thread. Serving begins before this returns.
    ///
    /// # Errors
    ///
    /// [`NetError::Bind`] when the address cannot be bound,
    /// [`NetError::BadConfig`] for a zero connection bound or a bad model
    /// list, [`NetError::Serve`] when a model server rejects its
    /// configuration.
    pub fn start(specs: Vec<ModelSpec>, cfg: NetConfig, registry: MetricsRegistry) -> Result<Self> {
        if cfg.max_connections == 0 {
            return Err(NetError::BadConfig("max_connections must be >= 1".into()));
        }
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| NetError::Bind {
            addr: cfg.addr.clone(),
            detail: e.to_string(),
        })?;
        listener.set_nonblocking(true).map_err(|e| NetError::Bind {
            addr: cfg.addr.clone(),
            detail: format!("set_nonblocking: {e}"),
        })?;
        let addr = listener.local_addr().map_err(|e| NetError::Bind {
            addr: cfg.addr.clone(),
            detail: format!("local_addr: {e}"),
        })?;
        let router = Arc::new(Router::start(specs, registry.clone(), cfg.threads)?);
        let counters = NetCounters {
            responses: registry.counter("net.responses"),
            parse_errors: registry.counter("net.parse_errors"),
            request_ns: registry.histogram("net.request_ns", HistogramSpec::latency_ns()),
        };
        let accepted = registry.counter("net.accepted");
        let closed = registry.counter("net.closed");
        let conn_limit_rejected = registry.counter("net.conn_limit_rejected");
        let stop = Arc::new(AtomicBool::new(false));
        let poll = {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("alf-net-poll".to_string())
                .spawn(move || {
                    poll_loop(
                        listener,
                        router,
                        cfg,
                        stop,
                        counters,
                        accepted,
                        closed,
                        conn_limit_rejected,
                    )
                })
                .map_err(|e| NetError::BadConfig(format!("spawn poll thread: {e}")))?
        };
        Ok(Self {
            addr,
            router,
            stop,
            poll: Mutex::new(Some(poll)),
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The dispatch table (model names, per-model servers, registry).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Stops accepting, closes every connection, then drains the model
    /// servers. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.poll.lock().expect("poll handle poisoned").take() {
            let _ = handle.join();
        }
        self.router.shutdown();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn poll_loop(
    listener: TcpListener,
    router: Arc<Router>,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    counters: NetCounters,
    accepted: Counter,
    closed: Counter,
    conn_limit_rejected: Counter,
) {
    let mut quota = QuotaState::new(cfg.quota.clone(), Instant::now());
    let mut conns: Vec<Connection> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let mut progressed = false;

        // Accept everything currently pending.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    progressed = true;
                    if conns.len() >= cfg.max_connections {
                        conn_limit_rejected.inc();
                        // Best effort: tell the peer why before dropping.
                        let mut stream = stream;
                        let _ = stream.write_all(
                            b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 21\r\nconnection: close\r\n\r\nconnection limit hit\n",
                        );
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    accepted.inc();
                    conns.push(Connection::new(stream, cfg.limits));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept failures (e.g. the peer reset before we
                // got to it) should not kill the loop.
                Err(_) => break,
            }
        }

        // Drive every connection one tick.
        let mut i = 0;
        while i < conns.len() {
            match conns[i].tick(&router, &mut quota, &counters) {
                Tick::Open { progressed: p } => {
                    progressed |= p;
                    i += 1;
                }
                Tick::Closed => {
                    closed.inc();
                    conns.swap_remove(i);
                }
            }
        }

        if !progressed {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
    // Poll thread exit closes the listener and every connection.
    closed.add(conns.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use alf_core::models::plain20;
    use alf_serve::ServeConfig;

    const TIMEOUT: Duration = Duration::from_secs(30);

    fn spec(name: &str) -> ModelSpec {
        ModelSpec {
            name: name.to_string(),
            model: plain20(4, 4).unwrap(),
            serve: ServeConfig {
                max_wait: Duration::from_millis(1),
                ..ServeConfig::new(3, 12, 12)
            },
        }
    }

    fn image_body() -> Vec<u8> {
        (0..3 * 12 * 12)
            .flat_map(|i| ((i % 7) as f32 * 0.2 - 0.5).to_le_bytes())
            .collect()
    }

    fn start(n_models: usize) -> NetServer {
        let specs = (0..n_models).map(|i| spec(&format!("m{i}"))).collect();
        NetServer::start(specs, NetConfig::new("127.0.0.1:0"), MetricsRegistry::new()).unwrap()
    }

    #[test]
    fn bad_addresses_fail_typed() {
        let err = NetServer::start(
            vec![spec("m")],
            NetConfig::new("definitely-not-an-addr"),
            MetricsRegistry::new(),
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Bind { .. }), "{err}");
    }

    #[test]
    fn healthz_and_models_over_a_real_socket() {
        let server = start(2);
        let mut client = HttpClient::connect(server.addr(), TIMEOUT).unwrap();
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
        // Keep-alive: same connection answers again.
        let resp = client.get("/v1/models").unwrap();
        assert_eq!(resp.status, 200);
        let text = resp.text();
        assert!(text.contains("\"m0\"") && text.contains("\"m1\""), "{text}");
        server.shutdown();
    }

    #[test]
    fn predict_roundtrip_and_metrics_over_the_wire() {
        let server = start(1);
        let mut client = HttpClient::connect(server.addr(), TIMEOUT).unwrap();
        let resp = client
            .post("/v1/models/m0/predict", &[("x-tenant", "t")], &image_body())
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let text = resp.text();
        assert!(text.contains("\"model\":\"m0\""), "{text}");
        assert!(text.contains("\"class\":"), "{text}");

        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let text = metrics.text();
        assert!(text.contains("counter serve.m0.completed 1"), "{text}");
        assert!(text.contains("counter net.accepted 1"), "{text}");
        assert!(text.contains("histogram net.request_ns total 1"), "{text}");
        server.shutdown();
    }

    #[test]
    fn parse_errors_answer_typed_and_close() {
        use std::io::{Read, Write};
        let server = start(1);
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        raw.set_read_timeout(Some(TIMEOUT)).unwrap();
        raw.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut response = String::new();
        raw.read_to_string(&mut response).unwrap(); // EOF ⇒ server closed
        assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
        assert!(response.contains("connection: close"), "{response}");
        server.shutdown();
        let snap = server.router().registry().snapshot();
        assert_eq!(snap.counter("net.parse_errors"), Some(1));
    }

    #[test]
    fn connection_limit_is_a_typed_503() {
        use std::io::Read;
        let specs = vec![spec("m")];
        let cfg = NetConfig {
            max_connections: 1,
            ..NetConfig::new("127.0.0.1:0")
        };
        let server = NetServer::start(specs, cfg, MetricsRegistry::new()).unwrap();
        let mut first = HttpClient::connect(server.addr(), TIMEOUT).unwrap();
        assert_eq!(first.get("/healthz").unwrap().status, 200);
        // The first connection is parked open, so the second must be shed.
        let mut second = std::net::TcpStream::connect(server.addr()).unwrap();
        second.set_read_timeout(Some(TIMEOUT)).unwrap();
        let mut response = String::new();
        second.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 503 "), "{response}");
        drop(second);
        assert_eq!(first.get("/healthz").unwrap().status, 200);
        server.shutdown();
        let snap = server.router().registry().snapshot();
        assert_eq!(snap.counter("net.conn_limit_rejected"), Some(1));
        assert_eq!(snap.counter("net.accepted"), Some(1));
    }

    #[test]
    fn shutdown_is_idempotent() {
        let server = start(1);
        server.shutdown();
        server.shutdown();
        assert!(HttpClient::connect(server.addr(), TIMEOUT).is_err());
    }
}
