//! Multi-model routing: one [`alf_serve::Server`] per checkpoint, all
//! sharing one worker budget and one [`MetricsRegistry`], with decoded
//! HTTP requests dispatched by path.
//!
//! Endpoints:
//!
//! * `POST /v1/models/<name>/predict` — body is the raw little-endian
//!   `f32` image (`C*H*W*4` bytes); optional `x-tenant` (quota identity,
//!   default `anon`) and `x-deadline-ms` (request deadline) headers.
//!   Answers `200` with `{"model","class","logits"}`.
//! * `POST /v1/models/<name>/checkpoint` — hot-swaps the model's weights
//!   to the checkpoint blob in the body (`422` on a bad blob).
//! * `GET /v1/models` — the served model list with geometry.
//! * `GET /metrics` — plain-text exposition of the shared registry.
//! * `GET /healthz` — liveness probe.

use std::time::{Duration, Instant};

use alf_obs::json::JsonWriter;
use alf_obs::metrics::{Counter, MetricsRegistry};
use alf_obs::runtime::resolve_threads;
use alf_serve::{Pending, ServeConfig, ServeError, Server};
use alf_tensor::Tensor;

use crate::http::Request;
use crate::quota::QuotaState;
use crate::{NetError, Result};

/// One model to serve: a name (its URL segment and metric prefix), the
/// model itself, and its serving configuration. [`Router::start`]
/// overwrites [`ServeConfig::name`] with `name` and
/// [`ServeConfig::workers`] with this router's per-model share of the
/// worker budget. Numeric precision rides in the serving configuration:
/// set [`ServeConfig::precision`] to `Precision::Int8(calib)` to serve
/// this model through the fused int8 engine.
#[derive(Debug)]
pub struct ModelSpec {
    /// URL segment (`/v1/models/<name>/…`) and metric prefix
    /// (`serve.<name>.*`). Restricted to `[A-Za-z0-9_.-]`, nonempty.
    pub name: String,
    /// The model to serve.
    pub model: alf_core::model::CnnModel,
    /// Serving configuration (queue depth, batching, geometry, …).
    pub serve: ServeConfig,
}

/// A finished HTTP answer, ready for [`write_response`].
///
/// [`write_response`]: crate::http::write_response
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `content-type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    fn json(status: u16, reason: &'static str, body: String) -> Self {
        Self {
            status,
            reason,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    fn error(status: u16, reason: &'static str, code: &str, detail: &str) -> Self {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("error", code);
        w.field_str("detail", detail);
        w.end_object();
        Self::json(status, reason, w.finish())
    }

    fn text(status: u16, reason: &'static str, body: String) -> Self {
        Self {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }
}

/// What routing one request produced: an answer ready to serialise, or an
/// in-flight prediction the connection must poll to completion.
#[derive(Debug)]
pub enum Outcome {
    /// The request was answered without touching a serving queue (or was
    /// rejected before admission).
    Immediate(Response),
    /// The request was admitted to a model's queue; poll
    /// [`Pending::try_wait`] and finish with [`Router::render_prediction`]
    /// / [`Router::render_serve_error`].
    InFlight {
        /// The admitted request's completion handle.
        pending: Pending,
        /// Index into the router's model table (for the response body).
        model: usize,
        /// Admission time, for the end-to-end `net.request_ns` histogram.
        started: Instant,
    },
}

struct Entry {
    name: String,
    server: Server,
}

/// The dispatch table: per-model servers, the shared registry, and the
/// front-end counters.
pub struct Router {
    models: Vec<Entry>,
    registry: MetricsRegistry,
    requests: Counter,
    shed_quota: Counter,
    not_found: Counter,
}

impl Router {
    /// Starts one [`Server`] per spec, splitting one worker budget evenly:
    /// `budget = resolve_threads(threads, "ALF_NET_THREADS")`, each model
    /// getting `max(1, budget / specs.len())` workers. Every server
    /// registers its instruments in `registry` under `serve.<name>.*`.
    ///
    /// # Errors
    ///
    /// [`NetError::BadConfig`] for an empty spec list, a duplicate or
    /// empty model name; [`NetError::Serve`] when a server rejects its
    /// configuration.
    pub fn start(
        specs: Vec<ModelSpec>,
        registry: MetricsRegistry,
        threads: Option<usize>,
    ) -> Result<Self> {
        if specs.is_empty() {
            return Err(NetError::BadConfig("at least one model is required".into()));
        }
        for (i, spec) in specs.iter().enumerate() {
            if spec.name.is_empty() {
                return Err(NetError::BadConfig("model names must be nonempty".into()));
            }
            if specs[..i].iter().any(|s| s.name == spec.name) {
                return Err(NetError::BadConfig(format!(
                    "duplicate model name '{}'",
                    spec.name
                )));
            }
        }
        let budget = resolve_threads(threads, "ALF_NET_THREADS");
        let workers = (budget / specs.len()).max(1);
        let mut models = Vec::with_capacity(specs.len());
        for spec in specs {
            let cfg = ServeConfig {
                name: spec.name.clone(),
                workers,
                ..spec.serve
            };
            let server = Server::start_with_registry(&spec.model, cfg, registry.clone())?;
            models.push(Entry {
                name: spec.name,
                server,
            });
        }
        Ok(Self {
            requests: registry.counter("net.requests"),
            shed_quota: registry.counter("net.shed_quota"),
            not_found: registry.counter("net.not_found"),
            registry,
            models,
        })
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Names of the served models, in table order.
    pub fn model_names(&self) -> Vec<&str> {
        self.models.iter().map(|e| e.name.as_str()).collect()
    }

    /// The server for `name`, if routed.
    pub fn server(&self, name: &str) -> Option<&Server> {
        self.models
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.server)
    }

    /// Drains every model's server. Idempotent.
    pub fn shutdown(&self) {
        for entry in &self.models {
            entry.server.shutdown();
        }
    }

    /// Dispatches one decoded request. Quota admission (for predict
    /// requests) charges `quota`, which the single poll thread owns.
    pub(crate) fn route(&self, req: &Request, quota: &mut QuotaState) -> Outcome {
        self.requests.inc();
        match (req.method.as_str(), req.path()) {
            ("GET", "/healthz") => Outcome::Immediate(Response::text(200, "OK", "ok\n".into())),
            ("GET", "/metrics") => {
                Outcome::Immediate(Response::text(200, "OK", self.metrics_text()))
            }
            ("GET", "/v1/models") => Outcome::Immediate(self.list_models()),
            (method, path) => {
                let Some(rest) = path.strip_prefix("/v1/models/") else {
                    return self.unrouted();
                };
                match (method, rest.split_once('/')) {
                    ("POST", Some((name, "predict"))) => self.predict(name, req, quota),
                    ("POST", Some((name, "checkpoint"))) => self.swap(name, req),
                    _ => self.unrouted(),
                }
            }
        }
    }

    fn unrouted(&self) -> Outcome {
        self.not_found.inc();
        Outcome::Immediate(Response::error(
            404,
            "Not Found",
            "not_found",
            "no such endpoint",
        ))
    }

    fn model_index(&self, name: &str) -> Option<usize> {
        self.models.iter().position(|e| e.name == name)
    }

    fn predict(&self, name: &str, req: &Request, quota: &mut QuotaState) -> Outcome {
        let Some(index) = self.model_index(name) else {
            self.not_found.inc();
            return Outcome::Immediate(Response::error(
                404,
                "Not Found",
                "unknown_model",
                &format!("no model named '{name}'"),
            ));
        };
        let tenant = req.header("x-tenant").unwrap_or("anon");
        let (charged, admitted) = quota.admit(tenant, Instant::now());
        let label = sanitize_tenant(charged);
        if !admitted {
            self.shed_quota.inc();
            self.registry
                .counter(&format!("net.tenant.{label}.shed"))
                .inc();
            return Outcome::Immediate(Response::error(
                429,
                "Too Many Requests",
                "quota_exceeded",
                &format!("tenant '{tenant}' is over its request quota"),
            ));
        }
        self.registry
            .counter(&format!("net.tenant.{label}.admitted"))
            .inc();
        let deadline = match req.header("x-deadline-ms") {
            None => None,
            Some(ms) => match ms.parse::<u64>() {
                Ok(ms) => Some(Instant::now() + Duration::from_millis(ms)),
                Err(_) => {
                    return Outcome::Immediate(Response::error(
                        400,
                        "Bad Request",
                        "bad_deadline",
                        &format!("x-deadline-ms {ms:?} is not a non-negative integer"),
                    ))
                }
            },
        };
        let entry = &self.models[index];
        let cfg = entry.server.config();
        let dims = [cfg.channels, cfg.height, cfg.width];
        let want = dims[0] * dims[1] * dims[2] * 4;
        if req.body.len() != want {
            return Outcome::Immediate(Response::error(
                400,
                "Bad Request",
                "bad_body",
                &format!(
                    "body must be {want} bytes of little-endian f32 ({}x{}x{}), got {}",
                    dims[0],
                    dims[1],
                    dims[2],
                    req.body.len()
                ),
            ));
        }
        let data: Vec<f32> = req
            .body
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        let image = Tensor::from_vec(data, &dims).expect("length checked above");
        let started = Instant::now();
        match entry.server.submit_with_deadline(image, deadline) {
            Ok(pending) => Outcome::InFlight {
                pending,
                model: index,
                started,
            },
            Err(e) => Outcome::Immediate(self.render_serve_error(&e)),
        }
    }

    fn swap(&self, name: &str, req: &Request) -> Outcome {
        let Some(index) = self.model_index(name) else {
            self.not_found.inc();
            return Outcome::Immediate(Response::error(
                404,
                "Not Found",
                "unknown_model",
                &format!("no model named '{name}'"),
            ));
        };
        let entry = &self.models[index];
        Outcome::Immediate(match entry.server.swap_checkpoint(&req.body) {
            Ok(()) => {
                let mut w = JsonWriter::new();
                w.begin_object();
                w.field_str("model", name);
                w.field_u64("swaps", entry.server.stats().swaps);
                w.end_object();
                Response::json(200, "OK", w.finish())
            }
            Err(e) => self.render_serve_error(&e),
        })
    }

    fn list_models(&self) -> Response {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("models");
        w.begin_array();
        for entry in &self.models {
            let cfg = entry.server.config();
            w.begin_object();
            w.field_str("name", &entry.name);
            w.field_u64s(
                "image_dims",
                [cfg.channels as u64, cfg.height as u64, cfg.width as u64],
            );
            w.field_u64("workers", cfg.workers as u64);
            w.field_u64("queue_depth", cfg.queue_depth as u64);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        Response::json(200, "OK", w.finish())
    }

    /// Renders a completed prediction for the model at `model` (an
    /// [`Outcome::InFlight`] index).
    pub fn render_prediction(&self, model: usize, prediction: &alf_serve::Prediction) -> Response {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("model", &self.models[model].name);
        w.field_u64("class", prediction.class as u64);
        w.field_f32s("logits", prediction.logits.data().iter().copied());
        w.end_object();
        Response::json(200, "OK", w.finish())
    }

    /// Maps a typed serving error onto its HTTP answer: `Overloaded` and
    /// `ShuttingDown` are `503` load-shed responses (distinct typed
    /// reasons), `Expired` is `504`, `BadRequest` `400`, `BadCheckpoint`
    /// `422`.
    pub fn render_serve_error(&self, e: &ServeError) -> Response {
        match e {
            ServeError::Overloaded { queue_depth } => Response::error(
                503,
                "Service Unavailable",
                "overloaded",
                &format!("queue is at its depth bound ({queue_depth})"),
            ),
            ServeError::ShuttingDown => Response::error(
                503,
                "Service Unavailable",
                "shutting_down",
                "server is draining",
            ),
            ServeError::Expired => Response::error(
                504,
                "Gateway Timeout",
                "deadline_expired",
                "request deadline passed while queued",
            ),
            ServeError::BadRequest(detail) => {
                Response::error(400, "Bad Request", "bad_request", detail)
            }
            ServeError::BadCheckpoint(detail) => {
                Response::error(422, "Unprocessable Content", "bad_checkpoint", detail)
            }
            other => Response::error(500, "Internal Server Error", "internal", &other.to_string()),
        }
    }

    /// Plain-text metrics exposition: one line per instrument, stable
    /// (name-sorted) order —
    /// `counter <name> <value>`, `gauge <name> <value>`,
    /// `histogram <name> total <n> p50 <x> p95 <y> p99 <z>`.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write;
        let snap = self.registry.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "histogram {name} total {} p50 {} p95 {} p99 {}",
                h.total, h.p50, h.p95, h.p99
            );
        }
        out
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("models", &self.model_names())
            .finish_non_exhaustive()
    }
}

/// Tenant labels become metric-name segments; anything outside the
/// registry-safe charset collapses to `_` so a hostile tenant string
/// cannot fabricate arbitrary metric names.
fn sanitize_tenant(tenant: &str) -> String {
    tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HttpLimits, RequestParser};
    use crate::quota::QuotaConfig;
    use alf_core::models::plain20;
    use std::time::Duration;

    fn spec(name: &str) -> ModelSpec {
        ModelSpec {
            name: name.to_string(),
            model: plain20(4, 4).unwrap(),
            serve: ServeConfig {
                max_wait: Duration::from_millis(1),
                ..ServeConfig::new(3, 12, 12)
            },
        }
    }

    fn parse(wire: &[u8]) -> Request {
        RequestParser::new(HttpLimits::default())
            .feed(wire)
            .unwrap()
            .1
            .unwrap()
    }

    fn image_body() -> Vec<u8> {
        (0..3 * 12 * 12)
            .flat_map(|i| ((i % 13) as f32 * 0.1).to_le_bytes())
            .collect()
    }

    fn predict_wire(model: &str, extra_headers: &str, body: &[u8]) -> Vec<u8> {
        let mut wire = format!(
            "POST /v1/models/{model}/predict HTTP/1.1\r\n{extra_headers}content-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(body);
        wire
    }

    #[test]
    fn rejects_empty_and_duplicate_specs() {
        let registry = MetricsRegistry::new();
        assert!(matches!(
            Router::start(Vec::new(), registry.clone(), Some(1)),
            Err(NetError::BadConfig(_))
        ));
        assert!(matches!(
            Router::start(vec![spec("m"), spec("m")], registry, Some(1)),
            Err(NetError::BadConfig(_))
        ));
    }

    #[test]
    fn routes_predict_to_the_named_model_and_404s_unknowns() {
        let registry = MetricsRegistry::new();
        let router = Router::start(vec![spec("a"), spec("b")], registry, Some(2)).unwrap();
        let mut quota = QuotaState::new(QuotaConfig::unlimited(), Instant::now());

        let req = parse(&predict_wire("b", "", &image_body()));
        match router.route(&req, &mut quota) {
            Outcome::InFlight { pending, model, .. } => {
                assert_eq!(model, 1);
                let prediction = pending.wait().unwrap();
                let resp = router.render_prediction(model, &prediction);
                assert_eq!(resp.status, 200);
                let text = String::from_utf8(resp.body).unwrap();
                assert!(text.contains("\"model\":\"b\""), "{text}");
                assert!(text.contains("\"logits\":["), "{text}");
            }
            other => panic!("expected InFlight, got {other:?}"),
        }

        let req = parse(&predict_wire("zzz", "", &image_body()));
        match router.route(&req, &mut quota) {
            Outcome::Immediate(resp) => assert_eq!(resp.status, 404),
            other => panic!("expected 404, got {other:?}"),
        }
        router.shutdown();
    }

    #[test]
    fn wrong_body_length_is_400_without_submission() {
        let registry = MetricsRegistry::new();
        let router = Router::start(vec![spec("m")], registry.clone(), Some(1)).unwrap();
        let mut quota = QuotaState::new(QuotaConfig::unlimited(), Instant::now());
        let req = parse(&predict_wire("m", "", b"abc"));
        match router.route(&req, &mut quota) {
            Outcome::Immediate(resp) => {
                assert_eq!(resp.status, 400);
                assert!(String::from_utf8(resp.body).unwrap().contains("bad_body"));
            }
            other => panic!("expected 400, got {other:?}"),
        }
        assert_eq!(registry.snapshot().counter("serve.m.submitted"), Some(0));
        router.shutdown();
    }

    #[test]
    fn over_quota_tenants_get_429_and_counters() {
        let registry = MetricsRegistry::new();
        let router = Router::start(vec![spec("m")], registry.clone(), Some(1)).unwrap();
        // 1-token burst, no refill to speak of: second request sheds.
        let mut quota = QuotaState::new(QuotaConfig::per_tenant(1e-9, 1.0), Instant::now());
        let wire = predict_wire("m", "x-tenant: t0\r\n", &image_body());
        let req = parse(&wire);
        let first = router.route(&req, &mut quota);
        assert!(matches!(first, Outcome::InFlight { .. }));
        match router.route(&req, &mut quota) {
            Outcome::Immediate(resp) => {
                assert_eq!(resp.status, 429);
                assert!(String::from_utf8(resp.body)
                    .unwrap()
                    .contains("quota_exceeded"));
            }
            other => panic!("expected 429, got {other:?}"),
        }
        if let Outcome::InFlight { pending, .. } = first {
            pending.wait().unwrap();
        }
        router.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("net.tenant.t0.admitted"), Some(1));
        assert_eq!(snap.counter("net.tenant.t0.shed"), Some(1));
        assert_eq!(snap.counter("net.shed_quota"), Some(1));
    }

    #[test]
    fn metrics_endpoint_exposes_registry_lines() {
        let registry = MetricsRegistry::new();
        let router = Router::start(vec![spec("m")], registry, Some(1)).unwrap();
        let mut quota = QuotaState::new(QuotaConfig::unlimited(), Instant::now());
        let req = parse(b"GET /metrics HTTP/1.1\r\n\r\n");
        match router.route(&req, &mut quota) {
            Outcome::Immediate(resp) => {
                assert_eq!(resp.status, 200);
                let text = String::from_utf8(resp.body).unwrap();
                assert!(text.contains("counter serve.m.submitted 0"), "{text}");
                assert!(text.contains("counter net.requests 1"), "{text}");
                assert!(
                    text.contains("histogram serve.m.latency_ns total 0"),
                    "{text}"
                );
            }
            other => panic!("expected 200, got {other:?}"),
        }
        router.shutdown();
    }

    #[test]
    fn checkpoint_swap_over_the_router_applies_and_rejects() {
        let registry = MetricsRegistry::new();
        let router = Router::start(vec![spec("m")], registry, Some(1)).unwrap();
        let mut quota = QuotaState::new(QuotaConfig::unlimited(), Instant::now());

        let blob = alf_core::checkpoint::save(&plain20(4, 4).unwrap());
        let mut wire = format!(
            "POST /v1/models/m/checkpoint HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            blob.len()
        )
        .into_bytes();
        wire.extend_from_slice(&blob);
        match router.route(&parse(&wire), &mut quota) {
            Outcome::Immediate(resp) => {
                assert_eq!(resp.status, 200);
                assert!(String::from_utf8(resp.body)
                    .unwrap()
                    .contains("\"swaps\":1"));
            }
            other => panic!("expected 200, got {other:?}"),
        }

        let garbage = b"POST /v1/models/m/checkpoint HTTP/1.1\r\ncontent-length: 3\r\n\r\nnop";
        match router.route(&parse(garbage), &mut quota) {
            Outcome::Immediate(resp) => {
                assert_eq!(resp.status, 422);
                assert!(String::from_utf8(resp.body)
                    .unwrap()
                    .contains("bad_checkpoint"));
            }
            other => panic!("expected 422, got {other:?}"),
        }
        router.shutdown();
    }

    #[test]
    fn tenant_labels_are_sanitised_for_metric_names() {
        assert_eq!(sanitize_tenant("team-a_1"), "team-a_1");
        assert_eq!(sanitize_tenant("a b.c\"d"), "a_b_c_d");
    }
}
