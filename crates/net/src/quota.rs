//! Per-tenant token-bucket admission: each tenant (the `x-tenant` request
//! header) gets a bucket refilled at a configured rate; a predict request
//! that finds the bucket empty is shed with `429` before it ever touches
//! the serving queue, so one noisy tenant cannot starve the others of
//! queue slots.
//!
//! Tenant cardinality is bounded: at most
//! [`QuotaConfig::max_tracked_tenants`] distinct tenants get their own
//! bucket (and their own `net.tenant.<t>.*` counters); arrivals beyond
//! that share one `other` bucket, so a tenant-name-spraying client cannot
//! grow server state without bound.

use std::time::Instant;

/// The shared bucket for tenants beyond the tracking bound.
pub(crate) const OVERFLOW_TENANT: &str = "other";

/// Token-bucket quota policy.
#[derive(Debug, Clone, PartialEq)]
pub struct QuotaConfig {
    /// Default refill rate, requests per second. `f64::INFINITY` (the
    /// default) admits everything.
    pub default_rate: f64,
    /// Default bucket capacity (burst size), requests.
    pub default_burst: f64,
    /// Per-tenant `(tenant, rate, burst)` overrides.
    pub overrides: Vec<(String, f64, f64)>,
    /// Most distinct tenants tracked with their own bucket and counters.
    pub max_tracked_tenants: usize,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        Self {
            default_rate: f64::INFINITY,
            default_burst: 1.0,
            overrides: Vec::new(),
            max_tracked_tenants: 64,
        }
    }
}

impl QuotaConfig {
    /// Admit everything (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Every tenant gets `rate` requests/s with `burst` capacity.
    pub fn per_tenant(rate: f64, burst: f64) -> Self {
        Self {
            default_rate: rate,
            default_burst: burst,
            ..Self::default()
        }
    }

    /// Adds a per-tenant override.
    #[must_use]
    pub fn with_override(mut self, tenant: &str, rate: f64, burst: f64) -> Self {
        self.overrides.push((tenant.to_string(), rate, burst));
        self
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
    rate: f64,
    burst: f64,
}

impl Bucket {
    fn new(rate: f64, burst: f64, now: Instant) -> Self {
        Self {
            tokens: burst,
            last: now,
            rate,
            burst,
        }
    }

    fn try_take(&mut self, now: Instant) -> bool {
        if self.rate.is_infinite() {
            return true;
        }
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Live bucket table; owned by the poll loop (single-threaded access).
#[derive(Debug)]
pub(crate) struct QuotaState {
    cfg: QuotaConfig,
    buckets: Vec<(String, Bucket)>,
}

impl QuotaState {
    pub(crate) fn new(cfg: QuotaConfig, now: Instant) -> Self {
        let buckets = cfg
            .overrides
            .iter()
            .map(|(t, rate, burst)| (t.clone(), Bucket::new(*rate, *burst, now)))
            .collect();
        Self { cfg, buckets }
    }

    /// Admits or sheds one request from `tenant`. Returns the tracked
    /// tenant label actually charged (the tenant itself, or
    /// [`OVERFLOW_TENANT`] past the tracking bound) and whether the
    /// request was admitted.
    pub(crate) fn admit<'s>(&'s mut self, tenant: &str, now: Instant) -> (&'s str, bool) {
        let index = match self.buckets.iter().position(|(t, _)| t == tenant) {
            Some(i) => i,
            None if self.buckets.len() < self.cfg.max_tracked_tenants => {
                self.buckets.push((
                    tenant.to_string(),
                    Bucket::new(self.cfg.default_rate, self.cfg.default_burst, now),
                ));
                self.buckets.len() - 1
            }
            None => match self.buckets.iter().position(|(t, _)| t == OVERFLOW_TENANT) {
                Some(i) => i,
                None => {
                    // The bound counts real tenants; the shared overflow
                    // bucket rides one slot past it.
                    self.buckets.push((
                        OVERFLOW_TENANT.to_string(),
                        Bucket::new(self.cfg.default_rate, self.cfg.default_burst, now),
                    ));
                    self.buckets.len() - 1
                }
            },
        };
        let (name, bucket) = &mut self.buckets[index];
        (name.as_str(), bucket.try_take(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_always_admits() {
        let now = Instant::now();
        let mut q = QuotaState::new(QuotaConfig::unlimited(), now);
        for _ in 0..1000 {
            assert!(q.admit("t", now).1);
        }
    }

    #[test]
    fn burst_then_refill() {
        let now = Instant::now();
        let mut q = QuotaState::new(QuotaConfig::per_tenant(10.0, 3.0), now);
        assert!(q.admit("t", now).1);
        assert!(q.admit("t", now).1);
        assert!(q.admit("t", now).1);
        assert!(!q.admit("t", now).1, "burst of 3 exhausted");
        // 10 tokens/s: 150 ms refills 1.5 tokens -> exactly one more.
        let later = now + Duration::from_millis(150);
        assert!(q.admit("t", later).1);
        assert!(!q.admit("t", later).1);
    }

    #[test]
    fn tenants_have_independent_buckets_and_overrides_apply() {
        let now = Instant::now();
        let cfg = QuotaConfig::per_tenant(1.0, 1.0).with_override("vip", 1.0, 3.0);
        let mut q = QuotaState::new(cfg, now);
        assert!(q.admit("a", now).1);
        assert!(!q.admit("a", now).1);
        assert!(q.admit("b", now).1, "tenant b has its own bucket");
        for _ in 0..3 {
            assert!(q.admit("vip", now).1);
        }
        assert!(!q.admit("vip", now).1);
    }

    #[test]
    fn tenants_beyond_the_bound_share_the_overflow_bucket() {
        let now = Instant::now();
        let cfg = QuotaConfig {
            default_rate: 1.0,
            default_burst: 1.0,
            overrides: Vec::new(),
            max_tracked_tenants: 2,
        };
        let mut q = QuotaState::new(cfg, now);
        assert_eq!(q.admit("a", now), ("a", true));
        assert_eq!(q.admit("b", now), ("b", true));
        // c and d both land in the shared overflow bucket.
        assert_eq!(q.admit("c", now), (OVERFLOW_TENANT, true));
        assert_eq!(q.admit("d", now), (OVERFLOW_TENANT, false));
    }
}
