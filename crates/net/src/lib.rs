//! `alf-net`: the network-facing, multi-tenant serving front end over
//! [`alf_serve`].
//!
//! The ALF pipeline compresses a CNN so it can be *deployed* cheaply;
//! this crate is where deployment meets the network. It is built the way
//! the rest of the workspace is built — no external dependencies, no
//! `unsafe` — from four layers:
//!
//! * [`http`] — an incremental HTTP/1.1 parser (byte-at-a-time safe,
//!   keep-alive + pipelining, every size bound enforced as bytes arrive,
//!   typed errors with HTTP statuses) and a response serialiser.
//! * [`Router`] — multi-model dispatch: one [`alf_serve::Server`] per
//!   checkpoint, sharing one worker budget (`ALF_NET_THREADS`) and one
//!   [`MetricsRegistry`](alf_obs::metrics::MetricsRegistry)
//!   (`serve.<model>.*` instruments per model), plus per-tenant
//!   token-bucket quotas ([`QuotaConfig`]) shedding with `429` before the
//!   queue and typed `503/504` mappings of
//!   [`ServeError`](alf_serve::ServeError) behind it.
//! * [`NetServer`] — a nonblocking TCP listener and one poll thread
//!   driving every connection's state machine; inference itself stays on
//!   the serving workers.
//! * [`client::HttpClient`] — the blocking keep-alive client used by the
//!   socket benchmarks and smoke tests.
//!
//! ```no_run
//! use alf_net::{ModelSpec, NetConfig, NetServer};
//! use alf_obs::metrics::MetricsRegistry;
//! use alf_serve::ServeConfig;
//!
//! let model = alf_core::models::plain20(10, 16).unwrap();
//! let spec = ModelSpec {
//!     name: "plain20".to_string(),
//!     model,
//!     serve: ServeConfig::new(3, 32, 32),
//! };
//! let server = NetServer::start(
//!     vec![spec],
//!     NetConfig::new("127.0.0.1:8080"),
//!     MetricsRegistry::new(),
//! )
//! .unwrap();
//! println!("serving on {}", server.addr());
//! // POST /v1/models/plain20/predict with 3*32*32 little-endian f32 bytes;
//! // GET /metrics for the text exposition.
//! # server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod http;
mod quota;
mod router;
mod server;

use std::fmt;

pub use http::{HttpError, HttpLimits, Request, RequestParser};
pub use quota::QuotaConfig;
pub use router::{ModelSpec, Outcome, Response, Router};
pub use server::{NetConfig, NetServer};

/// Front-end failures surfaced to the embedder (wire-level failures are
/// answered on the wire instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The listen address could not be bound or configured.
    Bind {
        /// The address that failed.
        addr: String,
        /// The OS error text.
        detail: String,
    },
    /// Invalid front-end configuration (empty model list, duplicate model
    /// name, zero connection bound, …).
    BadConfig(String),
    /// A model server rejected its configuration at startup.
    Serve(alf_serve::ServeError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Bind { addr, detail } => write!(f, "cannot bind {addr}: {detail}"),
            NetError::BadConfig(detail) => write!(f, "bad net config: {detail}"),
            NetError::Serve(e) => write!(f, "serving backend: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<alf_serve::ServeError> for NetError {
    fn from(e: alf_serve::ServeError) -> Self {
        NetError::Serve(e)
    }
}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, NetError>;
