//! Per-connection state machine, driven by the poll loop.
//!
//! Each accepted socket is nonblocking and owned by one [`Connection`].
//! Every [`tick`] makes whatever progress the socket allows and returns —
//! it never blocks, so one poll thread can drive every connection:
//!
//! 1. flush pending response bytes (`WouldBlock` ⇒ try next tick);
//! 2. poll an in-flight prediction ([`Pending::try_wait`]) and serialise
//!    its response when it resolves;
//! 3. otherwise read, feed the incremental parser, and route a completed
//!    request — an [`Outcome::Immediate`] answer is queued at once, an
//!    admitted prediction parks as in-flight.
//!
//! The connection is half-duplex: while a response is being produced or
//! written, already-read pipelined bytes wait in the input buffer and the
//! socket is not read further, bounding per-connection memory. A parse
//! error answers with its typed status and closes after the write
//! (the stream is unsynchronisable after a framing error).
//!
//! [`tick`]: Connection::tick
//! [`Pending::try_wait`]: alf_serve::Pending::try_wait

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use alf_obs::metrics::{Counter, Histogram};
use alf_serve::Pending;

use crate::http::{write_response, HttpLimits, RequestParser};
use crate::quota::QuotaState;
use crate::router::{Outcome, Router};

/// Front-end instruments shared by every connection.
#[derive(Debug, Clone)]
pub(crate) struct NetCounters {
    /// Responses fully serialised into a connection's output buffer.
    pub responses: Counter,
    /// Requests answered with an HTTP parse error.
    pub parse_errors: Counter,
    /// End-to-end admitted-predict latency (submit → response queued), ns.
    pub request_ns: Arc<Histogram>,
}

struct InFlight {
    pending: Pending,
    model: usize,
    started: Instant,
    keep_alive: bool,
}

/// Whether a connection survives its tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tick {
    /// Connection stays registered; `progressed` is true when bytes moved
    /// or a request resolved (the poll loop skips its idle sleep then).
    Open {
        /// Whether this tick did any work.
        progressed: bool,
    },
    /// Connection is done (peer closed, fatal I/O error, or close-after-
    /// write completed) and must be dropped.
    Closed,
}

/// One accepted socket plus its parser, buffers and in-flight request.
pub(crate) struct Connection {
    stream: TcpStream,
    parser: RequestParser,
    /// Read-but-unparsed bytes (pipelined requests wait here).
    inbuf: Vec<u8>,
    inflight: Option<InFlight>,
    outbuf: Vec<u8>,
    outpos: usize,
    close_after_write: bool,
}

impl Connection {
    /// Wraps an accepted stream; the caller has already set nonblocking.
    pub(crate) fn new(stream: TcpStream, limits: HttpLimits) -> Self {
        Self {
            stream,
            parser: RequestParser::new(limits),
            inbuf: Vec::new(),
            inflight: None,
            outbuf: Vec::new(),
            outpos: 0,
            close_after_write: false,
        }
    }

    /// Advances the connection as far as the socket allows without
    /// blocking. See the module docs for the step order.
    pub(crate) fn tick(
        &mut self,
        router: &Router,
        quota: &mut QuotaState,
        counters: &NetCounters,
    ) -> Tick {
        let mut progressed = false;

        // 1. Flush queued response bytes.
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => return Tick::Closed,
                Ok(n) => {
                    self.outpos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    return Tick::Open { progressed };
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Tick::Closed,
            }
        }
        if self.outpos > 0 {
            self.outbuf.clear();
            self.outpos = 0;
        }

        // 2. Poll the in-flight prediction.
        if let Some(inflight) = &self.inflight {
            let Some(result) = inflight.pending.try_wait() else {
                return Tick::Open { progressed };
            };
            let inflight = self.inflight.take().expect("checked above");
            let response = match &result {
                Ok(prediction) => router.render_prediction(inflight.model, prediction),
                Err(e) => router.render_serve_error(e),
            };
            let elapsed = inflight.started.elapsed();
            counters
                .request_ns
                .record(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
            counters.responses.inc();
            write_response(
                &mut self.outbuf,
                response.status,
                response.reason,
                response.content_type,
                &response.body,
                inflight.keep_alive,
            );
            if !inflight.keep_alive {
                self.close_after_write = true;
            }
            // Loop back through the flush on the next tick.
            return Tick::Open { progressed: true };
        }

        if self.close_after_write {
            // Response fully flushed (step 1 fell through) and nothing in
            // flight: done.
            return Tick::Closed;
        }

        // 3. Parse buffered pipelined bytes before reading more.
        if !self.inbuf.is_empty() {
            match self.dispatch_buffered(router, quota, counters) {
                Some(tick) => return tick,
                None => progressed = true,
            }
        }

        // 4. Read from the socket.
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer closed; anything half-parsed is abandoned.
                Tick::Closed
            }
            Ok(n) => {
                self.inbuf.extend_from_slice(&chunk[..n]);
                match self.dispatch_buffered(router, quota, counters) {
                    Some(tick) => tick,
                    None => Tick::Open { progressed: true },
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted => {
                Tick::Open { progressed }
            }
            Err(_) => Tick::Closed,
        }
    }

    /// Feeds buffered bytes to the parser and routes at most one completed
    /// request (half-duplex: the next pipelined request waits for this
    /// response). Returns `Some(tick)` when the tick should end with that
    /// state, `None` when the caller may continue.
    fn dispatch_buffered(
        &mut self,
        router: &Router,
        quota: &mut QuotaState,
        counters: &NetCounters,
    ) -> Option<Tick> {
        match self.parser.feed(&self.inbuf) {
            Ok((consumed, maybe_request)) => {
                self.inbuf.drain(..consumed);
                let request = maybe_request?;
                let keep_alive = request.keep_alive();
                match router.route(&request, quota) {
                    Outcome::Immediate(response) => {
                        counters.responses.inc();
                        write_response(
                            &mut self.outbuf,
                            response.status,
                            response.reason,
                            response.content_type,
                            &response.body,
                            keep_alive,
                        );
                        if !keep_alive {
                            self.close_after_write = true;
                        }
                    }
                    Outcome::InFlight {
                        pending,
                        model,
                        started,
                    } => {
                        self.inflight = Some(InFlight {
                            pending,
                            model,
                            started,
                            keep_alive,
                        });
                    }
                }
                Some(Tick::Open { progressed: true })
            }
            Err(e) => {
                counters.parse_errors.inc();
                let (status, reason) = e.status();
                write_response(
                    &mut self.outbuf,
                    status,
                    reason,
                    "text/plain; charset=utf-8",
                    format!("{e}\n").as_bytes(),
                    false,
                );
                self.close_after_write = true;
                self.inbuf.clear();
                Some(Tick::Open { progressed: true })
            }
        }
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("inflight", &self.inflight.is_some())
            .field("buffered_in", &self.inbuf.len())
            .field("pending_out", &(self.outbuf.len() - self.outpos))
            .field("close_after_write", &self.close_after_write)
            .finish()
    }
}
