//! Property tests for the incremental HTTP/1.1 parser: the parse result
//! is invariant under input chunking (one byte at a time, random split
//! points, whole buffer), prefixes of a valid request never error or
//! complete early, malformed and oversized inputs map to their typed
//! statuses, and no input — valid, truncated, or random bytes — panics.

use alf_net::http::{HttpError, HttpLimits, Request, RequestParser};
use proptest::collection::vec;
use proptest::prelude::*;

const METHODS: &[&str] = &["GET", "POST", "PUT", "DELETE", "HEAD"];
const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-._~/";
const VALUE_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

/// Builds one syntactically valid request from sampled parts and returns
/// `(wire bytes, expected parse)`.
fn build_request(
    method_index: usize,
    path_indices: &[usize],
    header_value_indices: &[Vec<usize>],
    body: &[u8],
) -> (Vec<u8>, Request) {
    let method = METHODS[method_index % METHODS.len()];
    let path: String = std::iter::once('/')
        .chain(
            path_indices
                .iter()
                .map(|&i| PATH_CHARS[i % PATH_CHARS.len()] as char),
        )
        .collect();
    let mut headers: Vec<(String, String)> = header_value_indices
        .iter()
        .enumerate()
        .map(|(n, indices)| {
            let value: String = indices
                .iter()
                .map(|&i| VALUE_CHARS[i % VALUE_CHARS.len()] as char)
                .collect();
            (format!("x-h{n}"), value)
        })
        .collect();
    let mut wire = format!("{method} {path} HTTP/1.1\r\n").into_bytes();
    for (name, value) in &headers {
        wire.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    if !body.is_empty() {
        wire.extend_from_slice(format!("content-length: {}\r\n", body.len()).as_bytes());
        headers.push(("content-length".to_string(), body.len().to_string()));
    }
    wire.extend_from_slice(b"\r\n");
    wire.extend_from_slice(body);
    let expected = Request {
        method: method.to_string(),
        target: path,
        version: alf_net::http::HttpVersion::Http11,
        headers,
        body: body.to_vec(),
    };
    (wire, expected)
}

/// Feeds `wire` split at the given sorted cut points; returns the parsed
/// request and total consumed bytes.
fn parse_in_chunks(wire: &[u8], cuts: &[usize]) -> Result<(usize, Option<Request>), HttpError> {
    let mut parser = RequestParser::new(HttpLimits::default());
    let mut total = 0usize;
    let mut request = None;
    let mut start = 0usize;
    let bounds: Vec<usize> = cuts.iter().copied().chain([wire.len()]).collect();
    for end in bounds {
        let chunk = &wire[start..end];
        start = end;
        let mut offset = 0;
        while offset < chunk.len() {
            let (used, done) = parser.feed(&chunk[offset..])?;
            offset += used;
            total += used;
            if let Some(r) = done {
                assert!(request.is_none(), "parser produced two requests");
                request = Some(r);
            }
            if used == 0 {
                break;
            }
        }
    }
    Ok((total, request))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chunking_does_not_change_the_parse(
        method_index in 0usize..5,
        path_indices in vec(0usize..41, 0..12),
        h0 in vec(0usize..62, 0..10),
        h1 in vec(0usize..62, 0..10),
        body in vec(0u8..255, 0..40),
        cut_fractions in vec(0.0f64..1.0, 0..8),
    ) {
        let (wire, expected) = build_request(method_index, &path_indices, &[h0, h1], &body);

        // Whole buffer.
        let (consumed, whole) = parse_in_chunks(&wire, &[]).expect("valid request");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(whole.as_ref(), Some(&expected));

        // One byte at a time.
        let every_byte: Vec<usize> = (1..wire.len()).collect();
        let (consumed, bytewise) = parse_in_chunks(&wire, &every_byte).expect("valid request");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(bytewise.as_ref(), Some(&expected));

        // Random split points.
        let mut cuts: Vec<usize> = cut_fractions
            .iter()
            .map(|f| ((f * wire.len() as f64) as usize).min(wire.len()))
            .collect();
        cuts.sort_unstable();
        let (consumed, random) = parse_in_chunks(&wire, &cuts).expect("valid request");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(random.as_ref(), Some(&expected));
    }

    #[test]
    fn prefixes_stay_incomplete_without_error(
        method_index in 0usize..5,
        path_indices in vec(0usize..41, 0..12),
        h0 in vec(0usize..62, 0..10),
        body in vec(0u8..255, 1..40),
        cut_fraction in 0.0f64..1.0,
    ) {
        let (wire, _) = build_request(method_index, &path_indices, &[h0], &body);
        // A strict prefix of a valid request is always "more bytes
        // needed" — typed incomplete, never an error, never a panic.
        let cut = ((cut_fraction * (wire.len() - 1) as f64) as usize).min(wire.len() - 1);
        let mut parser = RequestParser::new(HttpLimits::default());
        let (consumed, done) = parser.feed(&wire[..cut]).expect("prefix must not error");
        prop_assert_eq!(consumed, cut);
        prop_assert!(done.is_none(), "completed on a strict prefix");
        prop_assert_eq!(parser.is_idle(), cut == 0);
    }

    #[test]
    fn malformed_request_lines_are_400(
        kind in 0usize..4,
        path_indices in vec(0usize..41, 0..8),
    ) {
        let path: String = std::iter::once('/')
            .chain(path_indices.iter().map(|&i| PATH_CHARS[i % PATH_CHARS.len()] as char))
            .collect();
        let wire = match kind {
            0 => format!("get {path} HTTP/1.1\r\n\r\n"),          // lowercase method
            1 => format!("GET{path} HTTP/1.1\r\n\r\n"),           // missing separator
            2 => format!("GET {path} HTTP/1.1 junk\r\n\r\n"),     // four fields
            _ => format!("GET {path} WAT/1.1\r\n\r\n"),           // not HTTP at all
        };
        let err = RequestParser::new(HttpLimits::default())
            .feed(wire.as_bytes())
            .expect_err("malformed request line must fail");
        prop_assert_eq!(err.status().0, 400);
    }

    #[test]
    fn oversized_headers_are_431(extra in 0usize..64, pad in vec(0usize..62, 0..4)) {
        let limits = HttpLimits {
            max_header_bytes: 64,
            ..HttpLimits::default()
        };
        let filler: String = pad
            .iter()
            .map(|&i| VALUE_CHARS[i % VALUE_CHARS.len()] as char)
            .collect();
        // One header always larger than the 64-byte block bound.
        let value = "v".repeat(limits.max_header_bytes + 1 + extra);
        let wire = format!("GET / HTTP/1.1\r\nx-p: {filler}\r\nx-big: {value}\r\n\r\n");
        let err = RequestParser::new(limits)
            .feed(wire.as_bytes())
            .expect_err("oversized header must fail");
        prop_assert_eq!(err, HttpError::HeaderTooLarge { limit: 64 });
        prop_assert_eq!(err.status().0, 431);
    }

    #[test]
    fn random_bytes_never_panic(
        noise in vec(0u8..255, 0..200),
        cut_fractions in vec(0.0f64..1.0, 0..6),
    ) {
        let mut cuts: Vec<usize> = cut_fractions
            .iter()
            .map(|f| ((f * noise.len() as f64) as usize).min(noise.len()))
            .collect();
        cuts.sort_unstable();
        // Any outcome is fine — completing, waiting, or a typed error
        // with a real status — as long as nothing panics.
        if let Err(e) = parse_in_chunks(&noise, &cuts) {
            let (status, _) = e.status();
            prop_assert!((400..=599).contains(&status), "status {status}");
        }
    }
}
