//! End-to-end socket smoke test, also run by `scripts/verify.sh`:
//! an ephemeral-port server with concurrent keep-alive clients, one hot
//! checkpoint swap over the wire mid-load, one tenant-over-quota burst,
//! and exact accounting at the end — every request is answered or
//! typed-rejected, and the `/metrics` totals reconcile with the
//! client-side tallies and the per-model `ServerStats`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use alf_core::models::plain20;
use alf_net::client::HttpClient;
use alf_net::{ModelSpec, NetConfig, NetServer, QuotaConfig};
use alf_obs::metrics::MetricsRegistry;
use alf_serve::ServeConfig;

const LOAD_CLIENTS: usize = 3;
const REQUESTS_PER_CLIENT: usize = 30;
const BURST_REQUESTS: usize = 6;
const BURST_CAPACITY: f64 = 2.0;
const TIMEOUT: Duration = Duration::from_secs(60);

fn image_body(seed: usize) -> Vec<u8> {
    (0..3 * 12 * 12)
        .flat_map(|i| (((i + seed) % 11) as f32 * 0.1 - 0.5).to_le_bytes())
        .collect()
}

fn counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| {
            line.strip_prefix(&format!("counter {name} "))
                .map(|v| v.parse().expect("counter value"))
        })
        .unwrap_or_else(|| panic!("no counter {name} in:\n{metrics}"))
}

#[test]
fn socket_smoke() {
    let registry = MetricsRegistry::new();
    let spec = ModelSpec {
        name: "m".to_string(),
        model: plain20(4, 4).unwrap(),
        serve: ServeConfig {
            max_wait: Duration::from_millis(1),
            queue_depth: 64,
            ..ServeConfig::new(3, 12, 12)
        },
    };
    let cfg = NetConfig {
        // Unlimited by default; the burst tenant gets a tiny bucket so its
        // over-quota burst sheds deterministically.
        quota: QuotaConfig::unlimited().with_override("burst", 1e-9, BURST_CAPACITY),
        threads: Some(1),
        ..NetConfig::new("127.0.0.1:0")
    };
    let server = Arc::new(NetServer::start(vec![spec], cfg, registry.clone()).unwrap());
    let addr = server.addr();

    // --- concurrent keep-alive load, one tenant per client thread ---
    let load: Vec<std::thread::JoinHandle<BTreeMap<u16, u64>>> = (0..LOAD_CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
                let tenant = format!("t{t}");
                let mut statuses = BTreeMap::new();
                for i in 0..REQUESTS_PER_CLIENT {
                    let resp = client
                        .post(
                            "/v1/models/m/predict",
                            &[("x-tenant", tenant.as_str())],
                            &image_body(t * 1000 + i),
                        )
                        .expect("every request gets an answer");
                    assert!(
                        matches!(resp.status, 200 | 429 | 503 | 504),
                        "untyped status {}: {}",
                        resp.status,
                        resp.text()
                    );
                    *statuses.entry(resp.status).or_insert(0) += 1;
                }
                statuses
            })
        })
        .collect();

    // --- one hot checkpoint swap over the wire, mid-load ---
    let blob = alf_core::checkpoint::save(&plain20(4, 4).unwrap());
    let mut admin = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = admin
        .post("/v1/models/m/checkpoint", &[], &blob)
        .expect("swap answered");
    assert_eq!(resp.status, 200, "{}", resp.text());

    let mut tallies: BTreeMap<u16, u64> = BTreeMap::new();
    for handle in load {
        for (status, n) in handle.join().expect("load client panicked") {
            *tallies.entry(status).or_insert(0) += n;
        }
    }
    let load_total: u64 = tallies.values().sum();
    assert_eq!(load_total, (LOAD_CLIENTS * REQUESTS_PER_CLIENT) as u64);

    // --- explicit deadline behaviour over the wire ---
    // An already-expired deadline must come back 504; a generous one 200.
    let resp = admin
        .post(
            "/v1/models/m/predict",
            &[("x-deadline-ms", "0")],
            &image_body(7),
        )
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.text());
    let resp = admin
        .post(
            "/v1/models/m/predict",
            &[("x-deadline-ms", "60000")],
            &image_body(8),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    *tallies.entry(504).or_insert(0) += 1;
    *tallies.entry(200).or_insert(0) += 1;

    // --- tenant-over-quota burst (idle queue: sheds are purely quota) ---
    let mut shed_429 = 0u64;
    let mut burst_ok = 0u64;
    for i in 0..BURST_REQUESTS {
        let resp = admin
            .post(
                "/v1/models/m/predict",
                &[("x-tenant", "burst")],
                &image_body(100 + i),
            )
            .unwrap();
        match resp.status {
            200 => burst_ok += 1,
            429 => shed_429 += 1,
            other => panic!("burst got untyped status {other}: {}", resp.text()),
        }
    }
    assert_eq!(burst_ok, BURST_CAPACITY as u64, "token bucket capacity");
    assert_eq!(shed_429, BURST_REQUESTS as u64 - BURST_CAPACITY as u64);
    *tallies.entry(200).or_insert(0) += burst_ok;
    *tallies.entry(429).or_insert(0) += shed_429;

    // --- /metrics totals account exactly for what the clients saw ---
    let metrics = admin.get("/metrics").expect("metrics scrape").text();
    let get = |name: &str| counter(&metrics, name);

    assert_eq!(
        get("serve.m.completed"),
        tallies.get(&200).copied().unwrap_or(0)
    );
    assert_eq!(
        get("serve.m.rejected_overloaded"),
        tallies.get(&503).copied().unwrap_or(0)
    );
    assert_eq!(
        get("serve.m.expired"),
        tallies.get(&504).copied().unwrap_or(0)
    );
    assert_eq!(
        get("net.shed_quota"),
        tallies.get(&429).copied().unwrap_or(0)
    );
    assert_eq!(get("serve.m.swaps"), 1);
    assert_eq!(get("net.parse_errors"), 0);

    // Every admitted request was answered or expired; nothing was lost.
    assert_eq!(
        get("serve.m.submitted"),
        get("serve.m.completed") + get("serve.m.expired")
    );
    // Quota admissions reconcile with queue admissions + typed queue
    // rejections across all tenants.
    let admitted: u64 = ["t0", "t1", "t2", "burst", "anon"]
        .iter()
        .map(|t| {
            metrics
                .lines()
                .find_map(|l| l.strip_prefix(&format!("counter net.tenant.{t}.admitted ")))
                .map_or(0, |v| v.parse().unwrap())
        })
        .sum();
    assert_eq!(
        admitted,
        get("serve.m.submitted")
            + get("serve.m.rejected_overloaded")
            + get("serve.m.rejected_shutdown")
    );

    // The registry and the per-model ServerStats are the same cells.
    let stats = server.router().server("m").unwrap().stats();
    assert_eq!(stats.submitted, get("serve.m.submitted"));
    assert_eq!(stats.completed + stats.expired, stats.submitted);

    server.shutdown();
}
