//! DAG semantics through the public API: typed cycle errors,
//! deterministic dispatch at any worker count, and failure skipping —
//! all on synthetic jobs (no model training).

use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::Duration;

use alf_lab::dag::{Dag, DagError, JobSpec};
use alf_lab::scheduler::{run_dag, JobStatus, Progress};

fn spec(id: &str, deps: &[&str], threads: usize) -> JobSpec {
    JobSpec::new(id, deps, threads)
}

/// A two-tier synthetic grid shaped like the real one: shared "bases"
/// feeding several consumers, plus free jobs.
fn synthetic() -> Vec<JobSpec> {
    vec![
        spec("base:a", &[], 2),
        spec("base:b", &[], 2),
        spec("free:1", &[], 1),
        spec("cons:ab", &["base:a", "base:b"], 1),
        spec("cons:a", &["base:a"], 2),
        spec("cons:b", &["base:b"], 1),
        spec("leaf", &["cons:ab"], 1),
    ]
}

#[test]
fn cycle_is_a_typed_error_not_a_hang() {
    let err = Dag::new(vec![
        spec("x", &["z"], 1),
        spec("y", &["x"], 1),
        spec("z", &["y"], 1),
    ])
    .unwrap_err();
    let DagError::Cycle(path) = err else {
        panic!("expected DagError::Cycle, got {err:?}");
    };
    assert_eq!(path.first(), path.last(), "path closes the loop: {path:?}");
    let distinct: BTreeSet<&String> = path.iter().collect();
    assert_eq!(distinct.len(), 3, "all three nodes appear: {path:?}");
}

#[test]
fn start_order_is_identical_at_every_worker_count() {
    let reference = {
        let dag = Dag::new(synthetic()).unwrap();
        dag.schedule_order()
            .iter()
            .map(|&i| dag.jobs()[i].id.clone())
            .collect::<Vec<_>>()
    };
    for budget in 1..=8usize {
        let dag = Dag::new(synthetic()).unwrap();
        let starts = Mutex::new(Vec::new());
        let summary = run_dag(
            &dag,
            budget,
            &BTreeSet::new(),
            |s, _| {
                // Uneven durations try to tempt a timing-dependent
                // scheduler into reordering; ours must not.
                std::thread::sleep(Duration::from_millis((s.id.len() as u64 * 7) % 23));
                Ok::<_, String>(())
            },
            |p| {
                if let Progress::Started { spec, .. } = p {
                    starts.lock().unwrap().push(spec.id.clone());
                }
                true
            },
        );
        assert!(summary.all_terminal(&dag));
        assert_eq!(
            *starts.lock().unwrap(),
            reference,
            "budget {budget} changed the start order"
        );
    }
}

#[test]
fn dependency_failure_skips_dependents_but_not_siblings() {
    let dag = Dag::new(synthetic()).unwrap();
    let summary = run_dag(
        &dag,
        4,
        &BTreeSet::new(),
        |s, _| {
            if s.id == "base:a" {
                Err("synthetic failure".to_string())
            } else {
                Ok(s.id.clone())
            }
        },
        |_| true,
    );
    assert!(summary.all_terminal(&dag));
    let status = |id: &str| {
        summary
            .outcomes
            .iter()
            .find(|o| o.id == id)
            .unwrap_or_else(|| panic!("{id} has no outcome"))
            .status
            .clone()
    };
    assert_eq!(
        status("base:a"),
        JobStatus::Failed("synthetic failure".into())
    );
    assert!(matches!(status("cons:a"), JobStatus::Skipped { dep } if dep == "base:a"));
    assert!(matches!(status("cons:ab"), JobStatus::Skipped { dep } if dep == "base:a"));
    assert!(matches!(status("leaf"), JobStatus::Skipped { dep } if dep == "cons:ab"));
    // The healthy half of the grid is untouched.
    assert_eq!(status("base:b"), JobStatus::Completed);
    assert_eq!(status("cons:b"), JobStatus::Completed);
    assert_eq!(status("free:1"), JobStatus::Completed);
}

#[test]
fn leases_never_exceed_the_budget() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let in_flight = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let jobs: Vec<JobSpec> = (0..12).map(|i| spec(&format!("j{i}"), &[], 2)).collect();
    let dag = Dag::new(jobs).unwrap();
    let budget = 5;
    let summary = run_dag(
        &dag,
        budget,
        &BTreeSet::new(),
        |_, lease| {
            let now = in_flight.fetch_add(lease, Ordering::SeqCst) + lease;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            in_flight.fetch_sub(lease, Ordering::SeqCst);
            Ok::<_, String>(lease)
        },
        |_| true,
    );
    assert!(summary.all_terminal(&dag));
    assert!(
        peak.load(Ordering::SeqCst) <= budget,
        "peak lease {} exceeded budget {budget}",
        peak.load(Ordering::SeqCst)
    );
    for r in summary.results {
        assert_eq!(r, Some(2), "lease of a 2-thread job under budget 5");
    }
}
