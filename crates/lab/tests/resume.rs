//! Campaign kill/resume semantics on the cheap (geometry-only) corner of
//! the real grid: an aborted campaign resumes skipping completed jobs,
//! produces artifacts identical to an uninterrupted run, and refuses to
//! mix manifests of different campaigns.

use std::path::{Path, PathBuf};

use alf_bench::Scale;
use alf_lab::scheduler::JobStatus;
use alf_lab::{run_campaign, CampaignOpts, LabError};

/// Geometry-only jobs: no training, so the whole file runs in
/// milliseconds while still exercising the real runner end to end.
const CHEAP: [&str; 2] = ["ablation_dataflow", "ablation_fusion"];

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alf_lab_resume_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(out: &Path) -> CampaignOpts {
    let mut o = CampaignOpts::new(Scale::Smoke);
    o.out = out.to_path_buf();
    o.only = Some(CHEAP.iter().map(|s| s.to_string()).collect());
    o.jobs = Some(1); // serial: the abort point is exact
    o.quiet = true;
    o
}

fn status_of(summary: &alf_lab::CampaignSummary, id: &str) -> JobStatus {
    summary
        .outcomes
        .iter()
        .find(|o| o.id == id)
        .unwrap_or_else(|| panic!("{id} has no outcome"))
        .status
        .clone()
}

#[test]
fn aborted_campaign_resumes_to_identical_artifacts() {
    let interrupted = tmp("interrupted");
    let reference = tmp("reference");

    // Uninterrupted reference run.
    let full = run_campaign(&opts(&reference)).unwrap();
    assert!(full.all_terminal && !full.aborted && !full.has_failures());

    // Abort after the first completion…
    let mut first = opts(&interrupted);
    first.abort_after = Some(1);
    let aborted = run_campaign(&first).unwrap();
    assert!(aborted.aborted);
    assert!(!aborted.all_terminal);
    assert_eq!(aborted.outcomes.len(), 1);
    assert_eq!(status_of(&aborted, CHEAP[0]), JobStatus::Completed);

    // …and resume: the completed job is cached, the rest runs.
    let resumed = run_campaign(&opts(&interrupted)).unwrap();
    assert!(resumed.all_terminal && !resumed.aborted);
    assert_eq!(status_of(&resumed, CHEAP[0]), JobStatus::Cached);
    assert_eq!(status_of(&resumed, CHEAP[1]), JobStatus::Completed);

    // Per-job artifacts are byte-identical to the uninterrupted run
    // (they carry no timing), cached job included.
    for id in CHEAP {
        for ext in ["txt", "json"] {
            let name = format!("{id}.{ext}");
            let a = std::fs::read(interrupted.join(&name)).unwrap();
            let b = std::fs::read(reference.join(&name)).unwrap();
            assert_eq!(a, b, "{name} diverged across kill/resume");
        }
    }
    // The consolidated report exists in both and marks full coverage.
    for dir in [&interrupted, &reference] {
        let json = std::fs::read_to_string(dir.join("pareto-smoke.json")).unwrap();
        assert!(json.contains("\"all_terminal\":true"), "{json}");
    }
    // A cached job's metrics still reach the resumed report (from the
    // manifest record, not a re-run).
    let resumed_json = std::fs::read_to_string(interrupted.join("pareto-smoke.json")).unwrap();
    assert!(resumed_json.contains(&format!("\"id\":\"{}\",\"status\":\"cached\"", CHEAP[0])));
    assert!(resumed_json.contains("\"metrics\":{"));

    let _ = std::fs::remove_dir_all(&interrupted);
    let _ = std::fs::remove_dir_all(&reference);
}

#[test]
fn resuming_a_different_campaign_is_a_typed_mismatch() {
    let out = tmp("mismatch");
    let mut first = opts(&out);
    first.only = Some(vec![CHEAP[0].to_string()]);
    run_campaign(&first).unwrap();

    // Different job selection → different fingerprint → refuse.
    let err = run_campaign(&opts(&out)).unwrap_err();
    let msg = match err {
        LabError::Campaign(e) => e.to_string(),
        other => panic!("expected campaign error, got {other:?}"),
    };
    assert!(
        msg.contains("--fresh"),
        "error should point at --fresh: {msg}"
    );

    // --fresh discards the stale manifest and runs.
    let mut fresh = opts(&out);
    fresh.fresh = true;
    let summary = run_campaign(&fresh).unwrap();
    assert!(summary.all_terminal && !summary.has_failures());
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn completed_campaign_is_a_cheap_no_op_on_rerun() {
    let out = tmp("noop");
    run_campaign(&opts(&out)).unwrap();
    let again = run_campaign(&opts(&out)).unwrap();
    assert!(again.all_terminal);
    for id in CHEAP {
        assert_eq!(status_of(&again, id), JobStatus::Cached);
    }
    // Events from both runs share one JSONL stream (append on resume).
    let events = std::fs::read_to_string(out.join("campaign-smoke.events.jsonl")).unwrap();
    assert_eq!(
        events.matches("campaign.start").count(),
        2,
        "resume should append, not truncate: {events}"
    );
    let _ = std::fs::remove_dir_all(&out);
}
