//! Campaign execution: grid → DAG → scheduler → manifest/events/report.
//!
//! [`run_campaign`] is the whole story of an `alf-lab run`:
//!
//! 1. build the declared grid as a [`Dag`] (optionally restricted to
//!    `--only` selections plus their transitive dependencies);
//! 2. open (or resume) the campaign manifest and pre-mark completed jobs
//!    as cached;
//! 3. dispatch under the [`resolve_threads`] budget, streaming `job.*`
//!    lifecycle events into the campaign JSONL and appending a manifest
//!    record the moment each job is terminal (artifacts first, record
//!    second — a record implies its artifacts exist);
//! 4. assert the exactly-once training invariant from the artifact-store
//!    telemetry;
//! 5. consolidate every completed job's metrics and Pareto points —
//!    cached ones included, straight from the manifest — into the
//!    `pareto-<scale>.{txt,json}` report pair.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use alf_bench::artifacts::ArtifactStore;
use alf_bench::jobs::{JobCtx, JobKind};
use alf_bench::report::ParetoPoint;
use alf_bench::Scale;
use alf_obs::{resolve_threads, EventLog, FileSink};

use crate::campaign::{CampaignError, JobRecord, ManifestFile, RecordStatus};
use crate::dag::{Dag, DagError, JobSpec};
use crate::pareto;
use crate::scheduler::{run_dag, JobOutcome, JobStatus, Progress};

/// Environment variable consulted for the worker budget when `--jobs` is
/// absent.
pub const THREADS_ENV: &str = "ALF_LAB_THREADS";

/// Anything a campaign can fail with.
#[derive(Debug)]
pub enum LabError {
    /// The grid (or a `--only` selection) is not a runnable DAG.
    Dag(DagError),
    /// Manifest problems, including the exactly-once violation.
    Campaign(CampaignError),
    /// Event-log or report I/O.
    Io(std::io::Error),
}

impl std::fmt::Display for LabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabError::Dag(e) => write!(f, "{e}"),
            LabError::Campaign(e) => write!(f, "{e}"),
            LabError::Io(e) => write!(f, "campaign i/o: {e}"),
        }
    }
}

impl std::error::Error for LabError {}

impl From<DagError> for LabError {
    fn from(e: DagError) -> Self {
        LabError::Dag(e)
    }
}

impl From<CampaignError> for LabError {
    fn from(e: CampaignError) -> Self {
        LabError::Campaign(e)
    }
}

impl From<std::io::Error> for LabError {
    fn from(e: std::io::Error) -> Self {
        LabError::Io(e)
    }
}

/// How to run a campaign.
#[derive(Debug, Clone)]
pub struct CampaignOpts {
    /// Experiment scale.
    pub scale: Scale,
    /// Explicit worker budget (`--jobs`); falls back to [`THREADS_ENV`],
    /// then host parallelism.
    pub jobs: Option<usize>,
    /// Artifact directory.
    pub out: PathBuf,
    /// Restrict to these job ids plus transitive dependencies.
    pub only: Option<Vec<String>>,
    /// Discard any existing manifest instead of resuming.
    pub fresh: bool,
    /// Abort the campaign after this many job completions (the
    /// kill-simulation switch `scripts/verify.sh` drives; the process
    /// then exits with code 70).
    pub abort_after: Option<usize>,
    /// Suppress per-job stdout lines (tests).
    pub quiet: bool,
}

impl CampaignOpts {
    /// Defaults: smoke scale, auto budget, `results/`, full grid.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            jobs: None,
            out: PathBuf::from("results"),
            only: None,
            fresh: false,
            abort_after: None,
            quiet: false,
        }
    }
}

/// What a campaign run produced.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Terminal job records, declaration order.
    pub outcomes: Vec<JobOutcome>,
    /// Whether the abort switch stopped the campaign early.
    pub aborted: bool,
    /// Whether every declared job reached a terminal state.
    pub all_terminal: bool,
    /// Rendered consolidated report (also written next to the manifest).
    pub report: String,
    /// Path of the text report.
    pub report_txt: PathBuf,
    /// Path of the JSON report.
    pub report_json: PathBuf,
}

impl CampaignSummary {
    /// Whether any job failed or was skipped.
    pub fn has_failures(&self) -> bool {
        self.outcomes.iter().any(|o| !o.status.is_success())
    }
}

/// The full declared grid as a [`Dag`].
///
/// # Panics
///
/// Panics if the declared grid is not a DAG — a compile-time-adjacent
/// invariant guarded by tests, never an input condition.
pub fn grid_dag() -> Dag {
    let specs: Vec<JobSpec> = JobKind::grid()
        .into_iter()
        .map(|j| JobSpec {
            id: j.id().to_string(),
            deps: j.deps().into_iter().map(|d| d.id().to_string()).collect(),
            threads: j.threads(),
        })
        .collect();
    Dag::new(specs).expect("declared grid is a DAG")
}

fn manifest_path(out: &std::path::Path, scale: Scale) -> PathBuf {
    out.join(format!("campaign-{}.manifest", scale.label()))
}

fn events_path(out: &std::path::Path, scale: Scale) -> PathBuf {
    out.join(format!("campaign-{}.events.jsonl", scale.label()))
}

/// Runs (or resumes) a campaign. See the module docs for the lifecycle.
///
/// # Errors
///
/// [`LabError`] on an invalid selection, a manifest that belongs to a
/// different campaign, report I/O failures, or a broken exactly-once
/// invariant.
pub fn run_campaign(opts: &CampaignOpts) -> Result<CampaignSummary, LabError> {
    let full = grid_dag();
    let dag = match &opts.only {
        Some(ids) => full.restrict(ids)?,
        None => full,
    };
    let budget = resolve_threads(opts.jobs, THREADS_ENV);
    std::fs::create_dir_all(&opts.out)?;

    let mut manifest = ManifestFile::load_or_create(
        &manifest_path(&opts.out, opts.scale),
        opts.scale.label(),
        &dag.fingerprint(),
        opts.fresh,
    )?;
    let cached = manifest.completed_ids();
    let cached_payloads = manifest.completed_payloads();
    let resumed = !manifest.records().is_empty();

    let ev_path = events_path(&opts.out, opts.scale);
    let sink: Box<dyn alf_obs::TelemetrySink> = if resumed && !opts.fresh {
        Box::new(FileSink::append(&ev_path)?)
    } else {
        Box::new(FileSink::create(&ev_path)?)
    };
    let mut log = EventLog::new(sink);
    log.set_scope("campaign", "alf-lab");
    log.set_scope("scale", opts.scale.label());
    if let Some(mut e) = log.event("campaign.start") {
        e.field_u64("budget", budget as u64);
        e.field_u64("jobs", dag.len() as u64);
        e.field_u64("cached", cached.len() as u64);
        e.field_bool("resumed", resumed);
    }

    // Baseline jobs lease up to 2 workers; the store trains under that cap.
    let store = ArtifactStore::with_threads(opts.scale, Some(2.clamp(1, budget)));
    let mut completions = 0usize;
    let say = |line: &str| {
        if !opts.quiet {
            println!("{line}");
        }
    };

    let summary = run_dag(
        &dag,
        budget,
        &cached,
        |spec: &JobSpec, lease: usize| {
            let job =
                JobKind::from_id(&spec.id).ok_or_else(|| format!("unknown job {}", spec.id))?;
            let ctx = JobCtx {
                store: &store,
                threads: Some(lease),
            };
            let result = job.run(&ctx).map_err(|e| e.to_string())?;
            result
                .write_artifacts(&opts.out)
                .map_err(|e| format!("artifacts for {}: {e}", spec.id))?;
            Ok(result)
        },
        |progress| {
            match progress {
                Progress::Started { spec, lease } => {
                    say(&format!("start  {} (lease {lease})", spec.id));
                    if let Some(mut e) = log.event("job.start") {
                        e.field_str("id", &spec.id);
                        e.field_u64("lease", lease as u64);
                    }
                }
                Progress::Finished {
                    id,
                    status,
                    secs,
                    result,
                } => {
                    say(&format!("finish {id}: {} ({secs:.2}s)", status.label()));
                    if let Some(mut e) = log.event("job.finish") {
                        e.field_str("id", id);
                        e.field_str("status", status.label());
                        e.field_f64("secs", secs);
                    }
                    let record_status = match status {
                        JobStatus::Completed => RecordStatus::Completed {
                            secs,
                            metrics: result.map(|r| r.metrics.clone()).unwrap_or_default(),
                            pareto: result.map(|r| r.pareto.clone()).unwrap_or_default(),
                        },
                        JobStatus::Failed(e) => RecordStatus::Failed { error: e.clone() },
                        JobStatus::Skipped { dep } => RecordStatus::Skipped { dep: dep.clone() },
                        JobStatus::Cached => unreachable!("cached jobs never reach the hook"),
                    };
                    // The artifact pair is already on disk (written inside
                    // the job closure), so committing the record here keeps
                    // "record implies artifacts" true under any kill point.
                    if let Err(e) = manifest.append(&JobRecord {
                        id: id.to_string(),
                        status: record_status,
                    }) {
                        eprintln!("warning: manifest append for {id} failed: {e}");
                    }
                    if matches!(status, JobStatus::Completed) {
                        completions += 1;
                        if opts.abort_after.is_some_and(|n| completions >= n) {
                            if let Some(mut e) = log.event("campaign.abort") {
                                e.field_u64("completions", completions as u64);
                            }
                            return false;
                        }
                    }
                }
            }
            true
        },
    );

    // Exactly-once: the artifact store counted every completed training.
    let counts = store.train_counts();
    if let Some(mut e) = log.event("campaign.trainings") {
        for (id, n) in &counts {
            e.field_u64(id, *n);
        }
    }
    if let Some((id, n)) = counts.iter().find(|(_, n)| **n != 1) {
        return Err(CampaignError::BaselineRetrained {
            id: id.clone(),
            count: *n,
        }
        .into());
    }

    // Consolidated report: live results where the job ran this time,
    // manifest payloads where it was cached.
    let mut metrics: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut points: Vec<ParetoPoint> = Vec::new();
    for (slot, job) in summary.results.iter().zip(dag.jobs()) {
        if let Some(r) = slot {
            metrics.insert(job.id.clone(), r.metrics.clone());
            points.extend(r.pareto.iter().cloned());
        } else if let Some((_, m, p)) = cached_payloads.get(&job.id) {
            metrics.insert(job.id.clone(), m.clone());
            points.extend(p.iter().cloned());
        }
    }
    let frontier = pareto::consolidate(&points);
    let all_terminal = summary.all_terminal(&dag);
    let text = pareto::report_text(opts.scale.label(), &summary.outcomes, &counts, &frontier);
    let json = pareto::report_json(
        opts.scale.label(),
        &summary.outcomes,
        all_terminal,
        &counts,
        &metrics,
        &frontier,
    );
    let report_txt = opts.out.join(format!("pareto-{}.txt", opts.scale.label()));
    let report_json = opts.out.join(format!("pareto-{}.json", opts.scale.label()));
    std::fs::write(&report_txt, &text)?;
    std::fs::write(&report_json, &json)?;
    if let Some(mut e) = log.event("campaign.finish") {
        e.field_bool("aborted", summary.aborted);
        e.field_bool("all_terminal", all_terminal);
        e.field_u64("terminal_jobs", summary.outcomes.len() as u64);
    }
    log.flush();

    let skipped: BTreeSet<&str> = summary
        .outcomes
        .iter()
        .filter(|o| !o.status.is_success())
        .map(|o| o.id.as_str())
        .collect();
    if !opts.quiet && !skipped.is_empty() {
        eprintln!("unsuccessful jobs: {skipped:?}");
    }

    Ok(CampaignSummary {
        outcomes: summary.outcomes,
        aborted: summary.aborted,
        all_terminal,
        report: text,
        report_txt,
        report_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dag_has_every_declared_job_and_is_schedulable() {
        let dag = grid_dag();
        assert_eq!(dag.len(), JobKind::grid().len());
        assert_eq!(dag.schedule_order().len(), dag.len());
        // Baselines must dispatch before their consumers.
        let pos: BTreeMap<&str, usize> = dag
            .schedule_order()
            .iter()
            .enumerate()
            .map(|(at, &j)| (dag.jobs()[j].id.as_str(), at))
            .collect();
        for job in dag.jobs() {
            for dep in &job.deps {
                assert!(pos[dep.as_str()] < pos[job.id.as_str()]);
            }
        }
    }

    #[test]
    fn restricting_to_headline_pulls_its_baselines() {
        let dag = grid_dag().restrict(&["headline".to_string()]).unwrap();
        let ids: Vec<&str> = dag.jobs().iter().map(|j| j.id.as_str()).collect();
        assert_eq!(
            ids,
            ["baseline:resnet20", "baseline:alf-resnet20", "headline"]
        );
    }
}
