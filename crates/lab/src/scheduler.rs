//! Deterministic budgeted dispatch over a [`Dag`].
//!
//! The scheduler walks [`Dag::schedule_order`] *strictly in order*: job
//! `k` is dispatched only once every earlier job in the order has been
//! dispatched (or resolved without running — cached, skipped), its
//! dependencies are terminal, and its thread lease fits the remaining
//! budget. Completion timing therefore never reorders starts — the start
//! sequence of a campaign is a pure function of the grid and the cache
//! set, at any worker count. Jobs run on scoped threads and report back
//! over an mpsc channel; each holds a lease of
//! `spec.threads.clamp(1, budget)` workers while running.

use std::collections::BTreeSet;
use std::sync::mpsc;
use std::time::Instant;

use crate::dag::{Dag, JobSpec};

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran and succeeded.
    Completed,
    /// Skipped because a prior campaign run already completed it.
    Cached,
    /// Ran and failed with this error.
    Failed(String),
    /// Never ran: the named dependency did not succeed.
    Skipped {
        /// The failed/skipped dependency.
        dep: String,
    },
}

impl JobStatus {
    /// Whether dependents may run on top of this state.
    pub fn is_success(&self) -> bool {
        matches!(self, JobStatus::Completed | JobStatus::Cached)
    }

    /// Short machine label (`completed` / `cached` / `failed` / `skipped`).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Cached => "cached",
            JobStatus::Failed(_) => "failed",
            JobStatus::Skipped { .. } => "skipped",
        }
    }
}

/// One job's terminal record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job id.
    pub id: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Wall-clock seconds spent running (0 when not run).
    pub secs: f64,
}

/// Lifecycle notification delivered to the progress hook, on the
/// scheduler thread. The hook returns `false` to request a graceful
/// abort: no further jobs start, in-flight jobs drain.
#[derive(Debug)]
pub enum Progress<'a, R> {
    /// A job is about to start under `lease` workers.
    Started {
        /// The dispatched job.
        spec: &'a JobSpec,
        /// Granted worker lease.
        lease: usize,
    },
    /// A job reached a terminal state (`result` is `Some` only for
    /// [`JobStatus::Completed`]).
    Finished {
        /// Job id.
        id: &'a str,
        /// Terminal state.
        status: &'a JobStatus,
        /// Wall-clock seconds (0 when the job never ran).
        secs: f64,
        /// The run result, for completed jobs.
        result: Option<&'a R>,
    },
}

/// What a [`run_dag`] call produced.
#[derive(Debug)]
pub struct RunSummary<R> {
    /// Terminal records in declaration order; jobs never reached (abort)
    /// are absent.
    pub outcomes: Vec<JobOutcome>,
    /// Run results aligned with [`Dag::jobs`] declaration order (`None`
    /// for cached/failed/skipped/unreached jobs).
    pub results: Vec<Option<R>>,
    /// Whether the hook requested an abort before the grid finished.
    pub aborted: bool,
}

impl<R> RunSummary<R> {
    /// Whether every declared job reached a terminal state.
    pub fn all_terminal(&self, dag: &Dag) -> bool {
        self.outcomes.len() == dag.len()
    }
}

/// Runs `dag` under a worker `budget`.
///
/// Jobs whose ids are in `cached` are pre-resolved as
/// [`JobStatus::Cached`] (their dependents treat them as successes);
/// everything else is dispatched in [`Dag::schedule_order`] through
/// `runner(spec, lease)` on a scoped thread. `hook` observes every start
/// and finish and may return `false` to abort gracefully.
pub fn run_dag<R, F, H>(
    dag: &Dag,
    budget: usize,
    cached: &BTreeSet<String>,
    runner: F,
    mut hook: H,
) -> RunSummary<R>
where
    R: Send,
    F: Fn(&JobSpec, usize) -> Result<R, String> + Sync,
    H: FnMut(Progress<'_, R>) -> bool,
{
    let n = dag.len();
    let budget = budget.max(1);
    let mut status: Vec<Option<JobStatus>> = dag
        .jobs()
        .iter()
        .map(|j| cached.contains(&j.id).then_some(JobStatus::Cached))
        .collect();
    let mut secs = vec![0.0f64; n];
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut leases = vec![0usize; n];
    let order = dag.schedule_order();
    let mut aborted = false;

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, f64, Result<R, String>)>();
        let runner = &runner;
        let mut pos = 0; // next schedule-order slot to dispatch
        let mut running = 0usize;
        let mut used = 0usize;
        loop {
            // Dispatch strictly in schedule order until the head job is
            // blocked (dependency still running) or the budget is full.
            while !aborted && pos < order.len() {
                let j = order[pos];
                if status[j].is_some() {
                    pos += 1; // cached (pre-resolved)
                    continue;
                }
                let spec = &dag.jobs()[j];
                let mut blocked = false;
                let mut skip_on = None;
                for dep in &spec.deps {
                    let d = dag.index_of(dep).expect("dag validated");
                    match &status[d] {
                        None => {
                            blocked = true;
                            break;
                        }
                        Some(st) if !st.is_success() => skip_on = Some(dep.clone()),
                        Some(_) => {}
                    }
                }
                if blocked {
                    break;
                }
                if let Some(dep) = skip_on {
                    let st = JobStatus::Skipped { dep };
                    if !hook(Progress::Finished {
                        id: &spec.id,
                        status: &st,
                        secs: 0.0,
                        result: None,
                    }) {
                        aborted = true;
                    }
                    status[j] = Some(st);
                    pos += 1;
                    continue;
                }
                let lease = spec.threads.clamp(1, budget);
                if used + lease > budget {
                    break;
                }
                if !hook(Progress::Started { spec, lease }) {
                    aborted = true;
                    break;
                }
                leases[j] = lease;
                used += lease;
                running += 1;
                pos += 1;
                let tx = tx.clone();
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let out = runner(spec, lease);
                    let _ = tx.send((j, t0.elapsed().as_secs_f64(), out));
                });
            }
            if running == 0 {
                // Nothing in flight: either the grid is drained or an
                // abort stopped dispatch. A blocked head with nothing
                // running is impossible — its dependency would be running.
                break;
            }
            let (j, dt, out) = rx.recv().expect("worker channel open");
            used -= leases[j];
            running -= 1;
            secs[j] = dt;
            let (st, payload) = match out {
                Ok(r) => (JobStatus::Completed, Some(r)),
                Err(e) => (JobStatus::Failed(e), None),
            };
            if !hook(Progress::Finished {
                id: &dag.jobs()[j].id,
                status: &st,
                secs: dt,
                result: payload.as_ref(),
            }) {
                aborted = true;
            }
            status[j] = Some(st);
            results[j] = payload;
        }
    });

    let outcomes = (0..n)
        .filter_map(|j| {
            status[j].clone().map(|st| JobOutcome {
                id: dag.jobs()[j].id.clone(),
                status: st,
                secs: secs[j],
            })
        })
        .collect();
    RunSummary {
        outcomes,
        results,
        aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::JobSpec;
    use std::sync::Mutex;

    fn dag(specs: Vec<JobSpec>) -> Dag {
        Dag::new(specs).unwrap()
    }

    fn ok_runner(
        log: &Mutex<Vec<String>>,
    ) -> impl Fn(&JobSpec, usize) -> Result<usize, String> + Sync + '_ {
        move |spec, lease| {
            log.lock().unwrap().push(spec.id.clone());
            Ok(lease)
        }
    }

    #[test]
    fn start_order_matches_schedule_order_at_any_budget() {
        let specs = || {
            vec![
                JobSpec::new("b1", &[], 1),
                JobSpec::new("b2", &[], 1),
                JobSpec::new("c1", &["b1"], 1),
                JobSpec::new("c2", &["b2", "b1"], 1),
                JobSpec::new("c3", &["b2"], 1),
            ]
        };
        let mut reference: Option<Vec<String>> = None;
        for budget in [1usize, 2, 4, 16] {
            let d = dag(specs());
            let mut starts = Vec::new();
            let summary = run_dag(
                &d,
                budget,
                &BTreeSet::new(),
                |spec, _| Ok::<_, String>(spec.id.clone()),
                |p| {
                    if let Progress::Started { spec, .. } = p {
                        starts.push(spec.id.clone());
                    }
                    true
                },
            );
            assert!(summary.all_terminal(&d));
            assert!(!summary.aborted);
            match &reference {
                None => reference = Some(starts),
                Some(r) => assert_eq!(&starts, r, "budget {budget} reordered starts"),
            }
        }
        assert_eq!(reference.unwrap(), ["b1", "b2", "c1", "c2", "c3"]);
    }

    #[test]
    fn failed_dependency_skips_dependents_transitively() {
        let d = dag(vec![
            JobSpec::new("root", &[], 1),
            JobSpec::new("mid", &["root"], 1),
            JobSpec::new("leaf", &["mid"], 1),
            JobSpec::new("free", &[], 1),
        ]);
        let summary = run_dag(
            &d,
            2,
            &BTreeSet::new(),
            |spec, _| {
                if spec.id == "root" {
                    Err("boom".to_string())
                } else {
                    Ok(spec.id.clone())
                }
            },
            |_| true,
        );
        let by_id = |id: &str| {
            summary
                .outcomes
                .iter()
                .find(|o| o.id == id)
                .unwrap()
                .status
                .clone()
        };
        assert_eq!(by_id("root"), JobStatus::Failed("boom".into()));
        assert_eq!(by_id("mid"), JobStatus::Skipped { dep: "root".into() });
        assert_eq!(by_id("leaf"), JobStatus::Skipped { dep: "mid".into() });
        assert_eq!(by_id("free"), JobStatus::Completed);
        assert!(summary.all_terminal(&d));
    }

    #[test]
    fn cached_jobs_do_not_run_but_unblock_dependents() {
        let log = Mutex::new(Vec::new());
        let d = dag(vec![
            JobSpec::new("base", &[], 1),
            JobSpec::new("leaf", &["base"], 1),
        ]);
        let cached: BTreeSet<String> = ["base".to_string()].into();
        let summary = run_dag(&d, 2, &cached, ok_runner(&log), |_| true);
        assert_eq!(*log.lock().unwrap(), ["leaf"]);
        assert_eq!(summary.outcomes[0].status, JobStatus::Cached);
        assert_eq!(summary.outcomes[1].status, JobStatus::Completed);
    }

    #[test]
    fn leases_clamp_to_budget() {
        let d = dag(vec![JobSpec::new("greedy", &[], 64)]);
        let summary = run_dag(
            &d,
            3,
            &BTreeSet::new(),
            |_, lease| Ok::<_, String>(lease),
            |_| true,
        );
        assert_eq!(summary.results[0], Some(3));
    }

    #[test]
    fn hook_false_aborts_gracefully() {
        let d = dag(vec![
            JobSpec::new("a", &[], 1),
            JobSpec::new("b", &[], 1),
            JobSpec::new("c", &[], 1),
        ]);
        let mut finished = 0usize;
        let summary = run_dag(
            &d,
            1,
            &BTreeSet::new(),
            |spec, _| Ok::<_, String>(spec.id.clone()),
            |p| {
                if matches!(p, Progress::Finished { .. }) {
                    finished += 1;
                    return finished < 2;
                }
                true
            },
        );
        assert!(summary.aborted);
        assert_eq!(summary.outcomes.len(), 2); // a, b terminal; c unreached
        assert!(!summary.all_terminal(&d));
    }
}
