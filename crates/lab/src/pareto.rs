//! The consolidated campaign report: job coverage + Pareto frontiers.
//!
//! Every completed job contributes [`ParetoPoint`]s (method, params, OPs,
//! accuracy) on its track; this module groups them per track, flags which
//! points sit on the params-vs-accuracy and OPs-vs-accuracy frontiers,
//! and renders one consolidated report — a text form next to a JSON form,
//! like every other artifact pair in the repo. The report also tables the
//! terminal state of *every* declared job (including cached and skipped
//! ones), so one file answers "which table/figure rows exist and where
//! did the numbers come from".

use std::collections::BTreeMap;

use alf_bench::report::{ParetoPoint, Table};
use alf_obs::JsonWriter;

use crate::scheduler::{JobOutcome, JobStatus};

/// One point with its frontier flags.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The contributed point.
    pub point: ParetoPoint,
    /// On the (params, accuracy) frontier: no method has fewer-or-equal
    /// params *and* greater-or-equal accuracy with one strict.
    pub on_params_frontier: bool,
    /// On the (OPs, accuracy) frontier.
    pub on_ops_frontier: bool,
}

/// All points of one track, sorted by ascending params.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackFrontier {
    /// Track name (`cifar`, `imagenet`).
    pub track: String,
    /// Flagged points.
    pub points: Vec<FrontierPoint>,
}

/// The campaign-level Pareto view.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParetoReport {
    /// One frontier per track, track-name order.
    pub tracks: Vec<TrackFrontier>,
}

fn dominated(points: &[ParetoPoint], i: usize, cost: impl Fn(&ParetoPoint) -> f64) -> bool {
    let p = &points[i];
    points.iter().enumerate().any(|(j, q)| {
        j != i
            && cost(q) <= cost(p)
            && q.accuracy >= p.accuracy
            && (cost(q) < cost(p) || q.accuracy > p.accuracy)
    })
}

/// Groups `points` per track and flags both frontiers.
pub fn consolidate(points: &[ParetoPoint]) -> ParetoReport {
    let mut by_track: BTreeMap<&str, Vec<ParetoPoint>> = BTreeMap::new();
    for p in points {
        by_track.entry(&p.track).or_default().push(p.clone());
    }
    let tracks = by_track
        .into_iter()
        .map(|(track, mut pts)| {
            pts.sort_by(|a, b| {
                a.params
                    .partial_cmp(&b.params)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.method.cmp(&b.method))
            });
            let points = (0..pts.len())
                .map(|i| FrontierPoint {
                    on_params_frontier: !dominated(&pts, i, |p| p.params),
                    on_ops_frontier: !dominated(&pts, i, |p| p.ops),
                    point: pts[i].clone(),
                })
                .collect();
            TrackFrontier {
                track: track.to_string(),
                points,
            }
        })
        .collect();
    ParetoReport { tracks }
}

fn status_cell(status: &JobStatus) -> String {
    match status {
        JobStatus::Failed(e) => format!("failed: {e}"),
        JobStatus::Skipped { dep } => format!("skipped (dep {dep})"),
        other => other.label().to_string(),
    }
}

/// Renders the consolidated text report: the per-job coverage table, then
/// one frontier table per track.
pub fn report_text(
    scale: &str,
    outcomes: &[JobOutcome],
    train_counts: &BTreeMap<String, u64>,
    report: &ParetoReport,
) -> String {
    let mut out = format!("alf-lab campaign report ({scale} scale)\n");
    let rows = outcomes
        .iter()
        .map(|o| {
            vec![
                o.id.clone(),
                status_cell(&o.status),
                if o.secs > 0.0 {
                    format!("{:.2}", o.secs)
                } else {
                    "-".to_string()
                },
            ]
        })
        .collect();
    out.push_str(&Table::new("job coverage", &["job", "status", "secs"], rows).to_text());
    if !train_counts.is_empty() {
        let rows = train_counts
            .iter()
            .map(|(id, n)| vec![id.clone(), n.to_string()])
            .collect();
        out.push_str(&Table::new("baseline trainings", &["baseline", "count"], rows).to_text());
    }
    for t in &report.tracks {
        let rows = t
            .points
            .iter()
            .map(|fp| {
                vec![
                    fp.point.method.clone(),
                    format!("{:.0}", fp.point.params),
                    format!("{:.0}", fp.point.ops),
                    format!("{:.1}%", 100.0 * fp.point.accuracy),
                    if fp.on_params_frontier { "*" } else { "" }.to_string(),
                    if fp.on_ops_frontier { "*" } else { "" }.to_string(),
                    fp.point.source.clone(),
                ]
            })
            .collect();
        out.push_str(
            &Table::new(
                &format!("{} pareto ( * = on frontier )", t.track),
                &[
                    "method", "params", "ops", "accuracy", "p-front", "o-front", "source",
                ],
                rows,
            )
            .to_text(),
        );
    }
    out
}

/// Renders the consolidated JSON report. `all_terminal` states whether
/// every declared job reached a terminal state this run — the bit
/// `scripts/verify.sh` asserts on.
pub fn report_json(
    scale: &str,
    outcomes: &[JobOutcome],
    all_terminal: bool,
    train_counts: &BTreeMap<String, u64>,
    metrics: &BTreeMap<String, BTreeMap<String, f64>>,
    report: &ParetoReport,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("campaign", "alf-lab");
    w.field_str("scale", scale);
    w.field_bool("all_terminal", all_terminal);
    w.key("jobs");
    w.begin_array();
    for o in outcomes {
        w.begin_object();
        w.field_str("id", &o.id);
        w.field_str("status", o.status.label());
        if let JobStatus::Failed(e) = &o.status {
            w.field_str("error", e);
        }
        if let JobStatus::Skipped { dep } = &o.status {
            w.field_str("skipped_on", dep);
        }
        w.field_f64("secs", o.secs);
        if let Some(m) = metrics.get(&o.id) {
            w.key("metrics");
            w.begin_object();
            for (k, v) in m {
                w.field_f64(k, *v);
            }
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.key("baseline_trainings");
    w.begin_object();
    for (id, n) in train_counts {
        w.field_u64(id, *n);
    }
    w.end_object();
    w.key("pareto");
    w.begin_array();
    for t in &report.tracks {
        w.begin_object();
        w.field_str("track", &t.track);
        w.key("points");
        w.begin_array();
        for fp in &t.points {
            w.begin_object();
            w.field_str("method", &fp.point.method);
            w.field_f64("params", fp.point.params);
            w.field_f64("ops", fp.point.ops);
            w.field_f64("accuracy", fp.point.accuracy);
            w.field_bool("on_params_frontier", fp.on_params_frontier);
            w.field_bool("on_ops_frontier", fp.on_ops_frontier);
            w.field_str("source", &fp.point.source);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(track: &str, method: &str, params: f64, ops: f64, acc: f64) -> ParetoPoint {
        ParetoPoint {
            track: track.into(),
            method: method.into(),
            params,
            ops,
            accuracy: acc,
            source: "test".into(),
        }
    }

    #[test]
    fn frontier_flags_dominated_points() {
        let report = consolidate(&[
            point("cifar", "big", 100.0, 100.0, 0.9),
            point("cifar", "small", 50.0, 50.0, 0.8),
            point("cifar", "bad", 120.0, 120.0, 0.7), // dominated by both
            point("imagenet", "only", 10.0, 10.0, 0.5),
        ]);
        assert_eq!(report.tracks.len(), 2);
        let cifar = &report.tracks[0];
        assert_eq!(cifar.track, "cifar");
        let flags: BTreeMap<&str, (bool, bool)> = cifar
            .points
            .iter()
            .map(|fp| {
                (
                    fp.point.method.as_str(),
                    (fp.on_params_frontier, fp.on_ops_frontier),
                )
            })
            .collect();
        assert_eq!(flags["big"], (true, true));
        assert_eq!(flags["small"], (true, true));
        assert_eq!(flags["bad"], (false, false));
        // Sorted by ascending params.
        assert_eq!(cifar.points[0].point.method, "small");
        // A lone point is trivially on both frontiers.
        assert!(report.tracks[1].points[0].on_params_frontier);
    }

    #[test]
    fn report_renders_every_outcome_and_track() {
        let outcomes = vec![
            JobOutcome {
                id: "baseline:plain20".into(),
                status: JobStatus::Cached,
                secs: 0.0,
            },
            JobOutcome {
                id: "table2".into(),
                status: JobStatus::Completed,
                secs: 2.0,
            },
            JobOutcome {
                id: "fig3".into(),
                status: JobStatus::Skipped {
                    dep: "baseline:alf-plain20".into(),
                },
                secs: 0.0,
            },
        ];
        let mut counts = BTreeMap::new();
        counts.insert("baseline:plain20".to_string(), 1);
        let pr = consolidate(&[point("cifar", "ALF", 1.0, 1.0, 0.9)]);
        let text = report_text("smoke", &outcomes, &counts, &pr);
        for needle in ["job coverage", "table2", "skipped (dep", "cifar pareto"] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        let mut metrics = BTreeMap::new();
        metrics.insert("table2".to_string(), {
            let mut m = BTreeMap::new();
            m.insert("acc".to_string(), 0.9);
            m
        });
        let json = report_json("smoke", &outcomes, true, &counts, &metrics, &pr);
        assert!(json.contains("\"all_terminal\":true"));
        assert!(json.contains("\"id\":\"table2\",\"status\":\"completed\""));
        assert!(json.contains("\"baseline_trainings\":{\"baseline:plain20\":1}"));
        assert!(json.contains("\"on_params_frontier\":true"));
    }
}
