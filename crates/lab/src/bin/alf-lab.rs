//! `alf-lab` — the results grid as one resumable, scheduled campaign.

fn main() -> std::process::ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = alf_lab::cli_main(&argv);
    std::process::ExitCode::from(u8::try_from(code).unwrap_or(1))
}
