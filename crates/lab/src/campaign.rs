//! The campaign manifest: a crash-tolerant, append-only record of
//! terminal job states.
//!
//! Layout (all integers little-endian), in the spirit of the core
//! checkpoint-v2 container:
//!
//! ```text
//! "ALFLAB01"                                  magic
//! frame*                                      header frame, then one
//!                                             frame per terminal job
//! frame := u32 len | payload (len bytes) | u32 crc32(payload)
//! ```
//!
//! The header payload pins the campaign scale and the DAG fingerprint
//! (job ids joined by `,`); resuming against a different grid or scale is
//! a typed [`CampaignError::Mismatch`] that tells the user to pass
//! `--fresh`, never a silent mixed manifest. Job payloads carry the full
//! terminal state — completed jobs include their metrics and Pareto
//! contributions, so a resumed campaign rebuilds its consolidated report
//! without re-running anything.
//!
//! Every frame is validated (length, CRC, full decode) *before* it is
//! trusted; a torn tail from a killed run is truncated away on load and
//! the campaign resumes from the last intact record. Frames are appended
//! with a single `write_all` after the record's artifacts are on disk, so
//! a record in the manifest implies its artifacts exist.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::OpenOptions;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

use alf_bench::report::ParetoPoint;
use alf_obs::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 8] = b"ALFLAB01";
/// Frames larger than this are rejected as corruption, not allocated.
const MAX_FRAME: u32 = 64 << 20;

const TAG_COMPLETED: u32 = 1;
const TAG_FAILED: u32 = 2;
const TAG_SKIPPED: u32 = 3;

/// Terminal state persisted for one job.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordStatus {
    /// Completed, with the measurements the campaign report needs.
    Completed {
        /// Wall-clock seconds the job ran.
        secs: f64,
        /// The job's flat metrics.
        metrics: BTreeMap<String, f64>,
        /// The job's Pareto contributions.
        pareto: Vec<ParetoPoint>,
    },
    /// Failed with this error (re-run on resume).
    Failed {
        /// The error string.
        error: String,
    },
    /// Skipped because `dep` did not succeed (re-run on resume).
    Skipped {
        /// The unsuccessful dependency.
        dep: String,
    },
}

/// One manifest record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id.
    pub id: String,
    /// Persisted terminal state.
    pub status: RecordStatus,
}

/// Why the manifest cannot be used.
#[derive(Debug)]
pub enum CampaignError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a manifest (bad magic, undecodable intact frame).
    Corrupt {
        /// Manifest path.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// The manifest belongs to a different campaign; re-run with
    /// `--fresh` to discard it.
    Mismatch {
        /// Manifest path.
        path: PathBuf,
        /// `scale/fingerprint` this campaign wants.
        expected: String,
        /// `scale/fingerprint` the file holds.
        found: String,
    },
    /// A shared baseline trained more than once (or never, despite a
    /// completed campaign) — the exactly-once invariant is broken.
    BaselineRetrained {
        /// Baseline job id.
        id: String,
        /// Observed training count.
        count: u64,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "manifest i/o: {e}"),
            CampaignError::Corrupt { path, detail } => {
                write!(f, "manifest {} is corrupt: {detail}", path.display())
            }
            CampaignError::Mismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "manifest {} belongs to a different campaign (found {found}, expected \
                 {expected}); pass --fresh to discard it",
                path.display()
            ),
            CampaignError::BaselineRetrained { id, count } => write!(
                f,
                "exactly-once violation: {id} trained {count} times this campaign"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(u32::try_from(s.len()).expect("string fits u32"));
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, String> {
    if buf.remaining() < 4 {
        return Err("truncated string length".into());
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(format!("string of {len} bytes overruns frame"));
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| "string is not UTF-8".into())
}

fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_u64_le(v.to_bits());
}

fn get_f64(buf: &mut Bytes) -> Result<f64, String> {
    if buf.remaining() < 8 {
        return Err("truncated f64".into());
    }
    Ok(f64::from_bits(buf.get_u64_le()))
}

fn get_u32(buf: &mut Bytes) -> Result<u32, String> {
    if buf.remaining() < 4 {
        return Err("truncated u32".into());
    }
    Ok(buf.get_u32_le())
}

fn encode_header(scale: &str, fingerprint: &str) -> Bytes {
    let mut buf = BytesMut::new();
    put_string(&mut buf, scale);
    put_string(&mut buf, fingerprint);
    buf.freeze()
}

fn decode_header(mut payload: Bytes) -> Result<(String, String), String> {
    let scale = get_string(&mut payload)?;
    let fingerprint = get_string(&mut payload)?;
    if payload.remaining() != 0 {
        return Err("trailing bytes after header".into());
    }
    Ok((scale, fingerprint))
}

fn encode_record(rec: &JobRecord) -> Bytes {
    let mut buf = BytesMut::new();
    match &rec.status {
        RecordStatus::Completed {
            secs,
            metrics,
            pareto,
        } => {
            buf.put_u32_le(TAG_COMPLETED);
            put_string(&mut buf, &rec.id);
            put_f64(&mut buf, *secs);
            buf.put_u32_le(u32::try_from(metrics.len()).expect("metric count fits u32"));
            for (k, v) in metrics {
                put_string(&mut buf, k);
                put_f64(&mut buf, *v);
            }
            buf.put_u32_le(u32::try_from(pareto.len()).expect("pareto count fits u32"));
            for p in pareto {
                put_string(&mut buf, &p.track);
                put_string(&mut buf, &p.method);
                put_f64(&mut buf, p.params);
                put_f64(&mut buf, p.ops);
                put_f64(&mut buf, p.accuracy);
                put_string(&mut buf, &p.source);
            }
        }
        RecordStatus::Failed { error } => {
            buf.put_u32_le(TAG_FAILED);
            put_string(&mut buf, &rec.id);
            put_string(&mut buf, error);
        }
        RecordStatus::Skipped { dep } => {
            buf.put_u32_le(TAG_SKIPPED);
            put_string(&mut buf, &rec.id);
            put_string(&mut buf, dep);
        }
    }
    buf.freeze()
}

fn decode_record(mut payload: Bytes) -> Result<JobRecord, String> {
    let tag = get_u32(&mut payload)?;
    let id = get_string(&mut payload)?;
    let status = match tag {
        TAG_COMPLETED => {
            let secs = get_f64(&mut payload)?;
            let n = get_u32(&mut payload)? as usize;
            let mut metrics = BTreeMap::new();
            for _ in 0..n {
                let k = get_string(&mut payload)?;
                let v = get_f64(&mut payload)?;
                metrics.insert(k, v);
            }
            let n = get_u32(&mut payload)? as usize;
            let mut pareto = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                pareto.push(ParetoPoint {
                    track: get_string(&mut payload)?,
                    method: get_string(&mut payload)?,
                    params: get_f64(&mut payload)?,
                    ops: get_f64(&mut payload)?,
                    accuracy: get_f64(&mut payload)?,
                    source: get_string(&mut payload)?,
                });
            }
            RecordStatus::Completed {
                secs,
                metrics,
                pareto,
            }
        }
        TAG_FAILED => RecordStatus::Failed {
            error: get_string(&mut payload)?,
        },
        TAG_SKIPPED => RecordStatus::Skipped {
            dep: get_string(&mut payload)?,
        },
        other => return Err(format!("unknown record tag {other}")),
    };
    if payload.remaining() != 0 {
        return Err("trailing bytes after record".into());
    }
    Ok(JobRecord { id, status })
}

fn frame(payload: &Bytes) -> Vec<u8> {
    let body = payload.clone().to_vec();
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(
        &u32::try_from(body.len())
            .expect("frame fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Splits raw bytes (after the magic) into intact frame payloads,
/// returning them with the byte offset just past the last intact frame.
/// A short/CRC-failing tail ends the walk (torn write); it is *not* an
/// error here — the caller truncates it away.
fn split_frames(raw: &[u8]) -> (Vec<Bytes>, usize) {
    let mut frames = Vec::new();
    let mut at = 0usize;
    loop {
        if raw.len() - at < 4 {
            break;
        }
        let mut head = Bytes::copy_from_slice(&raw[at..at + 4]);
        let len = head.get_u32_le() as usize;
        if len > MAX_FRAME as usize || raw.len() - at < 4 + len + 4 {
            break;
        }
        let payload = &raw[at + 4..at + 4 + len];
        let mut tail = Bytes::copy_from_slice(&raw[at + 4 + len..at + 8 + len]);
        if tail.get_u32_le() != crc32(payload) {
            break;
        }
        frames.push(Bytes::copy_from_slice(payload));
        at += 8 + len;
    }
    (frames, at)
}

/// A cached job's persisted measurements: `(secs, metrics, pareto)`.
pub type CompletedPayload = (f64, BTreeMap<String, f64>, Vec<ParetoPoint>);

/// The loaded state of a campaign manifest plus its append handle.
#[derive(Debug)]
pub struct ManifestFile {
    file: std::fs::File,
    path: PathBuf,
    records: Vec<JobRecord>,
}

impl ManifestFile {
    /// Creates a fresh manifest at `path` (truncating any existing file)
    /// with a header pinning `scale` and `fingerprint`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(path: &Path, scale: &str, fingerprint: &str) -> Result<Self, CampaignError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        file.write_all(&frame(&encode_header(scale, fingerprint)))?;
        file.flush()?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            records: Vec::new(),
        })
    }

    /// Opens an existing manifest for resuming, or creates a fresh one
    /// when `path` does not exist (or `fresh` is set). On open, validates
    /// the magic and header against `scale`/`fingerprint`, decodes every
    /// intact record, truncates a torn tail, and positions the handle for
    /// appending.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Corrupt`] for a non-manifest file,
    /// [`CampaignError::Mismatch`] for a different campaign's manifest,
    /// or I/O errors.
    pub fn load_or_create(
        path: &Path,
        scale: &str,
        fingerprint: &str,
        fresh: bool,
    ) -> Result<Self, CampaignError> {
        if fresh || !path.exists() {
            return Self::create(path, scale, fingerprint);
        }
        let corrupt = |detail: String| CampaignError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let mut raw = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut raw)?;
        if raw.len() < MAGIC.len() || &raw[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let (frames, mut intact_end) = split_frames(&raw[MAGIC.len()..]);
        intact_end += MAGIC.len();
        let Some((header, body)) = frames.split_first() else {
            // Magic but no intact header: a run killed mid-create.
            return Self::create(path, scale, fingerprint);
        };
        let (got_scale, got_fp) =
            decode_header(header.clone()).map_err(|e| corrupt(format!("header: {e}")))?;
        if got_scale != scale || got_fp != fingerprint {
            return Err(CampaignError::Mismatch {
                path: path.to_path_buf(),
                expected: format!("{scale}/{fingerprint}"),
                found: format!("{got_scale}/{got_fp}"),
            });
        }
        let mut records = Vec::with_capacity(body.len());
        for (i, payload) in body.iter().enumerate() {
            records.push(
                decode_record(payload.clone()).map_err(|e| corrupt(format!("record {i}: {e}")))?,
            );
        }
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(u64::try_from(intact_end).expect("file length fits u64"))?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            records,
        })
    }

    /// Manifest path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records loaded at open plus those appended since, in order.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Ids with a `Completed` record (last record per id wins) — the
    /// cache set a resumed campaign skips.
    pub fn completed_ids(&self) -> BTreeSet<String> {
        let mut last: BTreeMap<&str, bool> = BTreeMap::new();
        for r in &self.records {
            last.insert(&r.id, matches!(r.status, RecordStatus::Completed { .. }));
        }
        last.into_iter()
            .filter(|(_, done)| *done)
            .map(|(id, _)| id.to_string())
            .collect()
    }

    /// The latest `Completed` payload per id — metrics and Pareto points
    /// a resumed campaign feeds into its consolidated report.
    pub fn completed_payloads(&self) -> BTreeMap<String, CompletedPayload> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            match &r.status {
                RecordStatus::Completed {
                    secs,
                    metrics,
                    pareto,
                } => {
                    out.insert(r.id.clone(), (*secs, metrics.clone(), pareto.clone()));
                }
                _ => {
                    out.remove(&r.id);
                }
            }
        }
        out
    }

    /// Appends one record: the frame is built and self-validated in full
    /// (decode of its own bytes must round-trip) before a single
    /// `write_all` commits it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if the encoder does not round-trip its own record — a
    /// programming error, never an input condition.
    pub fn append(&mut self, rec: &JobRecord) -> Result<(), CampaignError> {
        let payload = encode_record(rec);
        let decoded = decode_record(payload.clone()).expect("record round-trips");
        assert_eq!(&decoded, rec, "record round-trips losslessly");
        self.file.write_all(&frame(&payload))?;
        self.file.flush()?;
        self.records.push(rec.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("alf_lab_{}_{name}", std::process::id()))
    }

    fn completed(id: &str) -> JobRecord {
        let mut metrics = BTreeMap::new();
        metrics.insert("acc".to_string(), 0.75);
        metrics.insert("ops".to_string(), 1.25e9);
        JobRecord {
            id: id.to_string(),
            status: RecordStatus::Completed {
                secs: 1.5,
                metrics,
                pareto: vec![ParetoPoint {
                    track: "cifar".into(),
                    method: "ALF".into(),
                    params: 100.0,
                    ops: 200.0,
                    accuracy: 0.75,
                    source: id.to_string(),
                }],
            },
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn records_roundtrip_through_a_reload() {
        let path = tmp("roundtrip.manifest");
        let _ = std::fs::remove_file(&path);
        let mut m = ManifestFile::create(&path, "smoke", "a,b").unwrap();
        m.append(&completed("a")).unwrap();
        m.append(&JobRecord {
            id: "b".into(),
            status: RecordStatus::Failed {
                error: "boom".into(),
            },
        })
        .unwrap();
        drop(m);
        let m = ManifestFile::load_or_create(&path, "smoke", "a,b", false).unwrap();
        assert_eq!(m.records().len(), 2);
        assert_eq!(m.records()[0], completed("a"));
        assert_eq!(m.completed_ids(), ["a".to_string()].into());
        let payloads = m.completed_payloads();
        assert_eq!(payloads["a"].0, 1.5);
        assert_eq!(payloads["a"].1["acc"], 0.75);
        assert_eq!(payloads["a"].2.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = tmp("torn.manifest");
        let _ = std::fs::remove_file(&path);
        let mut m = ManifestFile::create(&path, "smoke", "a,b").unwrap();
        m.append(&completed("a")).unwrap();
        drop(m);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a kill mid-append: garbage half-frame at the tail.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[9, 0, 0, 0, 1, 2, 3]);
        std::fs::write(&path, &raw).unwrap();
        let mut m = ManifestFile::load_or_create(&path, "smoke", "a,b", false).unwrap();
        assert_eq!(m.records().len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        m.append(&completed("b")).unwrap();
        drop(m);
        let m = ManifestFile::load_or_create(&path, "smoke", "a,b", false).unwrap();
        assert_eq!(m.completed_ids().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatch_and_corruption_are_typed() {
        let path = tmp("mismatch.manifest");
        let _ = std::fs::remove_file(&path);
        drop(ManifestFile::create(&path, "smoke", "a,b").unwrap());
        match ManifestFile::load_or_create(&path, "paper", "a,b", false) {
            Err(CampaignError::Mismatch {
                found, expected, ..
            }) => {
                assert_eq!(found, "smoke/a,b");
                assert_eq!(expected, "paper/a,b");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        // --fresh recovers.
        assert!(ManifestFile::load_or_create(&path, "paper", "a,b", true).is_ok());
        std::fs::write(&path, b"not a manifest").unwrap();
        match ManifestFile::load_or_create(&path, "smoke", "a,b", false) {
            Err(CampaignError::Corrupt { detail, .. }) => assert_eq!(detail, "bad magic"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rerun_overrides_earlier_failure() {
        let path = tmp("override.manifest");
        let _ = std::fs::remove_file(&path);
        let mut m = ManifestFile::create(&path, "smoke", "a").unwrap();
        m.append(&JobRecord {
            id: "a".into(),
            status: RecordStatus::Failed {
                error: "flaky".into(),
            },
        })
        .unwrap();
        assert!(m.completed_ids().is_empty());
        m.append(&completed("a")).unwrap();
        assert_eq!(m.completed_ids(), ["a".to_string()].into());
        let _ = std::fs::remove_file(&path);
    }
}
