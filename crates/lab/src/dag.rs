//! The campaign's job graph and its deterministic schedule order.
//!
//! A [`Dag`] is a validated list of [`JobSpec`]s: every dependency must
//! name a declared job, ids are unique, and the graph is acyclic (a cycle
//! is a typed [`DagError::Cycle`] carrying the offending path, not a
//! hang). Validation also precomputes [`Dag::schedule_order`] — a
//! topological order built by Kahn's algorithm with a min-heap on
//! *declaration index* as the tie-break. The scheduler dispatches
//! strictly in that order, which is what makes campaign start order
//! identical at any worker count: declaration order is the only tie-break
//! and it is data, not timing.

use std::collections::BTreeMap;

/// One schedulable job: a stable id, the ids it depends on, and the
/// thread lease its body wants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Stable id (manifest key, artifact stem, CLI selector).
    pub id: String,
    /// Ids of jobs that must complete successfully first.
    pub deps: Vec<String>,
    /// Workers the job's internal fan-out wants (clamped to the budget).
    pub threads: usize,
}

impl JobSpec {
    /// Builds a spec from string-ish parts.
    pub fn new(id: impl Into<String>, deps: &[&str], threads: usize) -> Self {
        Self {
            id: id.into(),
            deps: deps.iter().map(|d| (*d).to_string()).collect(),
            threads,
        }
    }
}

/// Why a job list does not form a runnable DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Two jobs share an id.
    DuplicateId(String),
    /// A dependency names no declared job.
    UnknownDep {
        /// Job whose dependency list is bad.
        job: String,
        /// The undeclared dependency id.
        dep: String,
    },
    /// The graph contains a dependency cycle; the path lists the ids in
    /// cycle order (first id repeated at the end).
    Cycle(Vec<String>),
    /// A `--only` selector names no declared job.
    UnknownJob(String),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::DuplicateId(id) => write!(f, "duplicate job id '{id}'"),
            DagError::UnknownDep { job, dep } => {
                write!(f, "job '{job}' depends on undeclared job '{dep}'")
            }
            DagError::Cycle(path) => write!(f, "dependency cycle: {}", path.join(" -> ")),
            DagError::UnknownJob(id) => write!(f, "unknown job '{id}'"),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated job graph with a precomputed deterministic schedule order.
#[derive(Debug, Clone)]
pub struct Dag {
    jobs: Vec<JobSpec>,
    index: BTreeMap<String, usize>,
    order: Vec<usize>,
}

impl Dag {
    /// Validates `jobs` and precomputes the schedule order.
    ///
    /// # Errors
    ///
    /// [`DagError::DuplicateId`], [`DagError::UnknownDep`] or
    /// [`DagError::Cycle`] when the list is not a runnable DAG.
    pub fn new(jobs: Vec<JobSpec>) -> Result<Self, DagError> {
        let mut index = BTreeMap::new();
        for (i, job) in jobs.iter().enumerate() {
            if index.insert(job.id.clone(), i).is_some() {
                return Err(DagError::DuplicateId(job.id.clone()));
            }
        }
        for job in &jobs {
            for dep in &job.deps {
                if !index.contains_key(dep) {
                    return Err(DagError::UnknownDep {
                        job: job.id.clone(),
                        dep: dep.clone(),
                    });
                }
            }
        }
        let order = schedule_order(&jobs, &index)?;
        Ok(Self { jobs, index, order })
    }

    /// The jobs, in declaration order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Declaration index of `id`, if declared.
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.index.get(id).copied()
    }

    /// Topological dispatch order (declaration indices): Kahn's algorithm
    /// with min-declaration-index tie-break, identical for every worker
    /// count.
    pub fn schedule_order(&self) -> &[usize] {
        &self.order
    }

    /// Stable fingerprint of the declared grid — job ids joined by `,`.
    /// The campaign manifest stores it so a resume against a *different*
    /// grid is a typed mismatch instead of silent corruption.
    pub fn fingerprint(&self) -> String {
        self.jobs
            .iter()
            .map(|j| j.id.as_str())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The sub-DAG of `wanted` plus every transitive dependency, in the
    /// original declaration order (so the schedule tie-break is unchanged
    /// under `--only`).
    ///
    /// # Errors
    ///
    /// [`DagError::UnknownJob`] when a selector names no declared job.
    pub fn restrict(&self, wanted: &[String]) -> Result<Dag, DagError> {
        let mut keep = vec![false; self.jobs.len()];
        let mut stack = Vec::new();
        for id in wanted {
            match self.index_of(id) {
                Some(i) => stack.push(i),
                None => return Err(DagError::UnknownJob(id.clone())),
            }
        }
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut keep[i], true) {
                continue;
            }
            for dep in &self.jobs[i].deps {
                stack.push(self.index[dep.as_str()]);
            }
        }
        let jobs = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(i, _)| keep[*i])
            .map(|(_, j)| j.clone())
            .collect();
        Dag::new(jobs)
    }
}

/// Kahn's algorithm with a min-heap keyed on declaration index. Returns
/// the dispatch order, or extracts a cycle when one exists.
fn schedule_order(
    jobs: &[JobSpec],
    index: &BTreeMap<String, usize>,
) -> Result<Vec<usize>, DagError> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = jobs.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, job) in jobs.iter().enumerate() {
        for dep in &job.deps {
            let d = index[dep];
            indegree[i] += 1;
            dependents[d].push(i);
        }
    }
    let mut ready: BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&i| indegree[i] == 0).map(Reverse).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(i)) = ready.pop() {
        order.push(i);
        for &j in &dependents[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push(Reverse(j));
            }
        }
    }
    if order.len() < n {
        return Err(DagError::Cycle(find_cycle(jobs, index, &indegree)));
    }
    Ok(order)
}

/// Walks the residual graph (nodes with leftover in-degree) following one
/// dependency per step until a node repeats, then returns the loop as
/// `a -> b -> ... -> a`.
fn find_cycle(
    jobs: &[JobSpec],
    index: &BTreeMap<String, usize>,
    indegree: &[usize],
) -> Vec<String> {
    let start = indegree
        .iter()
        .position(|&d| d > 0)
        .expect("cycle exists in residual graph");
    let mut seen_at = BTreeMap::new();
    let mut path = Vec::new();
    let mut cur = start;
    loop {
        if let Some(&first) = seen_at.get(&cur) {
            let mut cycle: Vec<String> = path[first..]
                .iter()
                .map(|&i: &usize| jobs[i].id.clone())
                .collect();
            cycle.push(jobs[cur].id.clone());
            return cycle;
        }
        seen_at.insert(cur, path.len());
        path.push(cur);
        cur = jobs[cur]
            .deps
            .iter()
            .map(|d| index[d])
            .find(|&d| indegree[d] > 0)
            .expect("residual node keeps a residual dependency");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str, deps: &[&str]) -> JobSpec {
        JobSpec::new(id, deps, 1)
    }

    #[test]
    fn schedule_order_is_topological_and_declaration_tiebroken() {
        let dag = Dag::new(vec![
            spec("c", &["a"]),
            spec("a", &[]),
            spec("b", &[]),
            spec("d", &["b", "c"]),
        ])
        .unwrap();
        // a (idx 1) and b (idx 2) start ready; a wins the tie, which
        // readies c (idx 0), and c's lower declaration index beats b.
        assert_eq!(dag.schedule_order(), &[1, 0, 2, 3]);
        assert_eq!(dag.fingerprint(), "c,a,b,d");
    }

    #[test]
    fn duplicate_and_unknown_are_typed() {
        assert_eq!(
            Dag::new(vec![spec("a", &[]), spec("a", &[])]).unwrap_err(),
            DagError::DuplicateId("a".into())
        );
        assert_eq!(
            Dag::new(vec![spec("a", &["ghost"])]).unwrap_err(),
            DagError::UnknownDep {
                job: "a".into(),
                dep: "ghost".into()
            }
        );
    }

    #[test]
    fn cycle_is_reported_with_its_path() {
        let err = Dag::new(vec![
            spec("a", &["c"]),
            spec("b", &["a"]),
            spec("c", &["b"]),
            spec("free", &[]),
        ])
        .unwrap_err();
        match err {
            DagError::Cycle(path) => {
                assert_eq!(path.first(), path.last());
                assert_eq!(path.len(), 4); // three nodes + repeated head
                for id in ["a", "b", "c"] {
                    assert!(path.contains(&id.to_string()), "{path:?} misses {id}");
                }
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn restrict_pulls_transitive_deps_and_keeps_declaration_order() {
        let dag = Dag::new(vec![
            spec("base", &[]),
            spec("mid", &["base"]),
            spec("leaf", &["mid"]),
            spec("other", &[]),
        ])
        .unwrap();
        let sub = dag.restrict(&["leaf".to_string()]).unwrap();
        let ids: Vec<&str> = sub.jobs().iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids, ["base", "mid", "leaf"]);
        assert_eq!(
            dag.restrict(&["ghost".to_string()]).unwrap_err(),
            DagError::UnknownJob("ghost".into())
        );
    }
}
