//! `alf-lab` — the paper's result grid as one resumable, scheduled
//! campaign.
//!
//! Every figure, table and ablation of the ALF reproduction is declared
//! as a job in one DAG (`alf_bench::jobs::JobKind::grid`): shared
//! `baseline:*` trainings feed the consumers, so each reference model
//! trains exactly once per campaign — an invariant the runner asserts
//! from artifact-store telemetry rather than hopes for. The crate splits
//! into:
//!
//! * [`dag`] — the validated graph with a precomputed deterministic
//!   schedule order (Kahn's algorithm, declaration-index tie-break);
//! * [`scheduler`] — budgeted dispatch in exactly that order, with
//!   per-job thread leases and a progress hook that can abort;
//! * [`campaign`] — the CRC-framed append-only manifest that makes a
//!   killed campaign resumable (completed jobs skip; their metrics
//!   survive into the report);
//! * [`pareto`] — the consolidated coverage + Pareto-frontier report;
//! * [`runner`] — the glue, plus [`cli_main`] for the `alf-lab` binary
//!   and the `alf lab` subcommand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod dag;
pub mod pareto;
pub mod runner;
pub mod scheduler;

pub use runner::{run_campaign, CampaignOpts, CampaignSummary, LabError};

use alf_bench::jobs::JobKind;
use alf_bench::report::Table;
use alf_bench::BenchArgs;

const USAGE: &str = "\
alf-lab — run the ALF results grid as one resumable campaign

USAGE:
    alf-lab [run] [OPTIONS]    run (or resume) the campaign
    alf-lab list               print the declared job grid

OPTIONS:
    --scale {smoke|paper} | --smoke | --paper   experiment scale (default smoke)
    --jobs N          worker budget (default: $ALF_LAB_THREADS, then host cores)
    --out DIR         artifact directory (default: results)
    --only a,b,c      run only these jobs (plus transitive dependencies)
    --fresh           discard the existing manifest instead of resuming
    --abort-after N   abort after N job completions, exit 70 (kill simulation)

EXIT CODES:
    0  campaign finished, every job succeeded
    1  usage/campaign error, or some job failed or was skipped
    70 campaign aborted by --abort-after (resume by re-running)
";

/// Renders the declared grid (`alf-lab list`).
fn grid_table() -> String {
    let rows = JobKind::grid()
        .into_iter()
        .map(|j| {
            vec![
                j.id().to_string(),
                j.threads().to_string(),
                j.deps()
                    .into_iter()
                    .map(|d| d.id().to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            ]
        })
        .collect();
    Table::new("declared job grid", &["job", "lease", "depends on"], rows).to_text()
}

/// The `alf-lab` entry point, reusable from the `alf` facade binary.
/// Returns the process exit code (see [`USAGE`]'s exit-code table).
#[must_use]
pub fn cli_main(argv: &[String]) -> i32 {
    let mut argv = argv.to_vec();
    match argv.first().map(String::as_str) {
        Some("list") => {
            print!("{}", grid_table());
            return 0;
        }
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            return 0;
        }
        Some("run") => {
            argv.remove(0);
        }
        _ => {}
    }
    let opts = match parse_opts(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("alf-lab: {msg}\n\n{USAGE}");
            return 1;
        }
    };
    match run_campaign(&opts) {
        Ok(summary) => {
            print!("{}", summary.report);
            println!(
                "report: {} / {}",
                summary.report_txt.display(),
                summary.report_json.display()
            );
            if summary.aborted {
                eprintln!("campaign aborted by --abort-after; re-run to resume");
                70
            } else {
                i32::from(summary.has_failures())
            }
        }
        Err(e) => {
            eprintln!("alf-lab: {e}");
            1
        }
    }
}

fn parse_opts(argv: &[String]) -> Result<CampaignOpts, String> {
    let mut args = BenchArgs::from_argv(argv)?;
    let mut opts = CampaignOpts::new(args.scale);
    opts.jobs = args.jobs;
    opts.out = args.out_dir();
    opts.fresh = args.flag("fresh");
    if let Some(list) = args.value("only")? {
        let ids: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if ids.is_empty() {
            return Err("--only needs at least one job id".into());
        }
        opts.only = Some(ids);
    }
    if let Some(n) = args.value("abort-after")? {
        let n: usize = n
            .parse()
            .map_err(|_| format!("--abort-after: bad value '{n}'"))?;
        if n == 0 {
            return Err("--abort-after must be >= 1".into());
        }
        opts.abort_after = Some(n);
    }
    args.finish()?;
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn opts_parse_the_full_surface() {
        let opts = parse_opts(&argv(&[
            "--paper",
            "--jobs",
            "3",
            "--out",
            "camp",
            "--fresh",
            "--only",
            "headline, fig3",
            "--abort-after",
            "2",
        ]))
        .unwrap();
        assert_eq!(opts.scale, alf_bench::Scale::Paper);
        assert_eq!(opts.jobs, Some(3));
        assert_eq!(opts.out, std::path::PathBuf::from("camp"));
        assert!(opts.fresh);
        assert_eq!(
            opts.only.as_deref(),
            Some(&["headline".to_string(), "fig3".to_string()][..])
        );
        assert_eq!(opts.abort_after, Some(2));
    }

    #[test]
    fn bad_opts_are_rejected() {
        assert!(parse_opts(&argv(&["--abort-after", "0"])).is_err());
        assert!(parse_opts(&argv(&["--only", ""])).is_err());
        assert!(parse_opts(&argv(&["--wat"])).is_err());
    }

    #[test]
    fn grid_table_lists_every_job() {
        let t = grid_table();
        for j in JobKind::grid() {
            assert!(t.contains(j.id()), "grid table misses {}", j.id());
        }
    }
}
