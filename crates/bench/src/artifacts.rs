//! Shared training artifacts: each reference model trains exactly once.
//!
//! The results grid keeps re-using the same handful of trained
//! references — the vanilla Plain-20/ResNet-20, their ALF counterparts,
//! and the synth-ImageNet ResNet-18 pair. Before this module each binary
//! re-trained them from scratch under its own ad-hoc seeds; the
//! [`ArtifactStore`] pins one canonical `(dataset, model seed, trainer
//! seed)` triple per [`BaselineKind`] and caches the trained result, so
//!
//! * a standalone binary gets its references lazily on first use, and
//! * the `alf-lab` DAG runs each `baseline:*` job once, after which every
//!   consumer job hits the cache — asserted end-to-end through
//!   [`ArtifactStore::train_counts`].
//!
//! Training is deterministic for a given triple (see
//! `alf_core::train::train_seeded`), so a cached artifact is bitwise what
//! a fresh training would produce.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use alf_core::models::{plain20, plain20_alf, resnet18_small, resnet20, resnet20_alf, ConvStyle};
use alf_core::train::{train_seeded, TrainReport};
use alf_core::{CnnModel, Result};
use alf_data::Dataset;

use crate::{CifarConfig, ImagenetConfig, Scale};

/// Seed of the canonical synth-CIFAR dataset every CIFAR-track job shares.
pub const CIFAR_DATA_SEED: u64 = 42;
/// Seed of the canonical synth-ImageNet dataset.
pub const IMAGENET_DATA_SEED: u64 = 77;

/// The shared trained references of the results grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Vanilla Plain-20 on synth-CIFAR.
    Plain20,
    /// Vanilla ResNet-20 on synth-CIFAR.
    Resnet20,
    /// ALF Plain-20 on synth-CIFAR (paper-default block/schedule).
    AlfPlain20,
    /// ALF ResNet-20 on synth-CIFAR.
    AlfResnet20,
    /// Vanilla ResNet-18-small on synth-ImageNet.
    ImagenetResnet18,
    /// ALF ResNet-18-small on synth-ImageNet.
    ImagenetAlfResnet18,
}

impl BaselineKind {
    /// Every baseline, in canonical (job-declaration) order.
    pub const ALL: [BaselineKind; 6] = [
        BaselineKind::Plain20,
        BaselineKind::Resnet20,
        BaselineKind::AlfPlain20,
        BaselineKind::AlfResnet20,
        BaselineKind::ImagenetResnet18,
        BaselineKind::ImagenetAlfResnet18,
    ];

    /// Stable id, doubling as the DAG job id.
    pub fn id(self) -> &'static str {
        match self {
            BaselineKind::Plain20 => "baseline:plain20",
            BaselineKind::Resnet20 => "baseline:resnet20",
            BaselineKind::AlfPlain20 => "baseline:alf-plain20",
            BaselineKind::AlfResnet20 => "baseline:alf-resnet20",
            BaselineKind::ImagenetResnet18 => "baseline:imagenet-resnet18",
            BaselineKind::ImagenetAlfResnet18 => "baseline:imagenet-alf-resnet18",
        }
    }

    /// Human label for report rows.
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::Plain20 => "Plain-20",
            BaselineKind::Resnet20 => "ResNet-20",
            BaselineKind::AlfPlain20 => "ALF Plain-20",
            BaselineKind::AlfResnet20 => "ALF ResNet-20",
            BaselineKind::ImagenetResnet18 => "ResNet-18",
            BaselineKind::ImagenetAlfResnet18 => "ALF ResNet-18",
        }
    }

    /// Canonical model/trainer seed: distinct per kind, fixed forever so
    /// cached artifacts and fresh trainings agree.
    fn seed(self) -> u64 {
        match self {
            BaselineKind::Plain20 => 1,
            BaselineKind::Resnet20 => 2,
            BaselineKind::AlfPlain20 => 3,
            BaselineKind::AlfResnet20 => 4,
            BaselineKind::ImagenetResnet18 => 5,
            BaselineKind::ImagenetAlfResnet18 => 6,
        }
    }

    /// Whether the baseline trains on the ImageNet track.
    pub fn is_imagenet(self) -> bool {
        matches!(
            self,
            BaselineKind::ImagenetResnet18 | BaselineKind::ImagenetAlfResnet18
        )
    }
}

/// One trained shared reference.
#[derive(Debug)]
pub struct Baseline {
    /// Which reference this is.
    pub kind: BaselineKind,
    /// The trained model.
    pub model: CnnModel,
    /// Full per-epoch training trace.
    pub report: TrainReport,
    /// Per-ALF-block keep ratios (empty for vanilla models).
    pub ratios: Vec<f32>,
}

/// Scale-pinned cache of datasets and trained baselines.
pub struct ArtifactStore {
    scale: Scale,
    /// Evaluator fan-out cap passed to every baseline training (the
    /// baseline jobs' thread lease); `None` keeps the host default.
    threads: Option<usize>,
    cifar: Mutex<Option<Arc<Dataset>>>,
    imagenet: Mutex<Option<Arc<Dataset>>>,
    /// One slot per [`BaselineKind::ALL`] entry. Each slot's lock is held
    /// *through* training, so concurrent requests for the same kind (a
    /// resumed campaign whose consumers outran their skipped baseline
    /// jobs) serialise on the slot and the second caller hits the cache —
    /// exactly-once training is structural, not scheduling luck.
    baselines: [Mutex<Option<Arc<Baseline>>>; BaselineKind::ALL.len()],
    /// Completed trainings per baseline id — the telemetry the campaign
    /// asserts "each reference trained exactly once" with.
    trainings: Mutex<BTreeMap<String, u64>>,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("scale", &self.scale)
            .finish_non_exhaustive()
    }
}

impl ArtifactStore {
    /// Empty store for a scale, training with the host-default thread
    /// budget.
    pub fn new(scale: Scale) -> Self {
        Self::with_threads(scale, None)
    }

    /// Empty store whose baseline trainings are capped at `threads`
    /// evaluator workers (the lease a campaign scheduler grants its
    /// `baseline:*` jobs).
    pub fn with_threads(scale: Scale, threads: Option<usize>) -> Self {
        Self {
            scale,
            threads,
            cifar: Mutex::new(None),
            imagenet: Mutex::new(None),
            baselines: std::array::from_fn(|_| Mutex::new(None)),
            trainings: Mutex::new(BTreeMap::new()),
        }
    }

    /// The store's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The canonical synth-CIFAR dataset (built once).
    ///
    /// # Errors
    ///
    /// Propagates dataset construction errors.
    pub fn cifar(&self) -> Result<Arc<Dataset>> {
        let mut slot = self.cifar.lock().expect("artifact store poisoned");
        if let Some(d) = slot.as_ref() {
            return Ok(Arc::clone(d));
        }
        let d = Arc::new(CifarConfig::at(self.scale).dataset(CIFAR_DATA_SEED)?);
        *slot = Some(Arc::clone(&d));
        Ok(d)
    }

    /// The canonical synth-ImageNet dataset (built once).
    ///
    /// # Errors
    ///
    /// Propagates dataset construction errors.
    pub fn imagenet(&self) -> Result<Arc<Dataset>> {
        let mut slot = self.imagenet.lock().expect("artifact store poisoned");
        if let Some(d) = slot.as_ref() {
            return Ok(Arc::clone(d));
        }
        let d = Arc::new(ImagenetConfig::at(self.scale).dataset(IMAGENET_DATA_SEED)?);
        *slot = Some(Arc::clone(&d));
        Ok(d)
    }

    /// The trained reference of `kind`, training it on a cache miss.
    ///
    /// Only the slot of `kind` is locked during training, so baseline
    /// jobs for *different* kinds train concurrently under the DAG
    /// scheduler, while a second caller for the *same* kind waits and then
    /// reads the cache.
    ///
    /// # Errors
    ///
    /// Propagates model construction and training errors.
    pub fn baseline(&self, kind: BaselineKind) -> Result<Arc<Baseline>> {
        let idx = BaselineKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in ALL");
        let mut slot = self.baselines[idx].lock().expect("artifact store poisoned");
        if let Some(b) = slot.as_ref() {
            return Ok(Arc::clone(b));
        }
        let trained = Arc::new(self.train(kind)?);
        *self
            .trainings
            .lock()
            .expect("artifact store poisoned")
            .entry(kind.id().to_string())
            .or_insert(0) += 1;
        *slot = Some(Arc::clone(&trained));
        Ok(trained)
    }

    /// Completed trainings per baseline id (empty entries absent).
    pub fn train_counts(&self) -> BTreeMap<String, u64> {
        self.trainings
            .lock()
            .expect("artifact store poisoned")
            .clone()
    }

    fn train(&self, kind: BaselineKind) -> Result<Baseline> {
        let (data, hyper, epochs, classes, width, block) = if kind.is_imagenet() {
            let cfg = ImagenetConfig::at(self.scale);
            (
                self.imagenet()?,
                cfg.hyper,
                cfg.epochs,
                cfg.classes,
                cfg.width,
                cfg.block,
            )
        } else {
            let cfg = CifarConfig::at(self.scale);
            (
                self.cifar()?,
                cfg.hyper,
                cfg.epochs,
                cfg.classes,
                cfg.width,
                cfg.block,
            )
        };
        let seed = kind.seed();
        let model = match kind {
            BaselineKind::Plain20 => plain20(classes, width)?,
            BaselineKind::Resnet20 => resnet20(classes, width)?,
            BaselineKind::AlfPlain20 => plain20_alf(classes, width, block, seed)?,
            BaselineKind::AlfResnet20 => resnet20_alf(classes, width, block, seed)?,
            BaselineKind::ImagenetResnet18 => {
                resnet18_small(classes, width, ConvStyle::Standard, seed)?
            }
            BaselineKind::ImagenetAlfResnet18 => {
                resnet18_small(classes, width, ConvStyle::Alf(block), seed)?
            }
        };
        let (model, report) = train_seeded(model, &hyper, seed, &data, epochs, self.threads)?;
        let ratios = model.filter_keep_ratios();
        Ok(Baseline {
            kind,
            model,
            report,
            ratios,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_stable() {
        let ids: std::collections::BTreeSet<&str> =
            BaselineKind::ALL.iter().map(|k| k.id()).collect();
        assert_eq!(ids.len(), BaselineKind::ALL.len());
        assert!(ids.iter().all(|id| id.starts_with("baseline:")));
    }

    #[test]
    fn store_caches_datasets() {
        let store = ArtifactStore::new(Scale::Smoke);
        let a = store.cifar().unwrap();
        let b = store.cifar().unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(store.train_counts().is_empty());
    }
}
