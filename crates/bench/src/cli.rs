//! The one command-line parser shared by every bench binary and the
//! `alf-lab` campaign runner.
//!
//! Before this module each experiment binary re-parsed `std::env::args`
//! by hand; now all of them (and `alf-lab`) accept the same surface:
//!
//! * `--scale {smoke|paper}` or the shorthands `--smoke` / `--paper`
//!   (default: smoke);
//! * `--jobs N` — worker/thread budget for schedulers that take one;
//! * `--out DIR` — artifact directory for the text table + JSON pair
//!   every job writes (default `results`).
//!
//! Unknown arguments are kept and can be consumed by binary-specific
//! flags through [`BenchArgs::flag`] / [`BenchArgs::value`];
//! [`BenchArgs::finish`] rejects leftovers so typos fail loudly.

use std::path::PathBuf;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment configuration for CI and smoke testing.
    Smoke,
    /// The full configuration (hours on a CPU).
    Paper,
}

impl Scale {
    /// Parses the scale from `std::env::args`: either `--scale
    /// {smoke|paper}` or the bare shorthands `--smoke` / `--paper`.
    /// Defaults to smoke.
    ///
    /// This is the workspace's only scale parser (`scripts/verify.sh`
    /// grep-gates that it stays the single definition); binaries that
    /// need the rest of the shared surface use [`BenchArgs::parse`],
    /// which routes through the same argv logic.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on an unknown scale value or when both
    /// shorthands are given.
    pub fn from_args() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::from_argv(&argv).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The argv half of [`Scale::from_args`], reusable on any slice.
    ///
    /// # Errors
    ///
    /// Returns a usage message on an unknown scale value or conflicting
    /// shorthands.
    pub fn from_argv(argv: &[String]) -> Result<Self, String> {
        let smoke_flag = argv.iter().any(|a| a == "--smoke");
        let paper_flag = argv.iter().any(|a| a == "--paper");
        if smoke_flag && paper_flag {
            return Err("--smoke and --paper are mutually exclusive".into());
        }
        if smoke_flag {
            return Ok(Scale::Smoke);
        }
        if paper_flag {
            return Ok(Scale::Paper);
        }
        match argv
            .iter()
            .position(|a| a == "--scale")
            .and_then(|i| argv.get(i + 1))
            .map(String::as_str)
        {
            None => Ok(Scale::Smoke),
            Some("smoke") => Ok(Scale::Smoke),
            Some("paper") => Ok(Scale::Paper),
            Some(other) => Err(format!("unknown scale '{other}'; use smoke or paper")),
        }
    }

    /// Label for report headers.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Paper => "paper",
        }
    }
}

/// Parsed shared options plus the not-yet-consumed remainder of argv.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Experiment scale (`--scale` / `--smoke` / `--paper`).
    pub scale: Scale,
    /// Worker budget (`--jobs N`), `None` when unspecified.
    pub jobs: Option<usize>,
    /// Artifact directory (`--out DIR`), `None` when unspecified.
    pub out: Option<PathBuf>,
    rest: Vec<String>,
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with a message on malformed input
    /// (the behaviour every bench binary previously hand-rolled).
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::from_argv(&argv).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Parses an explicit argv slice.
    ///
    /// # Errors
    ///
    /// Returns a usage message on a malformed scale, a non-positive or
    /// non-numeric `--jobs`, or a missing option value.
    pub fn from_argv(argv: &[String]) -> Result<Self, String> {
        let scale = Scale::from_argv(argv)?;
        let mut jobs = None;
        let mut out = None;
        let mut rest = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--smoke" | "--paper" => {}
                "--scale" => i += 1, // value validated by Scale::from_argv
                "--jobs" => {
                    let v = argv
                        .get(i + 1)
                        .ok_or_else(|| "--jobs needs a value".to_string())?;
                    let n: usize = v.parse().map_err(|_| format!("--jobs: bad value '{v}'"))?;
                    if n == 0 {
                        return Err("--jobs must be >= 1".into());
                    }
                    jobs = Some(n);
                    i += 1;
                }
                "--out" => {
                    let v = argv
                        .get(i + 1)
                        .ok_or_else(|| "--out needs a value".to_string())?;
                    out = Some(PathBuf::from(v));
                    i += 1;
                }
                other => rest.push(other.to_string()),
            }
            i += 1;
        }
        Ok(Self {
            scale,
            jobs,
            out,
            rest,
        })
    }

    /// Artifact directory, defaulting to `results`.
    pub fn out_dir(&self) -> PathBuf {
        self.out.clone().unwrap_or_else(|| PathBuf::from("results"))
    }

    /// Consumes a boolean flag (`--name`) from the remainder.
    pub fn flag(&mut self, name: &str) -> bool {
        let tag = format!("--{name}");
        let before = self.rest.len();
        self.rest.retain(|a| *a != tag);
        self.rest.len() != before
    }

    /// Consumes a valued option (`--name VALUE`) from the remainder.
    ///
    /// # Errors
    ///
    /// Returns a message when the option is present without a value.
    pub fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        let tag = format!("--{name}");
        match self.rest.iter().position(|a| *a == tag) {
            None => Ok(None),
            Some(i) if i + 1 < self.rest.len() => {
                let v = self.rest.remove(i + 1);
                self.rest.remove(i);
                Ok(Some(v))
            }
            Some(_) => Err(format!("--{name} needs a value")),
        }
    }

    /// Rejects any argument no parser claimed.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unrecognised argument.
    pub fn finish(self) -> Result<(), String> {
        match self.rest.first() {
            None => Ok(()),
            Some(a) => Err(format!("unrecognised argument '{a}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn scale_defaults_to_smoke() {
        assert_eq!(Scale::from_argv(&[]).unwrap(), Scale::Smoke);
        assert_eq!(Scale::from_argv(&argv(&["--paper"])).unwrap(), Scale::Paper);
        assert_eq!(
            Scale::from_argv(&argv(&["--scale", "paper"])).unwrap(),
            Scale::Paper
        );
        assert!(Scale::from_argv(&argv(&["--smoke", "--paper"])).is_err());
        assert!(Scale::from_argv(&argv(&["--scale", "huge"])).is_err());
    }

    #[test]
    fn shared_options_parse_and_leftovers_are_rejected() {
        let mut a = BenchArgs::from_argv(&argv(&[
            "--paper", "--jobs", "4", "--out", "x", "--extra", "v",
        ]))
        .unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.out_dir(), PathBuf::from("x"));
        assert_eq!(a.value("extra").unwrap().as_deref(), Some("v"));
        assert!(a.clone().finish().is_ok());
        a.rest.push("--typo".into());
        assert!(a.finish().is_err());
    }

    #[test]
    fn bad_jobs_values_fail() {
        assert!(BenchArgs::from_argv(&argv(&["--jobs", "0"])).is_err());
        assert!(BenchArgs::from_argv(&argv(&["--jobs", "x"])).is_err());
        assert!(BenchArgs::from_argv(&argv(&["--jobs"])).is_err());
    }

    #[test]
    fn flag_consumption() {
        let mut a = BenchArgs::from_argv(&argv(&["--fresh"])).unwrap();
        assert!(a.flag("fresh"));
        assert!(!a.flag("fresh"));
        assert!(a.finish().is_ok());
    }
}
