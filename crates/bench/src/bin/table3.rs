//! Table III — ImageNet-track benchmarking.
//!
//! Thin wrapper over `alf_bench::jobs::tables::table3`; the experiment
//! body lives in the library so `alf-lab` can schedule it against the
//! shared baseline trainings.

fn main() {
    alf_bench::jobs::standalone_main("table3");
}
