//! Table III — ImageNet benchmarking: Params/OPs of the comparison
//! architectures (exact 224×224 geometry arithmetic) and the pruned
//! ResNet-18 rows (LCNN / FPGM / AMC / ALF), with accuracy trends measured
//! on synth-ImageNet at the selected scale.

use alf_baselines::api::{apply_keep_ratios, chained_cost};
use alf_baselines::{lcnn, AmcAgent, AmcConfig};
use alf_bench::{eng, print_table, ImagenetConfig, Scale};
use alf_core::models::{geometry, resnet18_small, ConvStyle};
use alf_core::train::{evaluate, AlfTrainer};
use alf_core::{ConvShape, NetworkCost};
use alf_data::Split;

fn main() {
    let scale = Scale::from_args();
    let cfg = ImagenetConfig::at(scale);
    let data = cfg.dataset(77).expect("dataset");
    println!(
        "Table III reproduction ({} scale): synth-ImageNet {}x{}, {} classes",
        scale.label(),
        cfg.image_size,
        cfg.image_size,
        cfg.classes
    );

    // Exact architecture arithmetic (224×224, 1000 classes).
    let squeezenet = geometry::squeezenet_layers();
    let googlenet = geometry::googlenet_layers();
    let resnet18 = geometry::resnet18_layers();

    // --- trainable substitutions on synth-ImageNet ---------------------------
    eprintln!("training vanilla ResNet-18-small …");
    let mut vt = AlfTrainer::new(
        resnet18_small(cfg.classes, cfg.width, ConvStyle::Standard, 1).expect("model"),
        cfg.hyper.clone(),
        1,
    )
    .expect("trainer");
    let vanilla_report = vt.run(&data, cfg.epochs).expect("training");
    let vanilla = vt.into_model();

    eprintln!("training ALF ResNet-18-small …");
    let mut at = AlfTrainer::new(
        resnet18_small(cfg.classes, cfg.width, ConvStyle::Alf(cfg.block), 2).expect("model"),
        cfg.hyper.clone(),
        2,
    )
    .expect("trainer");
    let alf_report = at.run(&data, cfg.epochs).expect("training");
    let alf_ratios: Vec<f32> = at
        .into_model()
        .filter_stats()
        .iter()
        .map(|(_, a, t)| *a as f32 / *t as f32)
        .collect();

    eprintln!("running AMC search …");
    let amc_cfg = match scale {
        Scale::Smoke => AmcConfig {
            population: 5,
            elites: 2,
            iterations: 2,
            eval_batch: 32,
            ..AmcConfig::default()
        },
        Scale::Paper => AmcConfig::default(),
    };
    let amc_out = AmcAgent::new(amc_cfg, 3)
        .search(&vanilla, &data)
        .expect("amc");
    let mut amc_model = vanilla.clone();
    apply_keep_ratios(&mut amc_model, &amc_out.keep_ratios);
    // Brief fine-tune with re-silencing, as AMC does after its search.
    let mut ft = AlfTrainer::new(amc_model, cfg.hyper.clone(), 6).expect("trainer");
    for _ in 0..(cfg.epochs / 4).max(1) {
        ft.run_epoch(&data).expect("fine-tune epoch");
        apply_keep_ratios(ft.model_mut(), &amc_out.keep_ratios);
    }
    let amc_acc = evaluate(ft.model(), &data, Split::Test, 64).expect("eval");

    eprintln!("applying FPGM …");
    let fpgm_keep = 0.76f32;
    let mut fpgm_model = vanilla.clone();
    alf_baselines::fpgm::prune_filters(&mut fpgm_model, fpgm_keep);
    let fpgm_acc = evaluate(&fpgm_model, &data, Split::Test, 64).expect("eval");

    eprintln!("applying LCNN …");
    let lcnn_ratio = 0.2f32;
    let mut lcnn_model = vanilla.clone();
    lcnn::compress_model(
        &mut lcnn_model,
        lcnn_ratio,
        cfg.image_size,
        cfg.image_size,
        9,
    )
    .expect("lcnn");
    let lcnn_acc = evaluate(&lcnn_model, &data, Split::Test, 64).expect("eval");

    // --- map measured keep decisions onto the exact ResNet-18 geometry -------
    // Skip the parameterised downsample convs (kept dense by every method).
    let main_keeps = |ratios: &[f32]| -> Vec<usize> {
        let mut it = ratios.iter();
        resnet18
            .convs
            .iter()
            .map(|s| {
                if s.name.ends_with("_ds") {
                    s.c_out
                } else {
                    let r = it.next().copied().unwrap_or(1.0);
                    ((s.c_out as f32 * r).round() as usize).clamp(1, s.c_out)
                }
            })
            .collect()
    };
    let fc = resnet18.fc_params;
    let with_fc = |c: NetworkCost| NetworkCost {
        params: c.params + fc,
        macs: c.macs + fc,
    };
    let alf_cost = with_fc(NetworkCost::of_alf_layers(
        resnet18
            .convs
            .iter()
            .zip(main_keeps(&alf_ratios))
            .filter(|(s, _)| !s.name.ends_with("_ds")),
    ));
    let amc_cost = with_fc(chained_cost(
        &resnet18.convs,
        &main_keeps(&amc_out.keep_ratios),
    ));
    let fpgm_cost = with_fc(chained_cost(&resnet18.convs, &main_keeps(&[fpgm_keep; 17])));
    let lcnn_cost = with_fc(lcnn_geometry_cost(&resnet18.convs, lcnn_ratio));

    // --- table ---------------------------------------------------------------
    let arow = |name: &str, policy: &str, params: u64, macs: u64, acc: String| {
        vec![
            name.to_string(),
            policy.to_string(),
            eng(params as f64),
            format!("{} MOPs", 2 * macs / 1_000_000),
            acc,
        ]
    };
    let measured = |acc: f32| format!("{:.1}%*", 100.0 * acc);
    let rows = vec![
        arow(
            "SqueezeNet",
            "—",
            squeezenet.params(),
            squeezenet.macs(),
            "57.2% (paper)".into(),
        ),
        arow(
            "GoogleNet",
            "—",
            googlenet.params(),
            googlenet.macs(),
            "66.8% (paper)".into(),
        ),
        arow(
            "ResNet-18",
            "—",
            resnet18.params(),
            resnet18.macs(),
            measured(vanilla_report.final_accuracy()),
        ),
        arow(
            "LCNN",
            "Automatic",
            lcnn_cost.params,
            lcnn_cost.macs,
            measured(lcnn_acc),
        ),
        arow(
            "FPGM",
            "Handcrafted",
            fpgm_cost.params,
            fpgm_cost.macs,
            measured(fpgm_acc),
        ),
        arow(
            "AMC",
            "RL-Agent",
            amc_cost.params,
            amc_cost.macs,
            measured(amc_acc),
        ),
        arow(
            "ALF (ours)",
            "Automatic",
            alf_cost.params,
            alf_cost.macs,
            measured(alf_report.final_accuracy()),
        ),
    ];
    print_table(
        "Table III: ImageNet benchmarking (Params/OPs exact at 224x224; * = accuracy measured on synth-ImageNet substitute)",
        &["Method", "Policy", "Params", "OPs", "Acc"],
        &rows,
    );
    println!(
        "\npaper reference rows: SqueezeNet 1.23M/1722, GoogleNet 6.80M/3004, ResNet-18 11.83M/3743,\n\
         LCNN –/749 (62.2%), FPGM –/2178 (67.8%), AMC 8.9M/1874 (67.7%), ALF 4.24M/1239 (64.3%)"
    );
}

/// Analytic LCNN cost on a geometry: per layer, a dictionary of
/// `⌈ratio·Co⌉` filters plus a 1-sparse lookup per output channel.
fn lcnn_geometry_cost(convs: &[ConvShape], ratio: f32) -> NetworkCost {
    convs.iter().fold(NetworkCost::default(), |acc, s| {
        let dict = ((s.c_out as f32 * ratio).ceil() as usize).clamp(1, s.c_out);
        let fan = s.c_in * s.kernel * s.kernel;
        let hw = (s.h_out * s.w_out) as u64;
        NetworkCost {
            params: acc.params + (dict * fan + 2 * s.c_out) as u64,
            macs: acc.macs + (dict * fan) as u64 * hw + s.c_out as u64 * hw,
        }
    })
}
