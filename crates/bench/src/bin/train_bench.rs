//! Data-parallel training benchmark and determinism gate.
//!
//! Trains the same Plain-20 ALF model from the same seeds twice — once
//! with a single worker, once with four — through one epoch of the
//! two-player game, then:
//!
//! * **gates determinism** (always): the two runs' full state vectors
//!   must be bitwise identical, and a run killed mid-epoch and resumed
//!   from its checkpoint at yet another worker count must land on the
//!   same state bitwise;
//! * **gates speedup** (only when the host has ≥ 2 cores): the 4-worker
//!   run must process at least 1.5× the images per second of the
//!   1-worker run at smoke scale;
//! * **gates telemetry** (smoke scale): a third 1-worker run with JSONL
//!   telemetry streaming into an in-memory sink must land on the same
//!   state bitwise (telemetry is read-only) and stay within noise of the
//!   telemetry-off run's wall time;
//! * **gates occupancy tracking** (smoke scale): per-step wall-clock of
//!   the sparse execution path must strictly decrease as the forced mask
//!   occupancy drops 100% → 70% → 40%, and the sparse path's final
//!   weights must be bitwise identical to a dense-execution reference —
//!   the training hot loop really does cost less when the mask empties,
//!   without changing a single bit of the trajectory;
//! * **gates the socket collective** (smoke scale): a 2-rank `alf-dist`
//!   run over real loopback TCP must land on the single-process state
//!   bitwise, and with masks forced to 100% → 70% → 40% occupancy the
//!   encoded gradient bytes on the wire must strictly decrease with the
//!   sparse row encoding engaged — distribution changes where the adds
//!   happen, never what they compute, and the wire cost tracks pruning.
//!
//! When a gate cannot run (data-parallel speedup on a 1-core host) the
//! bench emits a `train.bench.gate_skipped` telemetry event and prints
//! both the JSONL record and a human-readable reason, so a green CI run
//! on a small host is distinguishable from a gate that actually passed.
//!
//! Results go to stdout as a table and to `BENCH_train.json`
//! (throughput per worker count, speedup, whether each gate was
//! enforced and its outcome). `--smoke` (default, a few seconds) uses a
//! reduced geometry; `--paper` trains the full 32×32/10-class model.

use std::time::Instant;

use alf_bench::Scale;
use alf_core::block::AlfBlockConfig;
use alf_core::models::plain20_alf;
use alf_core::{AlfHyper, AlfTrainer, CnnModel};
use alf_data::{Dataset, SynthVision};
use alf_dp::{DpConfig, DpTrainer};
use alf_nn::layer::Layer;
use alf_nn::LrSchedule;
use alf_obs::events::{EventLog, MemorySink};
use alf_obs::json::JsonWriter;

/// Worker count of the parallel run; the speedup gate threshold.
const PAR_WORKERS: usize = 4;
const MIN_SPEEDUP: f64 = 1.5;
/// Telemetry-on wall time may exceed telemetry-off by at most this factor.
/// Generous by design: the real cost is one JSONL line per step against a
/// multi-millisecond training step, but smoke-scale timings on a loaded
/// 1-core host swing ±25% run to run; the gate exists to catch
/// pathological regressions (per-field allocation, serialisation inside
/// the step's arithmetic), not to measure the sub-1% steady-state cost.
const MAX_TELEMETRY_OVERHEAD: f64 = 1.5;
const DATA_SEED: u64 = 33;
const MODEL_SEED: u64 = 42;

struct Params {
    classes: usize,
    width: usize,
    image: usize,
    train: usize,
    test: usize,
    batch: usize,
}

fn params(scale: Scale) -> Params {
    match scale {
        Scale::Smoke => Params {
            classes: 4,
            width: 8,
            image: 16,
            train: 128,
            test: 32,
            batch: 16,
        },
        Scale::Paper => Params {
            classes: 10,
            width: 16,
            image: 32,
            train: 512,
            test: 128,
            batch: 64,
        },
    }
}

fn build_data(p: &Params) -> Dataset {
    SynthVision::cifar_like(DATA_SEED)
        .with_image_size(p.image)
        .with_max_shift(2)
        .with_num_classes(p.classes)
        .with_train_size(p.train)
        .with_test_size(p.test)
        .with_noise(0.05)
        .build()
        .expect("build synthetic dataset")
}

fn config(p: &Params, threads: usize) -> DpConfig {
    DpConfig::new(
        AlfHyper {
            task_lr: 0.05,
            batch_size: p.batch,
            lr_schedule: LrSchedule::Constant,
            ..AlfHyper::default()
        },
        DATA_SEED,
    )
    .with_threads(threads)
}

fn main() {
    let scale = Scale::from_args();
    let p = params(scale);
    let host_cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    let steps = p.train / p.batch;
    println!(
        "train bench  scale={}  host-cores={host_cores}  image=3x{}x{}  classes={}  \
         batch={}  steps={steps}",
        scale.label(),
        p.image,
        p.image,
        p.classes,
        p.batch,
    );

    let data = build_data(&p);
    let model = plain20_alf(
        p.classes,
        p.width,
        AlfBlockConfig::paper_default(),
        MODEL_SEED,
    )
    .expect("build plain20-alf");

    // --- timed runs: identical trajectory, different worker counts ---
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "workers", "elapsed s", "img/s", "final loss"
    );
    let mut throughputs = Vec::new();
    let mut elapsed_by_workers = Vec::new();
    let mut states = Vec::new();
    for threads in [1usize, PAR_WORKERS] {
        let mut trainer =
            DpTrainer::new(model.clone(), config(&p, threads)).expect("build trainer");
        let start = Instant::now();
        let epochs = trainer.run_steps(&data, steps).expect("train");
        let elapsed = start.elapsed().as_secs_f64();
        let throughput = (steps * p.batch) as f64 / elapsed;
        println!(
            "{threads:<10} {elapsed:>12.2} {throughput:>12.1} {:>12.4}",
            epochs.last().map_or(f32::NAN, |e| e.train_loss),
        );
        throughputs.push(throughput);
        elapsed_by_workers.push(elapsed);
        states.push(trainer.state_vector());
    }
    let deterministic = states[0] == states[1];
    let speedup = throughputs[1] / throughputs[0];

    // --- telemetry: same 1-worker trajectory with a live event stream ---
    let (sink, events) = MemorySink::bounded(steps + 8);
    let mut telemetered = DpTrainer::new(model.clone(), config(&p, 1)).expect("build trainer");
    telemetered.set_telemetry_sink(Box::new(sink));
    let start = Instant::now();
    telemetered.run_steps(&data, steps).expect("train");
    let telemetry_elapsed = start.elapsed().as_secs_f64();
    let telemetry_bitwise = telemetered.state_vector() == states[0];
    let telemetry_overhead = telemetry_elapsed / elapsed_by_workers[0];
    let step_events = events
        .lines()
        .iter()
        .filter(|l| l.contains("\"event\":\"train.step\""))
        .count();

    // --- kill/resume: checkpoint mid-epoch, resume at 2 workers ---
    let kill_at = steps / 2;
    let mut victim = DpTrainer::new(model.clone(), config(&p, PAR_WORKERS)).expect("build victim");
    victim.run_steps(&data, kill_at).expect("train victim");
    let blob = victim.checkpoint();
    drop(victim);
    let fresh = plain20_alf(
        p.classes,
        p.width,
        AlfBlockConfig::paper_default(),
        MODEL_SEED + 1,
    )
    .expect("build fresh model");
    let mut resumed = DpTrainer::resume(fresh, config(&p, 2), &blob).expect("resume");
    resumed
        .run_steps(&data, steps - kill_at)
        .expect("finish resumed run");
    let resume_bitwise = resumed.state_vector() == states[0];

    // --- occupancy sweep: training cost must track live mask rows ---
    let sweep = (scale == Scale::Smoke).then(|| occupancy_sweep(&p, &data));

    // --- dist: the socket collective must match bitwise, and its sparse
    // gradient wire must shrink as the mask empties ---
    let dist = (scale == Scale::Smoke).then(|| dist_section(&p, &data, &states[0], steps));

    let speedup_gate = host_cores >= 2;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("bench", "train");
    w.field_str("scale", scale.label());
    w.field_u64("host_cores", host_cores as u64);
    w.key("config");
    w.begin_object();
    w.field_u64s("image", [3, p.image as u64, p.image as u64]);
    w.field_u64("classes", p.classes as u64);
    w.field_u64("width", p.width as u64);
    w.field_u64("batch", p.batch as u64);
    w.field_u64("steps", steps as u64);
    w.field_u64("checkpoint_bytes", blob.len() as u64);
    w.end_object();
    w.field_u64s("workers", [1, PAR_WORKERS as u64]);
    w.field_f64s("throughput_img_s", throughputs.iter().copied());
    w.field_f64("speedup", speedup);
    w.field_bool("deterministic", deterministic);
    w.field_bool("resume_bitwise", resume_bitwise);
    w.field_bool("speedup_gate_enforced", speedup_gate);
    w.field_f64("telemetry_overhead", telemetry_overhead);
    w.field_bool("telemetry_bitwise", telemetry_bitwise);
    w.field_u64("telemetry_step_events", step_events as u64);
    if let Some(sweep) = &sweep {
        w.key("occupancy_sweep");
        w.begin_array();
        for level in &sweep.levels {
            w.begin_object();
            // Two decimals: the f32 level would otherwise print as e.g.
            // 0.699999988079071 through the f64 field.
            w.field_f64(
                "occupancy",
                (f64::from(level.occupancy) * 100.0).round() / 100.0,
            );
            w.field_f64("per_step_ms", level.per_step_ms);
            w.end_object();
        }
        w.end_array();
        w.field_bool("occupancy_gate_ok", sweep.monotone());
        w.field_bool("sparse_bitwise", sweep.sparse_bitwise);
    }
    if let Some(dist) = &dist {
        w.key("dist");
        w.begin_object();
        w.field_u64("world", 2);
        w.field_bool("bitwise_2rank", dist.bitwise);
        w.key("grad_bytes_sweep");
        w.begin_array();
        for level in &dist.levels {
            w.begin_object();
            w.field_f64(
                "occupancy",
                (f64::from(level.occupancy) * 100.0).round() / 100.0,
            );
            w.field_u64("grad_bytes", level.grad_bytes);
            w.field_u64("sparse_tensors", level.sparse_tensors);
            w.end_object();
        }
        w.end_array();
        w.field_bool("grad_bytes_gate_ok", dist.bytes_monotone());
        w.field_bool("sparse_wire_active", dist.sparse_active());
        w.end_object();
    }
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write("BENCH_train.json", &json).expect("write BENCH_train.json");
    println!(
        "\nspeedup {speedup:.2}x  deterministic={deterministic}  \
         resume_bitwise={resume_bitwise}  telemetry_overhead={telemetry_overhead:.2}x  \
         telemetry_bitwise={telemetry_bitwise}\nwrote BENCH_train.json"
    );

    // An unenforceable gate must be loudly visible, not silently green:
    // emit the skip through the same telemetry pipeline the trainers use
    // and print both the JSONL record and the plain-language reason.
    if !speedup_gate {
        let (sink, skipped) = MemorySink::bounded(4);
        let mut log = EventLog::new(Box::new(sink));
        if let Some(mut ev) = log.event("train.bench.gate_skipped") {
            ev.field_str("gate", "dp_speedup");
            ev.field_u64("host_cores", host_cores as u64);
            ev.field_str(
                "reason",
                "host reports a single core; data-parallel speedup cannot be measured",
            );
        }
        log.flush();
        for line in skipped.lines() {
            println!("{line}");
        }
        println!(
            "note: dp-speedup gate SKIPPED — host reports a single core, so the \
             {PAR_WORKERS}-worker run cannot demonstrate a speedup here"
        );
    }

    // Gates. Determinism, resume fidelity and telemetry read-only-ness
    // hold on any host; the speedup gate needs real parallelism to be
    // meaningful, and the telemetry-overhead gate needs smoke scale's
    // fixed geometry.
    let mut failed = false;
    if !deterministic {
        eprintln!("FAIL: 1-worker and {PAR_WORKERS}-worker runs diverged bitwise");
        failed = true;
    }
    if !resume_bitwise {
        eprintln!("FAIL: resumed run diverged bitwise from the uninterrupted run");
        failed = true;
    }
    if !telemetry_bitwise {
        eprintln!("FAIL: telemetry-on run diverged bitwise from the telemetry-off run");
        failed = true;
    }
    if step_events < steps {
        eprintln!("FAIL: telemetry stream has {step_events} train.step events, expected {steps}");
        failed = true;
    }
    if speedup_gate && scale == Scale::Smoke && speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: {PAR_WORKERS}-worker speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate \
             on a {host_cores}-core host"
        );
        failed = true;
    }
    if scale == Scale::Smoke && telemetry_overhead > MAX_TELEMETRY_OVERHEAD {
        eprintln!(
            "FAIL: telemetry overhead {telemetry_overhead:.2}x above the \
             {MAX_TELEMETRY_OVERHEAD}x gate"
        );
        failed = true;
    }
    if let Some(sweep) = &sweep {
        if !sweep.monotone() {
            eprintln!(
                "FAIL: per-step wall-clock does not strictly decrease as occupancy drops \
                 ({})",
                sweep
                    .levels
                    .iter()
                    .map(|l| format!("{:.0}%:{:.1}ms", l.occupancy * 100.0, l.per_step_ms))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
            failed = true;
        }
        if !sweep.sparse_bitwise {
            eprintln!("FAIL: sparse execution path diverged bitwise from the dense reference");
            failed = true;
        }
    }
    if let Some(dist) = &dist {
        if !dist.bitwise {
            eprintln!("FAIL: 2-rank socket collective diverged bitwise from 1 process");
            failed = true;
        }
        if !dist.bytes_monotone() {
            eprintln!(
                "FAIL: gradient bytes-on-wire do not strictly decrease as occupancy drops ({})",
                dist.levels
                    .iter()
                    .map(|l| format!("{:.0}%:{}B", l.occupancy * 100.0, l.grad_bytes))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
            failed = true;
        }
        if !dist.sparse_active() {
            eprintln!("FAIL: sparse gradient encoding never engaged during the pruned sweep");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// One occupancy level of the dist wire sweep.
struct DistLevel {
    occupancy: f32,
    /// Total encoded gradient payload bytes shipped by both ranks over
    /// the measured steps (subtree roots up + reduced broadcast down).
    grad_bytes: u64,
    /// Tensor segments that took the sparse row encoding.
    sparse_tensors: u64,
}

struct DistResult {
    bitwise: bool,
    levels: Vec<DistLevel>,
}

impl DistResult {
    /// Strictly decreasing bytes-on-wire as occupancy drops.
    fn bytes_monotone(&self) -> bool {
        self.levels
            .windows(2)
            .all(|pair| pair[1].grad_bytes < pair[0].grad_bytes)
    }

    /// The sparse encoding engaged at every pruned level.
    fn sparse_active(&self) -> bool {
        self.levels
            .iter()
            .filter(|l| l.occupancy < 1.0)
            .all(|l| l.sparse_tensors > 0)
    }
}

/// Outcome of one in-process 2-rank collective: both ranks' final
/// states plus the wire counters of both directions.
struct TwoRankRun {
    master_state: Vec<f32>,
    worker_state: Vec<f32>,
    grad_bytes: u64,
    sparse_tensors: u64,
}

/// Runs a 2-rank socket collective (rank 1 on a thread, real loopback
/// TCP) for `steps` steps from `model`.
fn run_two_rank(model: CnnModel, p: &Params, data: &Dataset, steps: usize) -> TwoRankRun {
    use alf_dist::{DistConfig, DistReducer};

    let addr = alf_dist::ephemeral_addr().expect("pick loopback addr");
    let listener = std::net::TcpListener::bind(addr).expect("bind collective addr");
    let worker_model = model.clone();
    std::thread::scope(|s| {
        let worker = s.spawn(move || {
            let dist = DistConfig::new(2, 1, addr);
            let mut t = DpTrainer::new(worker_model, config(p, 2)).expect("worker trainer");
            let mut red = DistReducer::worker(dist, t.model(), None).expect("worker handshake");
            for _ in 0..steps {
                t.advance_step_with(data, &mut red).expect("worker step");
            }
            (t.state_vector(), red.metrics().grad_bytes_tx.get())
        });
        let dist = DistConfig::new(2, 0, addr);
        let mut t = DpTrainer::new(model, config(p, 2)).expect("master trainer");
        let mut red =
            DistReducer::master(dist, t.model(), &listener, None).expect("master handshake");
        for _ in 0..steps {
            t.advance_step_with(data, &mut red).expect("master step");
        }
        let (worker_state, worker_bytes) = worker.join().expect("worker thread");
        TwoRankRun {
            master_state: t.state_vector(),
            worker_state,
            grad_bytes: red.metrics().grad_bytes_tx.get() + worker_bytes,
            sparse_tensors: red.metrics().tensors_sparse.get(),
        }
    })
}

/// The dist gates: a 2-rank collective over real sockets must land on
/// `reference` bitwise, and with masks forced to 100% → 70% → 40%
/// occupancy the encoded gradient bytes on the wire must strictly
/// decrease (run-length sparse rows elide exactly the STE-zeroed ones).
fn dist_section(p: &Params, data: &Dataset, reference: &[f32], steps: usize) -> DistResult {
    const LEVELS: [f32; 3] = [1.0, 0.7, 0.4];
    const SWEEP_STEPS: usize = 2;

    let model = plain20_alf(
        p.classes,
        p.width,
        AlfBlockConfig::paper_default(),
        MODEL_SEED,
    )
    .expect("build dist model");
    let run = run_two_rank(model, p, data, steps);
    let bitwise = run.master_state == reference && run.worker_state == reference;
    println!(
        "\ndist: 2-rank socket collective, {steps} steps — bitwise={bitwise} \
         ({} gradient bytes on wire)",
        run.grad_bytes
    );

    // Byte sweep on forced masks; the widened threshold keeps forced
    // channels pinned for the handful of steps (same trick as the
    // occupancy sweep above).
    let sweep_config = AlfBlockConfig {
        threshold: 0.5,
        ..AlfBlockConfig::paper_default()
    };
    println!(
        "{:<12} {:>16} {:>16}",
        "occupancy", "grad bytes", "sparse tensors"
    );
    let mut levels = Vec::new();
    for &occ in &LEVELS {
        let mut model =
            plain20_alf(p.classes, p.width, sweep_config, MODEL_SEED).expect("build sweep model");
        force_occupancy(&mut model, occ);
        let run = run_two_rank(model, p, data, SWEEP_STEPS);
        println!(
            "{:<12} {:>16} {:>16}",
            format!("{:.0}%", occ * 100.0),
            run.grad_bytes,
            run.sparse_tensors
        );
        levels.push(DistLevel {
            occupancy: occ,
            grad_bytes: run.grad_bytes,
            sparse_tensors: run.sparse_tensors,
        });
    }
    DistResult { bitwise, levels }
}

/// One measured occupancy level of the sweep.
struct OccLevel {
    occupancy: f32,
    /// Min-of-3 epoch wall-clock divided by steps per epoch.
    per_step_ms: f64,
}

struct SweepResult {
    levels: Vec<OccLevel>,
    sparse_bitwise: bool,
}

impl SweepResult {
    /// Strictly decreasing per-step cost as occupancy drops.
    fn monotone(&self) -> bool {
        self.levels
            .windows(2)
            .all(|pair| pair[1].per_step_ms < pair[0].per_step_ms)
    }
}

/// Every state tensor of the model, flattened to bit patterns.
fn state_bits(model: &CnnModel) -> Vec<u32> {
    let mut out = Vec::new();
    model.visit_state_ref(&mut |t| out.extend(t.data().iter().map(|v| v.to_bits())));
    out
}

/// Forces each ALF block to the given mask occupancy by moving the first
/// `(1 − occupancy)·Co` mask entries into the clip band. The blocks use a
/// widened threshold (0.5) so the handful of autoencoder steps a bench
/// epoch takes cannot pull a forced channel back out of the band (the
/// mask moves by O(`ae_lr`) per step), nor push a live one in.
fn force_occupancy(model: &mut CnnModel, occupancy: f32) {
    for block in model.alf_blocks_mut() {
        let total = block.total_filters();
        let clip = ((1.0 - occupancy) * total as f32).round() as usize;
        for ch in 0..clip.min(total.saturating_sub(1)) {
            block.autoencoder_mut().set_mask_value(ch, 0.05);
        }
    }
}

/// Trains the smoke model at forced occupancies 100% → 40% and measures
/// per-step wall-clock on the sparse execution path (one warm-up epoch,
/// then min-of-3 timed epochs per level). At the 60% level a dense
/// reference (sparse execution off, identical seeds and forced masks)
/// runs the same schedule and the final states are compared bitwise.
fn occupancy_sweep(p: &Params, data: &Dataset) -> SweepResult {
    // Endpoints per the gate (100% → 40%); the midpoint is placed so that
    // every stage's live-row count crosses an MR-panel boundary between
    // adjacent levels — a 10%-row step can save zero packed panels in the
    // narrow stages and would make the strict-decrease gate noise-bound.
    const LEVELS: [f32; 3] = [1.0, 0.7, 0.4];
    const TIMED_EPOCHS: usize = 3;
    const BITWISE_LEVEL: f32 = 0.7;

    let config = AlfBlockConfig {
        threshold: 0.5,
        ..AlfBlockConfig::paper_default()
    };
    let hyper = AlfHyper {
        task_lr: 0.05,
        batch_size: p.batch,
        lr_schedule: LrSchedule::Constant,
        ..AlfHyper::default()
    };
    let steps = (p.train / p.batch) as f64;
    // Wider than the throughput runs: at smoke width the ALF convolutions
    // are a small share of step cost and the occupancy signal would drown
    // in scheduler noise. Quadrupling the width makes the elided GEMMs the
    // dominant cost, so the gate measures the hot loop, not the fixed
    // overheads around it.
    let width = p.width * 4;

    println!("\noccupancy sweep (width {width}, sparse execution, min-of-{TIMED_EPOCHS} epochs)");
    println!("{:<12} {:>14} {:>12}", "occupancy", "per-step ms", "live");
    let mut levels = Vec::new();
    let mut sparse_bitwise = true;
    for &occ in &LEVELS {
        let mut model =
            plain20_alf(p.classes, width, config, MODEL_SEED).expect("build sweep model");
        force_occupancy(&mut model, occ);

        let mut trainer =
            AlfTrainer::new(model.clone(), hyper.clone(), DATA_SEED).expect("build sweep trainer");
        trainer.run_epoch(data).expect("warm-up epoch");
        let mut best = f64::INFINITY;
        for _ in 0..TIMED_EPOCHS {
            let start = Instant::now();
            trainer.run_epoch(data).expect("timed epoch");
            best = best.min(start.elapsed().as_secs_f64());
        }
        let per_step_ms = best * 1e3 / steps;
        println!(
            "{:<12} {per_step_ms:>14.2} {:>12}",
            format!("{:.0}%", occ * 100.0),
            format!("{:.2}", trainer.model().remaining_filter_fraction())
        );
        levels.push(OccLevel {
            occupancy: occ,
            per_step_ms,
        });

        // Dense reference at one mid-sweep level: same model, same forced
        // masks, same data order — only the execution path differs.
        if occ == BITWISE_LEVEL {
            let mut dense_model = model;
            dense_model.set_sparse_execution(false);
            let mut dense =
                AlfTrainer::new(dense_model, hyper.clone(), DATA_SEED).expect("build dense ref");
            for _ in 0..=TIMED_EPOCHS {
                dense.run_epoch(data).expect("dense reference epoch");
            }
            sparse_bitwise = state_bits(trainer.model()) == state_bits(dense.model());
        }
    }
    SweepResult {
        levels,
        sparse_bitwise,
    }
}
