//! Data-parallel training benchmark and determinism gate.
//!
//! Trains the same Plain-20 ALF model from the same seeds twice — once
//! with a single worker, once with four — through one epoch of the
//! two-player game, then:
//!
//! * **gates determinism** (always): the two runs' full state vectors
//!   must be bitwise identical, and a run killed mid-epoch and resumed
//!   from its checkpoint at yet another worker count must land on the
//!   same state bitwise;
//! * **gates speedup** (only when the host has ≥ 2 cores): the 4-worker
//!   run must process at least 1.5× the images per second of the
//!   1-worker run at smoke scale.
//!
//! Results go to stdout as a table and to `BENCH_train.json`
//! (throughput per worker count, speedup, whether each gate was
//! enforced and its outcome). `--smoke` (default, a few seconds) uses a
//! reduced geometry; `--paper` trains the full 32×32/10-class model.

use std::time::Instant;

use alf_bench::Scale;
use alf_core::block::AlfBlockConfig;
use alf_core::models::plain20_alf;
use alf_core::AlfHyper;
use alf_data::{Dataset, SynthVision};
use alf_dp::{DpConfig, DpTrainer};
use alf_nn::LrSchedule;

/// Worker count of the parallel run; the speedup gate threshold.
const PAR_WORKERS: usize = 4;
const MIN_SPEEDUP: f64 = 1.5;
const DATA_SEED: u64 = 33;
const MODEL_SEED: u64 = 42;

struct Params {
    classes: usize,
    width: usize,
    image: usize,
    train: usize,
    test: usize,
    batch: usize,
}

fn params(scale: Scale) -> Params {
    match scale {
        Scale::Smoke => Params {
            classes: 4,
            width: 8,
            image: 16,
            train: 128,
            test: 32,
            batch: 16,
        },
        Scale::Paper => Params {
            classes: 10,
            width: 16,
            image: 32,
            train: 512,
            test: 128,
            batch: 64,
        },
    }
}

fn build_data(p: &Params) -> Dataset {
    SynthVision::cifar_like(DATA_SEED)
        .with_image_size(p.image)
        .with_max_shift(2)
        .with_num_classes(p.classes)
        .with_train_size(p.train)
        .with_test_size(p.test)
        .with_noise(0.05)
        .build()
        .expect("build synthetic dataset")
}

fn config(p: &Params, threads: usize) -> DpConfig {
    DpConfig::new(
        AlfHyper {
            task_lr: 0.05,
            batch_size: p.batch,
            lr_schedule: LrSchedule::Constant,
            ..AlfHyper::default()
        },
        DATA_SEED,
    )
    .with_threads(threads)
}

fn main() {
    let scale = Scale::from_args();
    let p = params(scale);
    let host_cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    let steps = p.train / p.batch;
    println!(
        "train bench  scale={}  host-cores={host_cores}  image=3x{}x{}  classes={}  \
         batch={}  steps={steps}",
        scale.label(),
        p.image,
        p.image,
        p.classes,
        p.batch,
    );

    let data = build_data(&p);
    let model = plain20_alf(
        p.classes,
        p.width,
        AlfBlockConfig::paper_default(),
        MODEL_SEED,
    )
    .expect("build plain20-alf");

    // --- timed runs: identical trajectory, different worker counts ---
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "workers", "elapsed s", "img/s", "final loss"
    );
    let mut throughputs = Vec::new();
    let mut states = Vec::new();
    for threads in [1usize, PAR_WORKERS] {
        let mut trainer =
            DpTrainer::new(model.clone(), config(&p, threads)).expect("build trainer");
        let start = Instant::now();
        let epochs = trainer.run_steps(&data, steps).expect("train");
        let elapsed = start.elapsed().as_secs_f64();
        let throughput = (steps * p.batch) as f64 / elapsed;
        println!(
            "{threads:<10} {elapsed:>12.2} {throughput:>12.1} {:>12.4}",
            epochs.last().map_or(f32::NAN, |e| e.train_loss),
        );
        throughputs.push(throughput);
        states.push(trainer.state_vector());
    }
    let deterministic = states[0] == states[1];
    let speedup = throughputs[1] / throughputs[0];

    // --- kill/resume: checkpoint mid-epoch, resume at 2 workers ---
    let kill_at = steps / 2;
    let mut victim = DpTrainer::new(model.clone(), config(&p, PAR_WORKERS)).expect("build victim");
    victim.run_steps(&data, kill_at).expect("train victim");
    let blob = victim.checkpoint();
    drop(victim);
    let fresh = plain20_alf(
        p.classes,
        p.width,
        AlfBlockConfig::paper_default(),
        MODEL_SEED + 1,
    )
    .expect("build fresh model");
    let mut resumed = DpTrainer::resume(fresh, config(&p, 2), &blob).expect("resume");
    resumed
        .run_steps(&data, steps - kill_at)
        .expect("finish resumed run");
    let resume_bitwise = resumed.state_vector() == states[0];

    let speedup_gate = host_cores >= 2;
    let json = format!(
        "{{\"bench\":\"train\",\"scale\":\"{}\",\"host_cores\":{host_cores},\
         \"config\":{{\"image\":[3,{},{}],\"classes\":{},\"width\":{},\"batch\":{},\
         \"steps\":{steps},\"checkpoint_bytes\":{}}},\
         \"workers\":[1,{PAR_WORKERS}],\
         \"throughput_img_s\":[{:.2},{:.2}],\"speedup\":{speedup:.3},\
         \"deterministic\":{deterministic},\"resume_bitwise\":{resume_bitwise},\
         \"speedup_gate_enforced\":{speedup_gate}}}\n",
        scale.label(),
        p.image,
        p.image,
        p.classes,
        p.width,
        p.batch,
        blob.len(),
        throughputs[0],
        throughputs[1],
    );
    std::fs::write("BENCH_train.json", &json).expect("write BENCH_train.json");
    println!(
        "\nspeedup {speedup:.2}x  deterministic={deterministic}  \
         resume_bitwise={resume_bitwise}\nwrote BENCH_train.json"
    );

    // Gates. Determinism and resume fidelity hold on any host; the
    // speedup gate needs real parallelism to be meaningful.
    let mut failed = false;
    if !deterministic {
        eprintln!("FAIL: 1-worker and {PAR_WORKERS}-worker runs diverged bitwise");
        failed = true;
    }
    if !resume_bitwise {
        eprintln!("FAIL: resumed run diverged bitwise from the uninterrupted run");
        failed = true;
    }
    if speedup_gate && scale == Scale::Smoke && speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: {PAR_WORKERS}-worker speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate \
             on a {host_cores}-core host"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
