//! Ablation A1 — is the straight-through estimator necessary?
//!
//! Thin wrapper over `alf_bench::jobs::ablations::ste`; the experiment
//! body lives in the library so `alf-lab` can schedule it.

fn main() {
    alf_bench::jobs::standalone_main("ablation_ste");
}
