//! Ablation A1 — is the straight-through estimator necessary?
//!
//! §III-B argues that routing the task gradient through the autoencoder's
//! encoder/mask chain injects noise and zeroises most of the gradient
//! (clipped mask entries), impeding learning. This binary trains the same
//! ALF Plain-20 twice — STE on vs off — and compares accuracy and loss.

use alf_bench::{print_table, CifarConfig, Scale};
use alf_core::models::plain20_alf;
use alf_core::train::AlfTrainer;

fn main() {
    let scale = Scale::from_args();
    let cfg = CifarConfig::at(scale);
    let data = cfg.dataset(88).expect("dataset");
    println!(
        "Ablation: straight-through estimator ({} scale)",
        scale.label()
    );

    let mut rows = Vec::new();
    for (label, ste) in [("STE (paper, Eq. 5)", true), ("true chain gradient", false)] {
        let mut block = cfg.block;
        block.ste = ste;
        let model = plain20_alf(cfg.classes, cfg.width, block, 4).expect("model");
        let mut trainer = AlfTrainer::new(model, cfg.hyper.clone(), 4).expect("trainer");
        let report = trainer.run(&data, cfg.epochs).expect("training");
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", 100.0 * report.final_accuracy()),
            format!(
                "{:.3}",
                report.epochs.last().map_or(f32::NAN, |e| e.train_loss)
            ),
            format!("{:.0}%", 100.0 * report.final_remaining_filters()),
        ]);
    }
    print_table(
        "STE ablation: ALF Plain-20, identical seeds/hyper-parameters",
        &[
            "task gradient",
            "test acc",
            "final train loss",
            "remaining filters",
        ],
        &rows,
    );
    println!("\nexpected: the STE run trains better — the chained gradient is mask-zeroised and encoder-mixed.");
}
