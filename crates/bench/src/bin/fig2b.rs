//! Fig. 2b — autoencoder design-space exploration: `[Wae,init | σae]`
//! accuracy for both `σinter = none` and `σinter = ReLU` series.

use alf_bench::{hbar, print_table, Scale};
use alf_core::explore::{explore_autoencoder, ExploreSetup};
use alf_nn::activation::ActivationKind;

fn main() {
    let scale = Scale::from_args();
    let setup = match scale {
        Scale::Smoke => ExploreSetup::smoke(),
        Scale::Paper => ExploreSetup::paper(),
    };
    println!(
        "Fig. 2b reproduction ({} scale): Plain-20 + ALF blocks, mask disabled (Setup 2)",
        scale.label()
    );
    for sigma_inter in [ActivationKind::Identity, ActivationKind::Relu] {
        let results = explore_autoencoder(&setup, sigma_inter).expect("exploration failed");
        let best = results
            .iter()
            .map(|r| r.mean())
            .fold(f32::NEG_INFINITY, f32::max) as f64;
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                let (lo, hi) = r.spread();
                vec![
                    r.label.clone(),
                    format!("{:.1}%", 100.0 * r.mean()),
                    format!("[{:.1}, {:.1}]", 100.0 * lo, 100.0 * hi),
                    hbar(r.mean() as f64 / best.max(1e-9), 30),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig. 2b: accuracy by [Wae,init | σae], σinter = {}",
                sigma_inter
            ),
            &["config", "mean acc", "spread", "bar"],
            &rows,
        );
        let winner = results
            .iter()
            .max_by(|a, b| a.mean().total_cmp(&b.mean()))
            .expect("non-empty results");
        println!("series winner: {}", winner.label);
    }
    println!("\npaper finding: xavier|tanh with σinter = none wins — compare above.");
}
