//! Fig. 2b — autoencoder design-space exploration.
//!
//! Thin wrapper over `alf_bench::jobs::figures::fig2b`; the experiment
//! body lives in the library so `alf-lab` can schedule it.

fn main() {
    alf_bench::jobs::standalone_main("fig2b");
}
