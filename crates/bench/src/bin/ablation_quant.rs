//! Ablation A5 — quantization composes with ALF (the paper's §II claim
//! that quantization is orthogonal and applicable in conjunction).
//!
//! Trains ALF-Plain-20, deploys it, then fake-quantizes the deployed
//! weights at 16/8/6/4 bits and reports accuracy and weight storage.

use alf_bench::{eng, print_table, CifarConfig, Scale};
use alf_core::models::plain20_alf;
use alf_core::train::{evaluate, AlfTrainer};
use alf_core::{deploy, quant};
use alf_data::Split;

fn main() {
    let scale = Scale::from_args();
    let cfg = CifarConfig::at(scale);
    let data = cfg.dataset(66).expect("dataset");
    println!(
        "Ablation: post-training weight quantization of deployed ALF models ({} scale)",
        scale.label()
    );

    eprintln!("training ALF-Plain-20 …");
    let model = plain20_alf(cfg.classes, cfg.width, cfg.block, 8).expect("model");
    let mut trainer = AlfTrainer::new(model, cfg.hyper.clone(), 8).expect("trainer");
    trainer.run(&data, cfg.epochs).expect("training");
    let deployed = deploy::compress(trainer.model()).expect("deploy");
    let f32_acc = evaluate(&deployed, &data, Split::Test, 32).expect("eval");

    let mut rows = vec![vec![
        "f32 (reference)".to_string(),
        "—".into(),
        format!("{:.1}%", 100.0 * f32_acc),
        "—".into(),
    ]];
    for bits in [16u8, 8, 6, 4, 3] {
        let mut q_model = deployed.clone();
        let report = quant::fake_quantize_model(&mut q_model, bits).expect("quantize");
        let acc = evaluate(&q_model, &data, Split::Test, 32).expect("eval");
        rows.push(vec![
            format!("int{bits}"),
            eng(report.footprint_bytes() as f64),
            format!("{:.1}%", 100.0 * acc),
            format!("{:+.1} pts", 100.0 * (acc - f32_acc)),
        ]);
    }
    print_table(
        "quantization of the deployed ALF model (weights only)",
        &["precision", "weight bytes", "accuracy", "Δacc vs f32"],
        &rows,
    );
    println!(
        "\nexpected: int8 is accuracy-neutral on top of ALF compression (the paper's \
         orthogonality claim); degradation appears only at very low bit-widths."
    );
}
