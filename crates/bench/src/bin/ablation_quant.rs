//! Ablation A5 — post-training quantization of deployed ALF models.
//!
//! Thin wrapper over `alf_bench::jobs::ablations::quant`; the experiment
//! body lives in the library so `alf-lab` can schedule it.

fn main() {
    alf_bench::jobs::standalone_main("ablation_quant");
}
