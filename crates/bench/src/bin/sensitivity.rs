//! Per-layer pruning sensitivity vs the ALF keep decisions.
//!
//! Thin wrapper over `alf_bench::jobs::tables::sensitivity`; the
//! experiment body lives in the library so `alf-lab` can schedule it.

fn main() {
    alf_bench::jobs::standalone_main("sensitivity");
}
