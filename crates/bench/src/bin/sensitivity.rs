//! Supplementary analysis — per-layer pruning sensitivity (Han et al.),
//! the handcrafted counterpart of the adaptive `νprune` schedule, compared
//! against where ALF actually prunes.
//!
//! Trains a vanilla Plain-20, probes each layer's magnitude-pruning
//! sensitivity in isolation, then trains the ALF variant and prints the
//! per-layer filters it kept — so the correlation (ALF prunes harder where
//! the static analysis says it is safe) can be eyeballed.

use alf_baselines::sensitivity::layer_sensitivity;
use alf_bench::{print_table, CifarConfig, Scale};
use alf_core::models::{plain20, plain20_alf};
use alf_core::train::AlfTrainer;

fn main() {
    let scale = Scale::from_args();
    let cfg = CifarConfig::at(scale);
    let data = cfg.dataset(50).expect("dataset");
    println!(
        "Per-layer pruning sensitivity vs ALF keep decisions ({} scale)",
        scale.label()
    );

    eprintln!("training vanilla Plain-20 …");
    let mut vt = AlfTrainer::new(
        plain20(cfg.classes, cfg.width).expect("model"),
        cfg.hyper.clone(),
        20,
    )
    .expect("trainer");
    vt.run(&data, cfg.epochs).expect("training");
    let vanilla = vt.into_model();

    eprintln!("probing sensitivity …");
    let ratios = [0.25f32, 0.5, 0.75, 1.0];
    let curves = layer_sensitivity(&vanilla, &data, &ratios, 32).expect("sensitivity");

    eprintln!("training ALF Plain-20 …");
    let mut at = AlfTrainer::new(
        plain20_alf(cfg.classes, cfg.width, cfg.block, 21).expect("model"),
        cfg.hyper.clone(),
        21,
    )
    .expect("trainer");
    at.run(&data, cfg.epochs).expect("training");
    let stats = at.into_model().filter_stats();

    let rows: Vec<Vec<String>> = curves
        .iter()
        .zip(&stats)
        .map(|(c, (name, active, total))| {
            let mut row = vec![name.clone()];
            for (r, a) in &c.points {
                row.push(format!("{:.0}%@{:.2}", 100.0 * a, r));
            }
            row.push(format!(
                "{}/{} ({:.0}%)",
                active,
                total,
                100.0 * *active as f32 / *total as f32
            ));
            row
        })
        .collect();
    print_table(
        "accuracy when pruning ONE layer to the given keep-ratio (others dense) | ALF kept",
        &[
            "layer", "keep .25", "keep .50", "keep .75", "keep 1.0", "ALF kept",
        ],
        &rows,
    );
    println!(
        "\nreading: layers whose accuracy column barely moves at keep .25 are insensitive — \
         the νprune game should (and the ALF column typically does) prune those hardest."
    );
}
