//! Ablation A3 — dataflow choice on the Eyeriss-like array.
//!
//! Thin wrapper over `alf_bench::jobs::ablations::dataflow`; the
//! experiment body lives in the library so `alf-lab` can schedule it.

fn main() {
    alf_bench::jobs::standalone_main("ablation_dataflow");
}
