//! Ablation A3 — how much of Fig. 3's result depends on the
//! row-stationary dataflow?
//!
//! Re-maps the vanilla Plain-20 geometry under all three dataflows and
//! compares total energy and latency. Row-stationary should win on energy
//! (balanced reuse); output-stationary suffers from weight re-streaming on
//! this accelerator because weights bypass the global buffer.

use alf_bench::{eng, print_table, Scale};
use alf_core::models::geometry;
use alf_hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};

fn main() {
    let _scale = Scale::from_args(); // geometry-only: scale-independent
    println!("Ablation: dataflow choice on the Eyeriss-like array (Plain-20, batch 16)");
    let workloads: Vec<ConvWorkload> = geometry::plain20_layers(32, 3)
        .iter()
        .map(|s| ConvWorkload::from_shape(s, 16))
        .collect();
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for dataflow in [
        Dataflow::RowStationary,
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
    ] {
        let mapper = Mapper::new(Accelerator::eyeriss(), dataflow);
        let report = NetworkReport::evaluate(&mapper, &workloads).expect("mapping");
        let rf: f64 = report.layers.iter().map(|l| l.energy_rf).sum();
        let gb: f64 = report.layers.iter().map(|l| l.energy_buffer).sum();
        let dram: f64 = report.layers.iter().map(|l| l.energy_dram).sum();
        rows.push(vec![
            dataflow.label().to_string(),
            eng(report.total_energy()),
            format!("{}/{}/{}", eng(rf), eng(gb), eng(dram)),
            eng(report.total_latency()),
        ]);
        reports.push((dataflow, report));
    }
    print_table(
        "dataflow ablation: total energy and latency (normalised units)",
        &["dataflow", "total energy", "RF/GB/DRAM", "latency"],
        &rows,
    );
    let best = reports
        .iter()
        .min_by(|a, b| a.1.total_energy().total_cmp(&b.1.total_energy()))
        .expect("non-empty");
    println!(
        "\nminimum-energy dataflow: {} (Eyeriss implements row-stationary for this reason)",
        best.0
    );
}
