//! Serving throughput benchmark: uncompressed vs compressed vs int8
//! Plain-20.
//!
//! Builds a Plain-20 ALF model, clips 70% of every block's mask entries
//! (the serving cost depends only on the resulting sparsity, not on how
//! training produced it), and serves the same open-loop synthetic load
//! against three forms of the network:
//!
//! * **uncompressed** — the training-form ALF model (full `Co`-filter
//!   convolutions through the masked code),
//! * **compressed** — `deploy::Pipeline` output (stripped code conv +
//!   1×1 expansion, f32), and
//! * **int8** — the same deployment served at [`Precision::Int8`]: the
//!   replica folds batch-norm and lowers to the fused `i8×i8→i32` engine,
//!   calibrated on a batch drawn from the benchmark's own image pool.
//!
//! The offered rate is fixed at 1.5× the faster server's measured
//! capacity, so both runs are saturated and completed-throughput reflects
//! service capacity. Results go to stdout as a table and to
//! `BENCH_serve.json` (throughput in img/s, p50/p95/p99 latency, mean
//! batch occupancy, rejection counts).
//!
//! A second **socket mode** then repeats the comparison end to end over
//! real TCP: one `alf_net::NetServer` routes both model forms, clients
//! probe each model's capacity closed-loop over keep-alive connections,
//! then offer paced traffic at 1.5× the faster capacity. The `socket`
//! section of `BENCH_serve.json` records per-model socket throughput and
//! per-status tallies plus the front end's accept/shed/parse-error
//! counters.
//!
//! `--smoke` (default; a few seconds) **gates**: the process exits
//! nonzero when the compressed model does not serve strictly more images
//! per second than the uncompressed one — in process *and* over the
//! socket — when the int8 form does not serve strictly more than the f32
//! compressed form, or when int8 top-1 agreement with the f32 deployment
//! falls below 99% on a held-out eval set. `--paper` serves the full
//! 32×32/10-class geometry for longer windows.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use alf_bench::Scale;
use alf_core::block::AlfBlockConfig;
use alf_core::deploy::{self, Pipeline, QuantSpec};
use alf_core::model::CnnModel;
use alf_core::models::plain20_alf;
use alf_net::client::HttpClient;
use alf_net::{ModelSpec, NetConfig, NetServer};
use alf_nn::{Layer, RunCtx};
use alf_obs::json::JsonWriter;
use alf_obs::metrics::MetricsRegistry;
use alf_serve::{Precision, ServeConfig, Server, ServerStats};
use alf_tensor::init::Init;
use alf_tensor::rng::Rng;
use alf_tensor::Tensor;

/// Fraction of each ALF block's filters clipped before deployment.
const PRUNED_FRACTION: f64 = 0.7;

struct Params {
    classes: usize,
    width: usize,
    image: usize,
    workers: usize,
    max_batch: usize,
    queue_depth: usize,
    probe: Duration,
    run: Duration,
}

fn params(scale: Scale) -> Params {
    match scale {
        Scale::Smoke => Params {
            classes: 4,
            width: 8,
            image: 16,
            workers: 2,
            max_batch: 8,
            queue_depth: 64,
            probe: Duration::from_millis(300),
            run: Duration::from_millis(900),
        },
        Scale::Paper => Params {
            classes: 10,
            width: 16,
            image: 32,
            workers: 4,
            max_batch: 16,
            queue_depth: 256,
            probe: Duration::from_millis(500),
            run: Duration::from_secs(5),
        },
    }
}

struct RunResult {
    throughput: f64,
    stats: ServerStats,
}

fn main() {
    let scale = Scale::from_args();
    let p = params(scale);
    let host_threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    println!(
        "serve bench  scale={}  host-threads={host_threads}  image=3x{}x{}  classes={}",
        scale.label(),
        p.image,
        p.image,
        p.classes
    );

    // --- the two model forms ---
    let mut alf = plain20_alf(p.classes, p.width, AlfBlockConfig::paper_default(), 42)
        .expect("build plain20-alf");
    clip_masks(&mut alf, PRUNED_FRACTION);
    let deployed = deploy::Pipeline::new().run(&alf).expect("deploy").model;
    println!(
        "pruned {:.0}% of code filters (remaining {:.0}%)",
        100.0 * PRUNED_FRACTION,
        100.0 * alf.remaining_filter_fraction()
    );

    let serve_cfg = ServeConfig {
        workers: p.workers,
        max_batch: p.max_batch,
        max_wait: Duration::from_millis(1),
        queue_depth: p.queue_depth,
        ..ServeConfig::new(3, p.image, p.image)
    };

    let mut rng = Rng::new(7);
    let pool: Vec<Tensor> = (0..64)
        .map(|_| Tensor::randn(&[3, p.image, p.image], Init::Rand, &mut rng))
        .collect();
    // Calibration batch for the int8 form, drawn from the same pool the
    // load generator replays.
    let calib = stack_images(&pool[..16.min(pool.len())]);
    let int8_cfg = ServeConfig {
        precision: Precision::Int8(calib.clone()),
        ..serve_cfg.clone()
    };

    // int8 fidelity: top-1 agreement between the int8 engine and the f32
    // deployment on a held-out eval set (fresh draws, not the pool).
    let agreement = int8_agreement(&deployed, &calib, p.image, &mut rng);
    println!(
        "int8 top-1 agreement vs f32 deployment: {:.2}%",
        100.0 * agreement
    );

    // --- capacity probe (closed loop), then one shared offered rate ---
    let cap_alf = probe_capacity(&alf, &serve_cfg, &pool, p.probe);
    let cap_dep = probe_capacity(&deployed, &serve_cfg, &pool, p.probe);
    let cap_int8 = probe_capacity(&deployed, &int8_cfg, &pool, p.probe);
    let offered = 1.5 * cap_alf.max(cap_dep).max(cap_int8);
    println!(
        "capacity probe: uncompressed {cap_alf:.0} img/s, compressed {cap_dep:.0} img/s, \
         int8 {cap_int8:.0} img/s -> offered load {offered:.0} img/s"
    );

    // --- measured open-loop runs ---
    let runs = [
        ("plain20-alf (uncompressed)", &alf, &serve_cfg),
        ("deployed-plain20-alf (compressed)", &deployed, &serve_cfg),
        ("deployed-plain20-alf (int8)", &deployed, &int8_cfg),
    ];
    let mut results = Vec::new();
    println!(
        "{:<36} {:>12} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "model", "img/s", "p50 ms", "p95 ms", "p99 ms", "occupancy", "rejected"
    );
    for (name, model, cfg) in runs {
        let r = run_open_loop(model, cfg, &pool, offered, p.run);
        println!(
            "{:<36} {:>12.1} {:>9.3} {:>9.3} {:>9.3} {:>10.2} {:>9}",
            name,
            r.throughput,
            r.stats.p50_ms,
            r.stats.p95_ms,
            r.stats.p99_ms,
            r.stats.mean_batch_occupancy,
            r.stats.rejected(),
        );
        results.push((name, r));
    }

    let speedup = results[1].1.throughput / results[0].1.throughput;
    let int8_speedup = results[2].1.throughput / results[1].1.throughput;

    // --- socket mode: the same comparison over real TCP connections ---
    let registry = MetricsRegistry::new();
    let net = NetServer::start(
        vec![
            ModelSpec {
                name: "uncompressed".to_string(),
                model: alf.clone(),
                serve: serve_cfg.clone(),
            },
            ModelSpec {
                name: "compressed".to_string(),
                model: deployed.clone(),
                serve: serve_cfg.clone(),
            },
            ModelSpec {
                name: "int8".to_string(),
                model: deployed.clone(),
                serve: int8_cfg.clone(),
            },
        ],
        NetConfig {
            threads: Some(2 * p.workers),
            ..NetConfig::new("127.0.0.1:0")
        },
        registry.clone(),
    )
    .expect("start net server");
    let addr = net.addr();
    let bodies: Vec<Vec<u8>> = pool
        .iter()
        .map(|t| t.data().iter().flat_map(|v| v.to_le_bytes()).collect())
        .collect();

    let sock_cap_alf = socket_probe(addr, "uncompressed", &bodies, p.probe);
    let sock_cap_dep = socket_probe(addr, "compressed", &bodies, p.probe);
    let sock_cap_int8 = socket_probe(addr, "int8", &bodies, p.probe);
    let sock_offered = 1.5 * sock_cap_alf.max(sock_cap_dep).max(sock_cap_int8);
    println!(
        "\nsocket capacity probe: uncompressed {sock_cap_alf:.0} img/s, \
         compressed {sock_cap_dep:.0} img/s, int8 {sock_cap_int8:.0} img/s \
         -> offered load {sock_offered:.0} img/s"
    );
    println!(
        "{:<36} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "socket run", "img/s", "ok", "429", "503", "504"
    );
    let mut socket_results = Vec::new();
    for model in ["uncompressed", "compressed", "int8"] {
        let r = socket_open_loop(addr, model, &bodies, sock_offered, p.run);
        println!(
            "{:<36} {:>12.1} {:>8} {:>8} {:>8} {:>8}",
            model, r.throughput, r.ok, r.quota_429, r.unavailable_503, r.expired_504
        );
        socket_results.push((model, r));
    }
    let socket_speedup = socket_results[1].1.throughput / socket_results[0].1.throughput;
    net.shutdown();
    let net_snapshot = registry.snapshot();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("bench", "serve");
    w.field_str("scale", scale.label());
    w.field_u64("host_threads", host_threads as u64);
    w.key("config");
    w.begin_object();
    w.field_u64("workers", p.workers as u64);
    w.field_u64("max_batch", p.max_batch as u64);
    w.field_f64("max_wait_ms", 1.0);
    w.field_u64("queue_depth", p.queue_depth as u64);
    w.field_u64s("image", [3, p.image as u64, p.image as u64]);
    w.field_u64("classes", p.classes as u64);
    w.field_f64("pruned_fraction", PRUNED_FRACTION);
    w.end_object();
    w.field_f64("offered_rate_img_s", offered);
    w.key("runs");
    w.begin_array();
    for (name, r) in &results {
        w.begin_object();
        w.field_str("model", name);
        w.field_f64("throughput_img_s", r.throughput);
        w.key("stats");
        r.stats.write_json(&mut w);
        w.end_object();
    }
    w.end_array();
    w.field_f64("speedup", speedup);
    w.key("int8");
    w.begin_object();
    w.field_f64("throughput_img_s", results[2].1.throughput);
    w.field_f64("speedup_vs_f32_compressed", int8_speedup);
    w.field_f64("top1_agreement", agreement);
    w.field_u64("calibration_images", calib.dims()[0] as u64);
    w.key("stats");
    results[2].1.stats.write_json(&mut w);
    w.end_object();
    w.key("socket");
    w.begin_object();
    w.field_f64("offered_rate_img_s", sock_offered);
    w.key("runs");
    w.begin_array();
    for (model, r) in &socket_results {
        w.begin_object();
        w.field_str("model", model);
        w.field_f64("throughput_img_s", r.throughput);
        w.field_u64("ok", r.ok);
        w.field_u64("rejected_quota_429", r.quota_429);
        w.field_u64("rejected_unavailable_503", r.unavailable_503);
        w.field_u64("expired_504", r.expired_504);
        w.end_object();
    }
    w.end_array();
    for counter in [
        "net.accepted",
        "net.closed",
        "net.conn_limit_rejected",
        "net.shed_quota",
        "net.parse_errors",
        "net.responses",
    ] {
        w.field_u64(counter, net_snapshot.counter(counter).unwrap_or(0));
    }
    w.field_f64("speedup", socket_speedup);
    w.end_object();
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!(
        "\ncompression speedup: {speedup:.2}x in process, {socket_speedup:.2}x over the socket\n\
         int8 speedup over f32 compressed: {int8_speedup:.2}x \
         (top-1 agreement {:.2}%)\nwrote BENCH_serve.json",
        100.0 * agreement
    );

    // Gate: the deployment pipeline must improve serving throughput, both
    // in process and end to end over TCP.
    if speedup <= 1.0 {
        eprintln!(
            "FAIL: compressed model served {speedup:.2}x the uncompressed throughput \
             (expected > 1.0x)"
        );
        std::process::exit(1);
    }
    if socket_speedup <= 1.0 {
        eprintln!(
            "FAIL: compressed model served {socket_speedup:.2}x the uncompressed throughput \
             over the socket (expected > 1.0x)"
        );
        std::process::exit(1);
    }
    // Gate: the int8 engine must beat the f32 compressed path while
    // agreeing with it on ≥99% of top-1 predictions.
    if int8_speedup <= 1.0 {
        eprintln!(
            "FAIL: int8 model served {int8_speedup:.2}x the f32 compressed throughput \
             (expected > 1.0x)"
        );
        std::process::exit(1);
    }
    if agreement < 0.99 {
        eprintln!(
            "FAIL: int8 top-1 agreement {:.2}% with the f32 deployment (expected >= 99%)",
            100.0 * agreement
        );
        std::process::exit(1);
    }
}

/// Stacks `[3, H, W]` images into one `NCHW` calibration batch.
fn stack_images(images: &[Tensor]) -> Tensor {
    let dims = images[0].dims();
    let mut data = Vec::with_capacity(images.len() * images[0].len());
    for img in images {
        data.extend_from_slice(img.data());
    }
    Tensor::from_vec(data, &[images.len(), dims[0], dims[1], dims[2]]).expect("stack calib batch")
}

/// Fraction of a held-out eval set on which the int8 engine's top-1
/// prediction matches the f32 deployment's.
fn int8_agreement(deployed: &CnnModel, calib: &Tensor, image: usize, rng: &mut Rng) -> f64 {
    let lowered = Pipeline::new()
        .fold_bn(true)
        .quantize(QuantSpec::int8(calib.clone()))
        .run(deployed)
        .expect("int8 lowering");
    let mut qm = lowered.quantized.expect("quantized engine");
    let mut f32m = deployed.clone();
    let mut ctx = RunCtx::eval();
    let classes = f32m.num_classes();
    let (batch, batches) = (16usize, 16usize);
    let mut agree = 0usize;
    for _ in 0..batches {
        let x = Tensor::randn(&[batch, 3, image, image], Init::Rand, rng);
        let logits = f32m.forward(&x, &mut ctx).expect("f32 forward");
        let q = qm.predict(&x).expect("int8 predict");
        for (row, &qc) in logits.data().chunks_exact(classes).zip(&q) {
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            agree += usize::from(best == qc);
        }
    }
    agree as f64 / (batch * batches) as f64
}

/// Per-model socket-run tally.
struct SocketResult {
    throughput: f64,
    ok: u64,
    quota_429: u64,
    unavailable_503: u64,
    expired_504: u64,
}

/// Closed-loop capacity estimate over real connections: two keep-alive
/// clients keep one request in flight each; completions per second.
fn socket_probe(addr: SocketAddr, model: &str, bodies: &[Vec<u8>], duration: Duration) -> f64 {
    let target = format!("/v1/models/{model}/predict");
    let start = Instant::now();
    let completed: u64 = std::thread::scope(|scope| {
        (0..2)
            .map(|t| {
                let target = &target;
                scope.spawn(move || {
                    let mut client =
                        HttpClient::connect(addr, Duration::from_secs(30)).expect("connect");
                    let mut ok = 0u64;
                    let mut i = t;
                    while start.elapsed() < duration {
                        let resp = client
                            .post(target, &[], &bodies[i % bodies.len()])
                            .expect("probe request answered");
                        assert_eq!(resp.status, 200, "{}", resp.text());
                        ok += 1;
                        i += 1;
                    }
                    ok
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("probe client"))
            .sum()
    });
    completed as f64 / start.elapsed().as_secs_f64()
}

/// Paced offered traffic over real connections: each client thread paces
/// its share of the offered rate and catches up after slow responses, so
/// the aggregate arrival schedule is fixed while the server sheds what it
/// must (429/503/504 are counted, never dropped silently).
fn socket_open_loop(
    addr: SocketAddr,
    model: &str,
    bodies: &[Vec<u8>],
    rate_per_s: f64,
    duration: Duration,
) -> SocketResult {
    const CLIENTS: usize = 4;
    let target = format!("/v1/models/{model}/predict");
    let per_client = rate_per_s / CLIENTS as f64;
    let start = Instant::now();
    let tallies: Vec<(u64, u64, u64, u64)> = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|t| {
                let target = &target;
                scope.spawn(move || {
                    let mut client =
                        HttpClient::connect(addr, Duration::from_secs(30)).expect("connect");
                    let (mut ok, mut quota, mut unavail, mut expired) = (0u64, 0u64, 0u64, 0u64);
                    let mut issued = 0u64;
                    while start.elapsed() < duration {
                        let due = (start.elapsed().as_secs_f64() * per_client) as u64;
                        if issued >= due {
                            std::thread::sleep(Duration::from_micros(200));
                            continue;
                        }
                        let body = &bodies[(t + issued as usize) % bodies.len()];
                        let resp = client.post(target, &[], body).expect("request answered");
                        issued += 1;
                        match resp.status {
                            200 => ok += 1,
                            429 => quota += 1,
                            503 => unavail += 1,
                            504 => expired += 1,
                            other => panic!("untyped status {other}: {}", resp.text()),
                        }
                    }
                    (ok, quota, unavail, expired)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("load client"))
            .collect()
    });
    let elapsed = start.elapsed();
    let sum = |f: fn(&(u64, u64, u64, u64)) -> u64| tallies.iter().map(f).sum::<u64>();
    SocketResult {
        throughput: sum(|t| t.0) as f64 / elapsed.as_secs_f64(),
        ok: sum(|t| t.0),
        quota_429: sum(|t| t.1),
        unavailable_503: sum(|t| t.2),
        expired_504: sum(|t| t.3),
    }
}

/// Clips the trailing `fraction` of every ALF block's mask entries so the
/// code has exact zero filters for `deploy::compress` to strip.
fn clip_masks(model: &mut CnnModel, fraction: f64) {
    for block in model.alf_blocks_mut() {
        let co = block.autoencoder().mask().len();
        let keep = (((1.0 - fraction) * co as f64).ceil() as usize).clamp(1, co);
        for j in keep..co {
            block.autoencoder_mut().set_mask_value(j, 0.0);
        }
    }
}

/// Closed-loop capacity estimate: keep the pipeline full, count
/// completions per second.
fn probe_capacity(model: &CnnModel, cfg: &ServeConfig, pool: &[Tensor], duration: Duration) -> f64 {
    let server = Server::start(model, cfg.clone()).expect("start probe server");
    let inflight_target = (cfg.workers * cfg.max_batch * 2).min(cfg.queue_depth);
    let mut inflight = VecDeque::new();
    let mut submitted = 0usize;
    let mut completed = 0u64;
    let start = Instant::now();
    while start.elapsed() < duration {
        while inflight.len() < inflight_target {
            match server.submit(pool[submitted % pool.len()].clone()) {
                Ok(pending) => inflight.push_back(pending),
                Err(_) => break,
            }
            submitted += 1;
        }
        if let Some(pending) = inflight.pop_front() {
            pending.wait().expect("probe request failed");
            completed += 1;
        }
    }
    let elapsed = start.elapsed();
    for pending in inflight {
        let _ = pending.wait();
    }
    server.shutdown();
    completed as f64 / elapsed.as_secs_f64()
}

/// Open-loop run at a fixed offered rate: requests arrive on schedule
/// regardless of completions; the bounded queue sheds overload as typed
/// rejections. Throughput is completions over the full window including
/// the drain tail.
fn run_open_loop(
    model: &CnnModel,
    cfg: &ServeConfig,
    pool: &[Tensor],
    rate_per_s: f64,
    duration: Duration,
) -> RunResult {
    let server = Server::start(model, cfg.clone()).expect("start server");
    let mut pendings = Vec::new();
    let mut produced = 0u64;
    let start = Instant::now();
    while start.elapsed() < duration {
        let due = (start.elapsed().as_secs_f64() * rate_per_s) as u64;
        while produced < due {
            let image = pool[(produced as usize) % pool.len()].clone();
            if let Ok(pending) = server.submit(image) {
                pendings.push(pending);
            }
            produced += 1;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    for pending in pendings {
        pending.wait().expect("request failed");
    }
    let elapsed = start.elapsed();
    server.shutdown();
    let stats = server.stats();
    RunResult {
        throughput: stats.completed as f64 / elapsed.as_secs_f64(),
        stats,
    }
}
