//! Headline claim — "ALF showed a reduction of 70% in network parameters,
//! 61% in operations and 41% in execution time, with minimal loss in
//! accuracy" (plus the 29% energy reduction from §IV-B).
//!
//! Trains ALF-ResNet-20, maps the result onto the paper geometry and the
//! Eyeriss model, and prints measured-vs-paper for all four numbers.

use alf_bench::{print_table, CifarConfig, Scale};
use alf_core::models::{geometry, resnet20, resnet20_alf};
use alf_core::train::AlfTrainer;
use alf_core::NetworkCost;
use alf_hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};

fn main() {
    let scale = Scale::from_args();
    let cfg = CifarConfig::at(scale);
    let data = cfg.dataset(55).expect("dataset");
    println!("Headline-claim reproduction ({} scale)", scale.label());

    eprintln!("training vanilla ResNet-20 …");
    let mut vt = AlfTrainer::new(
        resnet20(cfg.classes, cfg.width).expect("model"),
        cfg.hyper.clone(),
        1,
    )
    .expect("trainer");
    let vanilla_report = vt.run(&data, cfg.epochs).expect("training");

    eprintln!("training ALF-ResNet-20 …");
    let mut at = AlfTrainer::new(
        resnet20_alf(cfg.classes, cfg.width, cfg.block, 2).expect("model"),
        cfg.hyper.clone(),
        2,
    )
    .expect("trainer");
    let alf_report = at.run(&data, cfg.epochs).expect("training");
    let ratios: Vec<f32> = at
        .into_model()
        .filter_stats()
        .iter()
        .map(|(_, a, t)| *a as f32 / *t as f32)
        .collect();

    // Theoretical metrics on the paper geometry.
    let paper_geometry = geometry::plain20_layers(32, 3);
    let baseline = NetworkCost::of_layers(&paper_geometry);
    let alf_cost = NetworkCost::of_alf_layers(paper_geometry.iter().zip(
        ratios
            .iter()
            .zip(&paper_geometry)
            .map(|(&r, s)| ((s.c_out as f32 * r).round() as usize).max(1)),
    ));
    let (d_params, d_macs) = alf_cost.reduction_vs(&baseline);

    // Hardware metrics on the Eyeriss model.
    let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);
    let vanilla_hw = NetworkReport::evaluate(
        &mapper,
        &paper_geometry
            .iter()
            .map(|s| ConvWorkload::from_shape(s, 16))
            .collect::<Vec<_>>(),
    )
    .expect("mapping");
    let alf_workloads = alf_hwmodel::alf_network(&paper_geometry, &ratios, 16);
    let alf_hw = NetworkReport::evaluate(&mapper, &alf_workloads)
        .expect("mapping")
        .merged();
    let (d_energy, d_latency) = alf_hw.reduction_vs(&vanilla_hw);

    let rows = vec![
        vec![
            "parameters".into(),
            format!("−{d_params:.0}%"),
            "−70%".into(),
        ],
        vec!["operations".into(), format!("−{d_macs:.0}%"), "−61%".into()],
        vec![
            "execution time".into(),
            format!("−{d_latency:.0}%"),
            "−41%".into(),
        ],
        vec!["energy".into(), format!("−{d_energy:.0}%"), "−29%".into()],
        vec![
            "accuracy drop".into(),
            format!(
                "{:.1} pts",
                100.0 * (vanilla_report.final_accuracy() - alf_report.final_accuracy())
            ),
            "1.9 pts".into(),
        ],
    ];
    print_table(
        "Headline claims: measured vs paper",
        &["metric", "measured", "paper"],
        &rows,
    );
    println!(
        "\nremaining filters: {:.0}% (Fig. 2c paper range ≈ 36–40% at t = 1e-4)",
        100.0 * alf_report.final_remaining_filters()
    );
}
