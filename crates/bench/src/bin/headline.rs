//! Headline claims — params/OPs/latency/energy/accuracy, measured vs paper.
//!
//! Thin wrapper over `alf_bench::jobs::tables::headline`; the experiment
//! body lives in the library so `alf-lab` can schedule it against the
//! shared baseline trainings.

fn main() {
    alf_bench::jobs::standalone_main("headline");
}
