//! Headline claim — "ALF showed a reduction of 70% in network parameters,
//! 61% in operations and 41% in execution time, with minimal loss in
//! accuracy" (plus the 29% energy reduction from §IV-B).
//!
//! Trains ALF-ResNet-20, maps the result onto the paper geometry and the
//! Eyeriss model, and prints measured-vs-paper for all four numbers.

use alf_bench::{print_table, CifarConfig, Scale};
use alf_core::models::{geometry, resnet20, resnet20_alf};
use alf_core::train::AlfTrainer;
use alf_core::NetworkCost;
use alf_data::Split;
use alf_hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};
use alf_nn::{softmax_cross_entropy, Layer, RunCtx};

fn main() {
    let scale = Scale::from_args();
    let cfg = CifarConfig::at(scale);
    let data = cfg.dataset(55).expect("dataset");
    println!("Headline-claim reproduction ({} scale)", scale.label());

    eprintln!("training vanilla ResNet-20 …");
    let mut vt = AlfTrainer::new(
        resnet20(cfg.classes, cfg.width).expect("model"),
        cfg.hyper.clone(),
        1,
    )
    .expect("trainer");
    let vanilla_report = vt.run(&data, cfg.epochs).expect("training");

    eprintln!("training ALF-ResNet-20 …");
    let mut at = AlfTrainer::new(
        resnet20_alf(cfg.classes, cfg.width, cfg.block, 2).expect("model"),
        cfg.hyper.clone(),
        2,
    )
    .expect("trainer");
    let alf_report = at.run(&data, cfg.epochs).expect("training");
    let mut model = at.into_model();
    let ratios: Vec<f32> = model
        .filter_stats()
        .iter()
        .map(|(_, a, t)| *a as f32 / *t as f32)
        .collect();

    // Measured per-layer cost: one profiled fwd+bwd batch through the
    // trained ALF model via a RunCtx with the profiler attached.
    eprintln!("profiling one training batch …");
    let batch: Vec<usize> = (0..cfg.hyper.batch_size.min(data.len_of(Split::Train))).collect();
    let (images, labels) = data.gather(Split::Train, &batch).expect("batch");
    let mut ctx = RunCtx::train().with_profiler();
    let logits = model.forward(&images, &mut ctx).expect("forward");
    let (_, grad) = softmax_cross_entropy(&logits, &labels).expect("loss");
    model.backward(&grad, &mut ctx).expect("backward");
    let profile = ctx.report().expect("profiler was attached");

    // Theoretical metrics on the paper geometry.
    let paper_geometry = geometry::plain20_layers(32, 3);
    let baseline = NetworkCost::of_layers(&paper_geometry);
    let alf_cost = NetworkCost::of_alf_layers(
        paper_geometry.iter().zip(
            ratios
                .iter()
                .zip(&paper_geometry)
                .map(|(&r, s)| ((s.c_out as f32 * r).round() as usize).max(1)),
        ),
    );
    let (d_params, d_macs) = alf_cost.reduction_vs(&baseline);

    // Hardware metrics on the Eyeriss model.
    let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);
    let vanilla_hw = NetworkReport::evaluate(
        &mapper,
        &paper_geometry
            .iter()
            .map(|s| ConvWorkload::from_shape(s, 16))
            .collect::<Vec<_>>(),
    )
    .expect("mapping");
    let alf_workloads = alf_hwmodel::alf_network(&paper_geometry, &ratios, 16);
    let alf_hw = NetworkReport::evaluate(&mapper, &alf_workloads)
        .expect("mapping")
        .merged();
    let (d_energy, d_latency) = alf_hw.reduction_vs(&vanilla_hw);

    let rows = vec![
        vec![
            "parameters".into(),
            format!("−{d_params:.0}%"),
            "−70%".into(),
        ],
        vec!["operations".into(), format!("−{d_macs:.0}%"), "−61%".into()],
        vec![
            "execution time".into(),
            format!("−{d_latency:.0}%"),
            "−41%".into(),
        ],
        vec!["energy".into(), format!("−{d_energy:.0}%"), "−29%".into()],
        vec![
            "accuracy drop".into(),
            format!(
                "{:.1} pts",
                100.0 * (vanilla_report.final_accuracy() - alf_report.final_accuracy())
            ),
            "1.9 pts".into(),
        ],
    ];
    print_table(
        "Headline claims: measured vs paper",
        &["metric", "measured", "paper"],
        &rows,
    );
    println!(
        "\nremaining filters: {:.0}% (Fig. 2c paper range ≈ 36–40% at t = 1e-4)",
        100.0 * alf_report.final_remaining_filters()
    );

    // Per-layer measured wall time next to the Eyeriss per-layer latency
    // prediction (joined by conv-unit name; the hw columns are on the
    // paper geometry, so compare shapes, not absolute scales).
    let layer_rows: Vec<Vec<String>> = profile
        .layers
        .iter()
        .map(|l| {
            let hw = alf_hw.layers.iter().find(|r| r.name == l.name);
            vec![
                l.name.clone(),
                format!("{:.3}", l.fwd_ns as f64 / 1e6),
                format!("{:.3}", l.bwd_ns as f64 / 1e6),
                format!("{:.1}", l.flops as f64 / 1e6),
                hw.map_or_else(|| "—".into(), |r| format!("{:.0}", r.latency_cycles)),
            ]
        })
        .collect();
    print_table(
        "Per-layer: measured (profiler) vs Eyeriss prediction",
        &["layer", "fwd ms", "bwd ms", "MFLOPs", "hw cycles"],
        &layer_rows,
    );
    println!(
        "\narena high water: {:.2} MB",
        profile.ws_high_water_bytes as f64 / 1e6
    );
    println!("\nper-layer profile JSON:\n{}", profile.to_json());
}
