//! Ablation A4 — fused-layer scheduling of the ALF block's codependent
//! `code → expansion` pair.
//!
//! §IV-B: "such codependent layers can be fused with some advanced
//! scheduling techniques, eliminating this \[DRAM\] overhead". This binary
//! quantifies that remark: it maps an ALF-compressed Plain-20 twice — the
//! naive per-layer schedule (what Fig. 3 reports) and the fused schedule
//! where the intermediate feature map never leaves the global buffer.

use alf_bench::{eng, print_table, Scale};
use alf_core::models::geometry;
use alf_hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};

const BATCH: usize = 16;
/// A representative post-training compression profile (≈40% remaining,
/// the paper's Fig. 2c steady state at t = 1e-4).
const REMAINING: f32 = 0.4;

fn main() {
    let _scale = Scale::from_args(); // geometry-only: scale-independent
    println!(
        "Ablation: fused-layer scheduling of ALF blocks (Plain-20 geometry, {:.0}% filters, batch {BATCH})",
        100.0 * REMAINING
    );
    let layers = geometry::plain20_layers(32, 3);
    let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);

    let pairs: Vec<(ConvWorkload, ConvWorkload)> = layers
        .iter()
        .map(|s| {
            let c_code = ((s.c_out as f32 * REMAINING).round() as usize).clamp(1, s.c_out);
            alf_hwmodel::alf_pair(s, c_code, BATCH)
        })
        .collect();

    let flat: Vec<ConvWorkload> = pairs
        .iter()
        .flat_map(|(c, e)| [c.clone(), e.clone()])
        .collect();
    let unfused = NetworkReport::evaluate(&mapper, &flat)
        .expect("mapping")
        .merged();
    let fused = NetworkReport::evaluate_fused_pairs(&mapper, &pairs).expect("mapping");
    let vanilla = NetworkReport::evaluate(
        &mapper,
        &layers
            .iter()
            .map(|s| ConvWorkload::from_shape(s, BATCH))
            .collect::<Vec<_>>(),
    )
    .expect("mapping");

    let rows: Vec<Vec<String>> = unfused
        .layers
        .iter()
        .zip(&fused.layers)
        .map(|(u, f)| {
            vec![
                u.name.to_uppercase(),
                eng(u.energy_dram),
                eng(f.energy_dram),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - f.energy_dram / u.energy_dram.max(1.0))
                ),
                eng(u.total_energy()),
                eng(f.total_energy()),
            ]
        })
        .collect();
    print_table(
        "fusion ablation: per-layer DRAM and total energy",
        &[
            "layer",
            "DRAM unfused",
            "DRAM fused",
            "DRAM cut",
            "E unfused",
            "E fused",
        ],
        &rows,
    );
    let summarise = |label: &str, r: &NetworkReport| {
        let (de, dl) = r.reduction_vs(&vanilla);
        println!(
            "{label}: total energy {} ({:+.0}% vs vanilla), latency {} ({:+.0}% vs vanilla)",
            eng(r.total_energy()),
            -de,
            eng(r.total_latency()),
            -dl
        );
    };
    summarise("unfused (Fig. 3 schedule)", &unfused);
    summarise("fused              ", &fused);
    println!(
        "\nexpected: fusion removes the expansion layer's off-chip round trip, recovering the \
         paper's 'overhead eliminated' scenario — the early-layer DRAM penalty disappears."
    );
}
