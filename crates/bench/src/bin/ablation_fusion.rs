//! Ablation A4 — fused-layer scheduling of the ALF block's pair.
//!
//! Thin wrapper over `alf_bench::jobs::ablations::fusion`; the experiment
//! body lives in the library so `alf-lab` can schedule it.

fn main() {
    alf_bench::jobs::standalone_main("ablation_fusion");
}
