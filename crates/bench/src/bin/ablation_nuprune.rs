//! Ablation A2 — the νprune schedule vs constant pruning pressure.
//!
//! Thin wrapper over `alf_bench::jobs::ablations::nuprune`; the
//! experiment body lives in the library so `alf-lab` can schedule it.

fn main() {
    alf_bench::jobs::standalone_main("ablation_nuprune");
}
