//! Ablation A2 — the νprune schedule vs constant pruning pressure.
//!
//! The paper weights the mask regulariser with
//! `νprune = max(0, 1 − exp(m·(θ − prmax)))` so pressure decays as the
//! zero-fraction approaches the target, preventing over-pruning late in
//! training. This binary compares the schedule against constant pressure
//! (`νprune ≡ 1`, i.e. `prmax = 1` at slope 10 keeps ν ≈ 1 everywhere) by
//! tracking the remaining-filter trajectory and accuracy.

use alf_bench::{print_table, CifarConfig, Scale};
use alf_core::models::plain20_alf;
use alf_core::train::AlfTrainer;
use alf_core::PruneSchedule;

fn main() {
    let scale = Scale::from_args();
    let cfg = CifarConfig::at(scale);
    let data = cfg.dataset(99).expect("dataset");
    println!("Ablation: νprune schedule ({} scale)", scale.label());

    let variants: [(&str, PruneSchedule); 3] = [
        (
            "paper schedule (m=8, prmax=0.85)",
            PruneSchedule::paper_default(),
        ),
        (
            "near-constant pressure (m=1, prmax=1.0)",
            PruneSchedule::new(1.0, 1.0),
        ),
        (
            "early cut-off (m=8, prmax=0.5)",
            PruneSchedule::new(8.0, 0.5),
        ),
    ];
    let mut rows = Vec::new();
    for (label, schedule) in variants {
        let mut hyper = cfg.hyper.clone();
        hyper.prune_schedule = schedule;
        let model = plain20_alf(cfg.classes, cfg.width, cfg.block, 6).expect("model");
        let mut trainer = AlfTrainer::new(model, hyper, 6).expect("trainer");
        let report = trainer.run(&data, cfg.epochs).expect("training");
        let trajectory: Vec<String> = report
            .epochs
            .iter()
            .step_by((report.epochs.len() / 6).max(1))
            .map(|e| format!("{:.0}", 100.0 * e.remaining_filters))
            .collect();
        rows.push(vec![
            label.to_string(),
            trajectory.join("→"),
            format!("{:.0}%", 100.0 * report.final_remaining_filters()),
            format!("{:.1}%", 100.0 * report.final_accuracy()),
        ]);
    }
    print_table(
        "νprune ablation: remaining-filter trajectory (sampled epochs, %)",
        &["schedule", "trajectory", "final filters", "test acc"],
        &rows,
    );
    println!(
        "\nexpected: constant pressure keeps pruning past the target (more filters lost, \
         lower accuracy); an early cut-off stops pruning at ~50% zeros."
    );
}
