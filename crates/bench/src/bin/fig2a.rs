//! Fig. 2a — expansion-layer design-space exploration:
//! `[Wexp,init | σinter | BNinter]` accuracy bars for Plain-20 ALF blocks.

use alf_bench::{hbar, print_table, Scale};
use alf_core::explore::{explore_expansion, ExploreSetup};

fn main() {
    let scale = Scale::from_args();
    let setup = match scale {
        Scale::Smoke => ExploreSetup::smoke(),
        Scale::Paper => ExploreSetup::paper(),
    };
    println!(
        "Fig. 2a reproduction ({} scale): Plain-20 + ALF blocks (mask off), {} repeats",
        scale.label(),
        setup.repeats
    );
    let results = explore_expansion(&setup).expect("exploration failed");
    let best = results
        .iter()
        .map(|r| r.mean())
        .fold(f32::NEG_INFINITY, f32::max) as f64;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let (lo, hi) = r.spread();
            vec![
                r.label.clone(),
                format!("{:.1}%", 100.0 * r.mean()),
                format!("[{:.1}, {:.1}]", 100.0 * lo, 100.0 * hi),
                hbar(r.mean() as f64 / best.max(1e-9), 30),
            ]
        })
        .collect();
    print_table(
        "Fig. 2a: accuracy by [Wexp,init | σinter | BNinter]",
        &["config", "mean acc", "spread", "bar"],
        &rows,
    );
    let winner = results
        .iter()
        .max_by(|a, b| a.mean().total_cmp(&b.mean()))
        .expect("non-empty results");
    println!(
        "\nwinner: {}  (paper selects xavier init; BNinter showed no perceivable advantage)",
        winner.label
    );
}
