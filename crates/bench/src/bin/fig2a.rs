//! Fig. 2a — expansion-layer design-space exploration.
//!
//! Thin wrapper over `alf_bench::jobs::figures::fig2a`; the experiment
//! body lives in the library so `alf-lab` can schedule it.

fn main() {
    alf_bench::jobs::standalone_main("fig2a");
}
