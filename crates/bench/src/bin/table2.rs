//! Table II — pruned CNNs on (synthetic) CIFAR-10, conv layers only.
//!
//! Reproduces the comparison rows: Plain-20 / ResNet-20 vanilla, AMC
//! (learned policy), FPGM (handcrafted policy) and ALF (automatic,
//! `t = 1e-4` at paper scale). Params/OPs are reported on the paper's
//! width-16 / 32×32 geometry regardless of the training scale: each
//! method's per-layer keep decisions are mapped proportionally onto that
//! geometry so the columns are directly comparable with the paper's.

use alf_baselines::api::{apply_keep_ratios, chained_cost};
use alf_baselines::{AmcAgent, AmcConfig};
use alf_bench::{eng, print_table, CifarConfig, Scale};
use alf_core::models::{geometry, plain20, resnet20, resnet20_alf};
use alf_core::train::{evaluate, AlfTrainer};
use alf_core::NetworkCost;
use alf_data::Split;

fn main() {
    let scale = Scale::from_args();
    let cfg = CifarConfig::at(scale);
    let data = cfg.dataset(33).expect("dataset");
    let paper_geometry = geometry::plain20_layers(32, 3);
    let baseline_cost = NetworkCost::of_layers(&paper_geometry);
    println!(
        "Table II reproduction ({} scale): training width-{} models on {}x{} synth-CIFAR",
        scale.label(),
        cfg.width,
        cfg.image_size,
        cfg.image_size
    );

    // --- vanilla references ------------------------------------------------
    let mut plain_trainer = AlfTrainer::new(
        plain20(cfg.classes, cfg.width).expect("model"),
        cfg.hyper.clone(),
        1,
    )
    .expect("trainer");
    let plain_report = plain_trainer.run(&data, cfg.epochs).expect("training");

    let mut resnet_trainer = AlfTrainer::new(
        resnet20(cfg.classes, cfg.width).expect("model"),
        cfg.hyper.clone(),
        2,
    )
    .expect("trainer");
    let resnet_report = resnet_trainer.run(&data, cfg.epochs).expect("training");
    let resnet = resnet_trainer.into_model();

    // --- AMC (learned policy) ----------------------------------------------
    let amc_cfg = match scale {
        Scale::Smoke => AmcConfig {
            population: 6,
            elites: 2,
            iterations: 3,
            eval_batch: 32,
            ..AmcConfig::default()
        },
        Scale::Paper => AmcConfig {
            population: 16,
            elites: 4,
            iterations: 8,
            ..AmcConfig::default()
        },
    };
    let amc_out = AmcAgent::new(amc_cfg, 5)
        .search(&resnet, &data)
        .expect("amc search");
    // Fine-tune the pruned model briefly, re-silencing after each epoch.
    let mut amc_model = resnet.clone();
    apply_keep_ratios(&mut amc_model, &amc_out.keep_ratios);
    let mut ft = AlfTrainer::new(amc_model, cfg.hyper.clone(), 6).expect("trainer");
    for _ in 0..(cfg.epochs / 4).max(1) {
        ft.run_epoch(&data).expect("fine-tune epoch");
        apply_keep_ratios(ft.model_mut(), &amc_out.keep_ratios);
    }
    let amc_acc = evaluate(ft.model(), &data, Split::Test, 64).expect("eval");
    let amc_cost = chained_cost(
        &paper_geometry,
        &ratios_to_keeps(&paper_geometry, &amc_out.keep_ratios),
    );

    // --- FPGM (handcrafted policy) ------------------------------------------
    let fpgm_keep = 0.68f32; // uniform keep ratio ⇒ ~−54% OPs via chaining
    let mut fpgm_model = resnet.clone();
    let fpgm_ratios = vec![fpgm_keep; paper_geometry.len()];
    alf_baselines::fpgm::prune_filters(&mut fpgm_model, fpgm_keep);
    let mut ft = AlfTrainer::new(fpgm_model, cfg.hyper.clone(), 7).expect("trainer");
    for _ in 0..(cfg.epochs / 4).max(1) {
        ft.run_epoch(&data).expect("fine-tune epoch");
        alf_baselines::fpgm::prune_filters(ft.model_mut(), fpgm_keep);
    }
    let fpgm_acc = evaluate(ft.model(), &data, Split::Test, 64).expect("eval");
    let fpgm_cost = chained_cost(
        &paper_geometry,
        &ratios_to_keeps(&paper_geometry, &fpgm_ratios),
    );

    // --- ALF (automatic) ----------------------------------------------------
    let alf_model = resnet20_alf(cfg.classes, cfg.width, cfg.block, 3).expect("model");
    let mut alf_trainer = AlfTrainer::new(alf_model, cfg.hyper.clone(), 3).expect("trainer");
    let alf_report = alf_trainer.run(&data, cfg.epochs).expect("training");
    let alf_model = alf_trainer.into_model();
    let ratios: Vec<f32> = alf_model
        .filter_stats()
        .iter()
        .map(|(_, active, total)| *active as f32 / *total as f32)
        .collect();
    let alf_cost = NetworkCost::of_alf_layers(
        paper_geometry.iter().zip(
            ratios
                .iter()
                .zip(&paper_geometry)
                .map(|(&r, s)| ((s.c_out as f32 * r).round() as usize).max(1)),
        ),
    );

    // --- report --------------------------------------------------------------
    let row = |method: &str, policy: &str, cost: &NetworkCost, acc: f32| -> Vec<String> {
        let (dp, dm) = cost.reduction_vs(&baseline_cost);
        vec![
            method.into(),
            policy.into(),
            format!("{} ({:+.0}%)", eng(cost.params as f64), -dp),
            format!("{} ({:+.0}%)", eng(cost.ops() as f64), -dm),
            format!("{:.1}%", 100.0 * acc),
        ]
    };
    let rows = vec![
        row(
            "Plain-20",
            "—",
            &baseline_cost,
            plain_report.final_accuracy(),
        ),
        row(
            "ResNet-20",
            "—",
            &baseline_cost,
            resnet_report.final_accuracy(),
        ),
        row("AMC", "RL-Agent", &amc_cost, amc_acc),
        row("FPGM", "Handcrafted", &fpgm_cost, fpgm_acc),
        row(
            &format!("ALF (t={:.0e})", cfg.block.threshold),
            "Automatic",
            &alf_cost,
            alf_report.final_accuracy(),
        ),
    ];
    print_table(
        "Table II: pruned CNNs on synth-CIFAR (conv layers only, paper geometry)",
        &["Method", "Policy", "Params", "OPs", "Acc"],
        &rows,
    );
    let (alf_dp, alf_dm) = alf_cost.reduction_vs(&baseline_cost);
    println!(
        "\nALF reductions: params −{alf_dp:.0}% (paper: −70%), OPs −{alf_dm:.0}% (paper: −61%); \
         accuracy drop vs ResNet-20: {:.1} pts (paper: 1.9)",
        100.0 * (resnet_report.final_accuracy() - alf_report.final_accuracy())
    );
}

fn ratios_to_keeps(geometry: &[alf_core::ConvShape], ratios: &[f32]) -> Vec<usize> {
    geometry
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let r = ratios.get(i).copied().unwrap_or(1.0);
            ((s.c_out as f32 * r).round() as usize).clamp(1, s.c_out)
        })
        .collect()
}
