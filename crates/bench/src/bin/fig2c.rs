//! Fig. 2c — pruning dynamics across `(lrae, t)` variants.
//!
//! Thin wrapper over `alf_bench::jobs::figures::fig2c`; the experiment
//! body lives in the library so `alf-lab` can schedule it (the shared
//! Plain-20 reference resolves through the artifact store).

fn main() {
    alf_bench::jobs::standalone_main("fig2c");
}
