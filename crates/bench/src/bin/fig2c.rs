//! Fig. 2c — pruning dynamics over training epochs for five ALF variants
//! differing in autoencoder learning rate `lrae` and clip threshold `t`,
//! against the uncompressed Plain-20.
//!
//! The paper's observations this binary reproduces:
//! * larger `t` ⇒ more aggressive pruning (fewer remaining filters);
//! * smaller `lrae` ⇒ fewer mask updates ⇒ more remaining filters;
//! * accuracy degrades as the remaining-filter fraction drops.

use alf_bench::{print_table, CifarConfig, Scale};
use alf_core::models::{plain20, plain20_alf};
use alf_core::train::AlfTrainer;

fn main() {
    let scale = Scale::from_args();
    let cfg = CifarConfig::at(scale);
    let data = cfg.dataset(42).expect("dataset");
    println!(
        "Fig. 2c reproduction ({} scale): Plain-20, {} epochs",
        scale.label(),
        cfg.epochs
    );

    // The five (lrae, t) variants of the paper, rescaled at smoke scale so
    // the dynamics complete within the shortened schedule (same ordering).
    let (lr_hi, lr_mid, lr_lo) = match scale {
        Scale::Smoke => (5e-2, 2e-2, 5e-3),
        Scale::Paper => (1e-3, 1e-4, 1e-5),
    };
    let (t_hi, t_mid, t_lo) = match scale {
        Scale::Smoke => (5e-2, 2e-2, 1e-2),
        Scale::Paper => (5e-4, 1e-4, 5e-5),
    };
    let variants: Vec<(String, f64, f64)> = vec![
        (format!("lr={lr_hi:.0e},t={t_lo:.0e}"), lr_hi, t_lo),
        (format!("lr={lr_hi:.0e},t={t_mid:.0e}"), lr_hi, t_mid),
        (format!("lr={lr_hi:.0e},t={t_hi:.0e}"), lr_hi, t_hi),
        (format!("lr={lr_mid:.0e},t={t_mid:.0e}"), lr_mid, t_mid),
        (format!("lr={lr_lo:.0e},t={t_mid:.0e}"), lr_lo, t_mid),
    ];

    // Uncompressed reference.
    let mut vanilla = AlfTrainer::new(
        plain20(cfg.classes, cfg.width).expect("model"),
        cfg.hyper.clone(),
        7,
    )
    .expect("trainer");
    let vanilla_report = vanilla.run(&data, cfg.epochs).expect("training");
    println!(
        "\nuncompressed Plain-20 accuracy: {:.1}%",
        100.0 * vanilla_report.final_accuracy()
    );

    let mut summary_rows = Vec::new();
    for (label, lr, t) in &variants {
        let mut block = cfg.block;
        block.threshold = *t as f32;
        let mut hyper = cfg.hyper.clone();
        hyper.ae_lr = *lr as f32;
        let model = plain20_alf(cfg.classes, cfg.width, block, 7).expect("model");
        let mut trainer = AlfTrainer::new(model, hyper, 7).expect("trainer");
        let report = trainer.run(&data, cfg.epochs).expect("training");
        println!("\n-- ALF({label}) --");
        println!("epoch  remaining-filters%  test-acc%");
        for e in &report.epochs {
            println!(
                "{:>5}  {:>17.1}  {:>8.1}",
                e.epoch,
                100.0 * e.remaining_filters,
                100.0 * e.test_accuracy
            );
        }
        summary_rows.push(vec![
            label.clone(),
            format!("{:.1}%", 100.0 * report.final_remaining_filters()),
            format!("{:.1}%", 100.0 * report.final_accuracy()),
        ]);
    }
    summary_rows.push(vec![
        "Plain-20 (uncompressed)".into(),
        "100.0%".into(),
        format!("{:.1}%", 100.0 * vanilla_report.final_accuracy()),
    ]);
    print_table(
        "Fig. 2c summary: final remaining filters and accuracy",
        &["variant", "remaining filters", "accuracy"],
        &summary_rows,
    );
    println!(
        "\npaper trends to check: higher t ⇒ fewer filters; lower lrae ⇒ more filters; \
         paper keeps lr=1e-3, t=1e-4 as the trade-off."
    );
}
