//! Fig. 3 — per-layer energy breakdown (register file / global buffer /
//! DRAM) and normalised latency of vanilla vs ALF-compressed
//! Plain-20/ResNet-20 on the Eyeriss hardware model, batch 16.
//!
//! Trends this binary reproduces from the paper:
//! * register-file energy dominates, especially in deeper layers;
//! * ALF's expansion layers add DRAM energy in early (large-input) layers;
//! * deep-layer savings offset that, giving a *total* energy/latency win;
//! * low-utilisation anomalies: a heavily-compressed layer can lose
//!   parallelism under row-stationary constraints and run *slower* than
//!   its vanilla counterpart (the paper's `conv312` case).

use alf_bench::{eng, print_table, CifarConfig, Scale};
use alf_core::models::{geometry, plain20_alf, resnet20_alf};
use alf_core::train::AlfTrainer;
use alf_hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};

const BATCH: usize = 16;

fn main() {
    let scale = Scale::from_args();
    let cfg = CifarConfig::at(scale);
    let data = cfg.dataset(44).expect("dataset");
    println!(
        "Fig. 3 reproduction ({} scale): Eyeriss model, row-stationary dataflow, batch {BATCH}",
        scale.label()
    );

    // Train both ALF models to obtain per-layer compression ratios.
    let ratios = |model_seed: u64, residual: bool| -> Vec<f32> {
        let model = if residual {
            resnet20_alf(cfg.classes, cfg.width, cfg.block, model_seed).expect("model")
        } else {
            plain20_alf(cfg.classes, cfg.width, cfg.block, model_seed).expect("model")
        };
        let mut trainer = AlfTrainer::new(model, cfg.hyper.clone(), model_seed).expect("trainer");
        trainer.run(&data, cfg.epochs).expect("training");
        trainer
            .into_model()
            .filter_stats()
            .iter()
            .map(|(_, a, t)| *a as f32 / *t as f32)
            .collect()
    };
    eprintln!("training ALF-Plain-20 …");
    let plain_ratios = ratios(11, false);
    eprintln!("training ALF-ResNet-20 …");
    let resnet_ratios = ratios(12, true);

    // Map the measured ratios onto the paper's width-16 / 32×32 geometry.
    let paper_geometry = geometry::plain20_layers(32, 3);
    let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);

    let vanilla_workloads: Vec<ConvWorkload> = paper_geometry
        .iter()
        .map(|s| ConvWorkload::from_shape(s, BATCH))
        .collect();
    let vanilla = NetworkReport::evaluate(&mapper, &vanilla_workloads).expect("mapping");

    let alf_report = |ratios: &[f32]| -> NetworkReport {
        let workloads = alf_hwmodel::alf_network(&paper_geometry, ratios, BATCH);
        NetworkReport::evaluate(&mapper, &workloads)
            .expect("mapping")
            .merged()
    };
    let alf_plain = alf_report(&plain_ratios);
    let alf_resnet = alf_report(&resnet_ratios);

    // Per-layer table.
    let rows: Vec<Vec<String>> = vanilla
        .layers
        .iter()
        .zip(&alf_plain.layers)
        .zip(&alf_resnet.layers)
        .map(|((v, ap), ar)| {
            vec![
                v.name.to_uppercase(),
                format!(
                    "{}/{}/{}",
                    eng(v.energy_rf),
                    eng(v.energy_buffer),
                    eng(v.energy_dram)
                ),
                format!(
                    "{}/{}/{}",
                    eng(ap.energy_rf),
                    eng(ap.energy_buffer),
                    eng(ap.energy_dram)
                ),
                format!(
                    "{}/{}/{}",
                    eng(ar.energy_rf),
                    eng(ar.energy_buffer),
                    eng(ar.energy_dram)
                ),
                eng(v.latency_cycles),
                eng(ap.latency_cycles),
                eng(ar.latency_cycles),
                format!("{:.0}%", 100.0 * ap.utilization),
            ]
        })
        .collect();
    print_table(
        "Fig. 3: per-layer energy (RF/GB/DRAM) and latency, batch 16",
        &[
            "layer",
            "vanilla E",
            "ALF-Plain E",
            "ALF-ResNet E",
            "van lat",
            "ALF-P lat",
            "ALF-R lat",
            "ALF-P util",
        ],
        &rows,
    );

    for (label, report) in [("ALF-Plain-20", &alf_plain), ("ALF-ResNet-20", &alf_resnet)] {
        let (de, dl) = report.reduction_vs(&vanilla);
        println!(
            "{label}: total energy change {:+.0}% (paper: −29%), total latency change {:+.0}% (paper: −41%)",
            -de, -dl
        );
    }
    // Anomaly check: any compressed layer slower than vanilla?
    let anomalies: Vec<&str> = vanilla
        .layers
        .iter()
        .zip(&alf_plain.layers)
        .filter(|(v, a)| a.latency_cycles > v.latency_cycles)
        .map(|(v, _)| v.name.as_str())
        .collect();
    if anomalies.is_empty() {
        println!("no per-layer latency anomaly at this compression profile");
    } else {
        println!(
            "latency anomalies (compressed slower than vanilla, cf. the paper's conv312): {}",
            anomalies.join(", ")
        );
    }
}
