//! Fig. 3 — per-layer energy/latency on the Eyeriss model.
//!
//! Thin wrapper over `alf_bench::jobs::figures::fig3`; the experiment
//! body lives in the library so `alf-lab` can schedule it (the two shared
//! ALF references resolve through the artifact store).

fn main() {
    alf_bench::jobs::standalone_main("fig3");
}
