//! GEMM throughput benchmark: blocked kernel vs the seed reference loops.
//!
//! Measures the cache-blocked kernel (`alf_tensor::ops::gemm`) against the
//! preserved seed loops (`alf_tensor::ops::reference`) across a ladder of
//! shapes, reports GFLOP/s and speedups, sweeps worker-thread counts, and
//! compares the sparse-LHS path against dense on a masked-`Wcode`-shaped
//! problem. Results go to stdout as a table and to `BENCH_gemm.json`.
//!
//! `--scale smoke` (default) finishes in seconds and **gates**: the
//! process exits nonzero if the blocked kernel is slower than the
//! reference at the largest smoke shape, so CI catches kernel
//! regressions. `--scale paper` adds the training-hot-loop shape
//! `[256×1152]·[1152×1024]` (a width-128 conv layer's forward GEMM) and a
//! 512³ cube.

use std::time::{Duration, Instant};

use alf_bench::Scale;
use alf_obs::json::JsonWriter;
use alf_tensor::init::Init;
use alf_tensor::ops::{
    auto_threads, gemm_active_rows_into, gemm_into, gemm_sparse_lhs_into, reference, ActiveRows,
    Workspace,
};
use alf_tensor::rng::Rng;
use alf_tensor::Tensor;

/// Wall-clock budget per measured kernel/shape pair.
const BUDGET: Duration = Duration::from_millis(1200);
/// Sample cap per kernel/shape pair.
const MAX_SAMPLES: usize = 15;
/// Thread counts swept for the scaling section.
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn main() {
    let scale = Scale::from_args();
    let shapes: Vec<(usize, usize, usize)> = match scale {
        Scale::Smoke => vec![(64, 128, 64), (128, 256, 128), (192, 384, 256)],
        Scale::Paper => vec![
            (64, 128, 64),
            (128, 256, 128),
            (192, 384, 256),
            (256, 1152, 1024),
            (512, 512, 512),
        ],
    };

    let host_threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    println!(
        "GEMM bench  scale={}  host-threads={host_threads}",
        scale.label()
    );
    println!(
        "{:<18} {:>10} {:>10} {:>8}   threads GF/s (scaling)",
        "shape", "ref GF/s", "blk GF/s", "speedup"
    );

    let mut rng = Rng::new(0xa1f);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("bench", "gemm");
    w.field_str("scale", scale.label());
    w.field_u64("host_threads", host_threads as u64);
    w.key("shapes");
    w.begin_array();
    let mut gate_speedup = f64::NAN;

    for &(m, k, n) in &shapes {
        let a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
        let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
        let flops = 2.0 * m as f64 * k as f64 * n as f64;

        // Correctness cross-check before timing anything.
        let expect = reference::matmul(&a, &b).expect("reference matmul");
        let mut ws = Workspace::new();
        let mut c = vec![0.0f32; m * n];
        gemm_into(
            &mut c,
            a.data(),
            false,
            b.data(),
            false,
            m,
            k,
            n,
            &mut ws,
            1,
        );
        assert_close(&c, expect.data(), m, k, n);

        let t_ref = time_median(|| {
            std::hint::black_box(reference::matmul(&a, &b).unwrap());
        });
        let mut per_thread = Vec::new();
        for &threads in &THREAD_SWEEP {
            let t = time_median(|| {
                gemm_into(
                    &mut c,
                    a.data(),
                    false,
                    b.data(),
                    false,
                    m,
                    k,
                    n,
                    &mut ws,
                    threads,
                );
                std::hint::black_box(&c);
            });
            per_thread.push((threads, t));
        }

        let t_blk1 = per_thread[0].1;
        let gf = |t: Duration| flops / t.as_secs_f64() / 1e9;
        let speedup = t_ref.as_secs_f64() / t_blk1.as_secs_f64();
        gate_speedup = speedup; // last shape wins: the ladder is ascending

        let scaling: Vec<String> = per_thread
            .iter()
            .map(|&(th, t)| {
                format!(
                    "{th}t:{:.2} ({:.2}x)",
                    gf(t),
                    t_blk1.as_secs_f64() / t.as_secs_f64()
                )
            })
            .collect();
        println!(
            "{:<18} {:>10.2} {:>10.2} {:>7.2}x   {}",
            format!("{m}x{k}x{n}"),
            gf(t_ref),
            gf(t_blk1),
            speedup,
            scaling.join("  ")
        );

        w.begin_object();
        w.field_u64("m", m as u64);
        w.field_u64("k", k as u64);
        w.field_u64("n", n as u64);
        // What the auto-dispatch would actually engage for this shape on
        // this host (1 on single-core hosts regardless of shape).
        w.field_u64("engaged_threads", auto_threads(m, k, n) as u64);
        w.field_f64("reference_ms", t_ref.as_secs_f64() * 1e3);
        w.field_f64("reference_gflops", gf(t_ref));
        w.field_f64("blocked_1t_ms", t_blk1.as_secs_f64() * 1e3);
        w.field_f64("blocked_1t_gflops", gf(t_blk1));
        w.field_f64("speedup_1t", speedup);
        w.key("threads");
        w.begin_array();
        for &(th, t) in &per_thread {
            w.begin_object();
            w.field_u64("threads", th as u64);
            w.field_f64("ms", t.as_secs_f64() * 1e3);
            w.field_f64("gflops", gf(t));
            w.field_f64("scaling", t_blk1.as_secs_f64() / t.as_secs_f64());
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();

    bench_sparse(scale, &mut rng, &mut w);
    let occupancy_ok = bench_occupancy(scale, &mut rng, &mut w);
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write("BENCH_gemm.json", &json).expect("write BENCH_gemm.json");
    println!("\nwrote BENCH_gemm.json");

    // Smoke gate: the blocked kernel must not lose to the seed loops at the
    // largest shape of the ladder.
    if gate_speedup < 1.0 {
        eprintln!(
            "FAIL: blocked GEMM is {gate_speedup:.2}x the reference at the largest shape \
             (expected >= 1.0x)"
        );
        std::process::exit(1);
    }
    // Occupancy gate: packed-panel elision must pay off more the emptier
    // the mask gets — speedup strictly increasing in the zero-row
    // fraction. Elided work scales with live rows, so this is a property
    // of the packing path, not of host speed.
    if !occupancy_ok {
        eprintln!(
            "FAIL: packed-elision speedup is not strictly increasing in the zero-row fraction"
        );
        std::process::exit(1);
    }
}

/// Dense blocked GEMM vs the packed-panel elision path at rising
/// zero-row fractions. Writes the `occupancy_sweep` array and
/// `occupancy_gate_ok` field; returns whether the speedup was strictly
/// increasing in the zero-row fraction.
fn bench_occupancy(scale: Scale, rng: &mut Rng, w: &mut JsonWriter) -> bool {
    let (m, k, n) = match scale {
        Scale::Smoke => (64, 288, 2048),
        Scale::Paper => (128, 1152, 8192),
    };
    let b = Tensor::randn(&[k, n], Init::Rand, rng);
    let mut ws = Workspace::new();
    let mut c = vec![0.0f32; m * n];

    println!("\noccupancy sweep ({m}x{k}x{n}, packed-panel elision)");
    w.key("occupancy_sweep");
    w.begin_array();
    let mut speedups = Vec::new();
    for &(num, den) in &[(1usize, 4usize), (2, 4), (3, 4)] {
        let zero_fraction = num as f64 / den as f64;
        // Strided liveness: row i dead iff i % den < num, so dead rows
        // interleave with live ones the way mid-training pruning does.
        let mut a = Tensor::randn(&[m, k], Init::Rand, rng);
        let mut live = vec![1.0f32; m];
        for (i, alive) in live.iter_mut().enumerate() {
            if i % den < num {
                *alive = 0.0;
                a.data_mut()[i * k..(i + 1) * k].fill(0.0);
            }
        }
        let rows = ActiveRows::from_mask(&live);

        let t_dense = time_median(|| {
            gemm_into(
                &mut c,
                a.data(),
                false,
                b.data(),
                false,
                m,
                k,
                n,
                &mut ws,
                1,
            );
            std::hint::black_box(&c);
        });
        let dense_bits: Vec<u32> = c.iter().map(|v| v.to_bits()).collect();
        let t_sparse = time_median(|| {
            gemm_active_rows_into(
                &mut c,
                a.data(),
                b.data(),
                false,
                m,
                k,
                n,
                &rows,
                &mut ws,
                1,
            );
            std::hint::black_box(&c);
        });
        // The whole point of the design: elision is bitwise-invisible.
        let sparse_bits: Vec<u32> = c.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            dense_bits, sparse_bits,
            "packed elision diverged from dense at zero fraction {zero_fraction}"
        );

        let speedup = t_dense.as_secs_f64() / t_sparse.as_secs_f64();
        println!(
            "  {:>4.0}% rows zero   dense {:.3} ms   elided {:.3} ms   {:.2}x",
            zero_fraction * 100.0,
            t_dense.as_secs_f64() * 1e3,
            t_sparse.as_secs_f64() * 1e3,
            speedup
        );
        w.begin_object();
        w.field_f64("zero_row_fraction", zero_fraction);
        w.field_u64("live_rows", rows.len() as u64);
        w.field_f64("dense_ms", t_dense.as_secs_f64() * 1e3);
        w.field_f64("elided_ms", t_sparse.as_secs_f64() * 1e3);
        w.field_f64("speedup", speedup);
        w.end_object();
        speedups.push(speedup);
    }
    w.end_array();
    let ok = speedups.windows(2).all(|p| p[1] > p[0]);
    w.field_bool("occupancy_gate_ok", ok);
    ok
}

/// Dense vs sparse-LHS on a masked-`Wcode`-shaped product (half the LHS
/// rows zeroed, as mid-training pruning produces). Writes the
/// `sparse_lhs` field of the open report object.
fn bench_sparse(scale: Scale, rng: &mut Rng, w: &mut JsonWriter) {
    let (m, k, n) = match scale {
        Scale::Smoke => (64, 288, 2048),
        Scale::Paper => (128, 1152, 8192),
    };
    let mut a = Tensor::randn(&[m, k], Init::Rand, rng);
    for i in (0..m).step_by(2) {
        for v in a.data_mut()[i * k..(i + 1) * k].iter_mut() {
            *v = 0.0;
        }
    }
    let b = Tensor::randn(&[k, n], Init::Rand, rng);
    let mut ws = Workspace::new();
    let mut c = vec![0.0f32; m * n];

    let t_dense = time_median(|| {
        gemm_into(
            &mut c,
            a.data(),
            false,
            b.data(),
            false,
            m,
            k,
            n,
            &mut ws,
            1,
        );
        std::hint::black_box(&c);
    });
    let t_sparse = time_median(|| {
        gemm_sparse_lhs_into(&mut c, a.data(), b.data(), m, k, n, &mut ws, 1);
        std::hint::black_box(&c);
    });
    let speedup = t_dense.as_secs_f64() / t_sparse.as_secs_f64();
    println!(
        "\nsparse-LHS ({m}x{k}x{n}, 50% rows zero)  dense {:.3} ms  sparse {:.3} ms  {:.2}x",
        t_dense.as_secs_f64() * 1e3,
        t_sparse.as_secs_f64() * 1e3,
        speedup
    );
    w.key("sparse_lhs");
    w.begin_object();
    w.field_u64("m", m as u64);
    w.field_u64("k", k as u64);
    w.field_u64("n", n as u64);
    w.field_f64("zero_row_fraction", 0.5);
    w.field_f64("dense_ms", t_dense.as_secs_f64() * 1e3);
    w.field_f64("sparse_ms", t_sparse.as_secs_f64() * 1e3);
    w.field_f64("speedup", speedup);
    w.end_object();
}

/// Median wall-clock of repeated runs: one warm-up, then up to
/// [`MAX_SAMPLES`] samples within [`BUDGET`].
fn time_median(mut f: impl FnMut()) -> Duration {
    f();
    let mut samples = Vec::with_capacity(MAX_SAMPLES);
    let deadline = Instant::now() + BUDGET;
    for _ in 0..MAX_SAMPLES {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
        if Instant::now() >= deadline {
            break;
        }
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Relative-error check between the blocked and reference results.
fn assert_close(got: &[f32], want: &[f32], m: usize, k: usize, n: usize) {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&g, &w) in got.iter().zip(want.iter()) {
        num += f64::from(g - w) * f64::from(g - w);
        den += f64::from(w) * f64::from(w);
    }
    let rel = (num / den.max(1e-30)).sqrt();
    assert!(
        rel < 1e-4,
        "blocked GEMM diverges from reference at {m}x{k}x{n}: rel err {rel:.2e}"
    );
}
