//! Shared infrastructure for the experiment binaries and the `alf-lab`
//! campaign runner.
//!
//! Every table and figure of the paper has a binary in `src/bin/`:
//!
//! | artefact  | binary              |
//! |-----------|---------------------|
//! | Fig. 2a   | `fig2a`             |
//! | Fig. 2b   | `fig2b`             |
//! | Fig. 2c   | `fig2c`             |
//! | Table II  | `table2`            |
//! | Fig. 3    | `fig3`              |
//! | Table III | `table3`            |
//! | headline  | `headline`          |
//! | ablations | `ablation_ste`, `ablation_nuprune`, `ablation_dataflow`, `ablation_fusion`, `ablation_quant` |
//!
//! The experiment *bodies* live in [`jobs`] as functions from a typed
//! context to a structured [`report::JobResult`]; the binaries are thin
//! wrappers that parse [`cli::BenchArgs`], run one job against a fresh
//! [`artifacts::ArtifactStore`], print the text report and drop
//! `results/<job>.{txt,json}`. `alf-lab` runs the same jobs as one
//! dependency-scheduled campaign in which the shared baseline trainings
//! of [`artifacts`] happen exactly once.
//!
//! All binaries accept `--scale smoke` (default; seconds) or
//! `--scale paper` (the full sweep; minutes to hours on a laptop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use alf_core::block::AlfBlockConfig;
use alf_core::train::AlfHyper;
use alf_core::PruneSchedule;
use alf_data::{Dataset, SynthVision};
use alf_nn::LrSchedule;

pub mod artifacts;
pub mod cli;
pub mod jobs;
pub mod report;

pub use cli::{BenchArgs, Scale};

/// The CIFAR-track experiment configuration at a given scale.
#[derive(Debug, Clone)]
pub struct CifarConfig {
    /// Square image side.
    pub image_size: usize,
    /// Number of classes.
    pub classes: usize,
    /// Training samples.
    pub train_size: usize,
    /// Test samples.
    pub test_size: usize,
    /// Plain/ResNet-20 stem width.
    pub width: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Task/AE hyper-parameters for ALF training.
    pub hyper: AlfHyper,
    /// ALF block configuration.
    pub block: AlfBlockConfig,
}

impl CifarConfig {
    /// Configuration for a scale.
    ///
    /// The smoke configuration keeps the *mechanics* (two-player training,
    /// pruning, deployment) while shrinking geometry and raising the
    /// autoencoder learning rate / clip threshold so that pruning reaches a
    /// steady state within a few hundred optimisation steps; `paper` uses
    /// the paper's `t = 1e-4`, `lrae = 1e-3` with commensurate step counts.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Smoke => Self {
                image_size: 16,
                classes: 4,
                train_size: 256,
                test_size: 96,
                width: 8,
                epochs: 16,
                hyper: AlfHyper {
                    task_lr: 0.05,
                    batch_size: 16,
                    lr_schedule: LrSchedule::Step {
                        every: 12,
                        gamma: 0.1,
                    },
                    // The mask's L1 step is lrae·ν/Co per update; the smoke
                    // schedule has only ~16 epochs × 16 steps, so lrae is
                    // raised (and the clip dead-zone widened to stay above
                    // the oscillation amplitude) to reach the pruning
                    // steady-state the paper reaches over 200 epochs.
                    ae_lr: 5e-2,
                    prune_schedule: PruneSchedule::paper_default(),
                    ae_steps_per_batch: 8,
                    ..AlfHyper::default()
                },
                block: AlfBlockConfig {
                    threshold: 2e-2,
                    ..AlfBlockConfig::paper_default()
                },
            },
            Scale::Paper => Self {
                image_size: 32,
                classes: 10,
                train_size: 4000,
                test_size: 1000,
                width: 16,
                epochs: 60,
                hyper: AlfHyper {
                    task_lr: 0.05,
                    batch_size: 32,
                    lr_schedule: LrSchedule::Step {
                        every: 25,
                        gamma: 0.1,
                    },
                    ae_lr: 1e-3,
                    prune_schedule: PruneSchedule::paper_default(),
                    ..AlfHyper::default()
                },
                block: AlfBlockConfig::paper_default(),
            },
        }
    }

    /// Builds the synthetic CIFAR-like dataset for this configuration.
    ///
    /// # Errors
    ///
    /// Propagates dataset construction errors.
    pub fn dataset(&self, seed: u64) -> alf_core::Result<Dataset> {
        SynthVision::cifar_like(seed)
            .with_image_size(self.image_size)
            .with_max_shift(if self.image_size >= 32 { 3 } else { 1 })
            .with_num_classes(self.classes)
            .with_train_size(self.train_size)
            .with_test_size(self.test_size)
            .build()
    }
}

/// The ImageNet-track experiment configuration at a given scale (see
/// `DESIGN.md`: synth-ImageNet substitutes the real dataset; Params/OPs of
/// Table III come from the exact 224×224 geometries).
#[derive(Debug, Clone)]
pub struct ImagenetConfig {
    /// Square image side.
    pub image_size: usize,
    /// Number of classes.
    pub classes: usize,
    /// Training samples.
    pub train_size: usize,
    /// Test samples.
    pub test_size: usize,
    /// ResNet-18-small stem width.
    pub width: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Task/AE hyper-parameters for ALF training.
    pub hyper: AlfHyper,
    /// ALF block configuration.
    pub block: AlfBlockConfig,
}

impl ImagenetConfig {
    /// Configuration for a scale.
    pub fn at(scale: Scale) -> Self {
        let cifar = CifarConfig::at(scale);
        match scale {
            Scale::Smoke => Self {
                image_size: 16,
                classes: 4,
                train_size: 192,
                test_size: 64,
                width: 8,
                epochs: 14,
                hyper: cifar.hyper,
                block: cifar.block,
            },
            Scale::Paper => Self {
                image_size: 64,
                classes: 100,
                train_size: 5000,
                test_size: 1000,
                width: 16,
                epochs: 40,
                hyper: cifar.hyper,
                block: cifar.block,
            },
        }
    }

    /// Builds the synthetic ImageNet-like dataset for this configuration.
    ///
    /// # Errors
    ///
    /// Propagates dataset construction errors.
    pub fn dataset(&self, seed: u64) -> alf_core::Result<Dataset> {
        SynthVision::imagenet_like(seed)
            .with_image_size(self.image_size)
            .with_max_shift(if self.image_size >= 32 { 3 } else { 1 })
            .with_num_classes(self.classes)
            .with_train_size(self.train_size)
            .with_test_size(self.test_size)
            .build()
    }
}

/// Renders `frac ∈ [0, 1]` as a unicode bar of `width` cells.
pub fn hbar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "░".repeat(width - filled))
}

/// Formats a count in engineering notation: `1.23M`, `456.7k`, `12`.
pub fn eng(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_labels() {
        assert_eq!(Scale::Smoke.label(), "smoke");
        assert_eq!(Scale::Paper.label(), "paper");
    }

    #[test]
    fn configs_are_constructible_at_both_scales() {
        for scale in [Scale::Smoke, Scale::Paper] {
            let cfg = CifarConfig::at(scale);
            assert!(cfg.width >= 8);
            assert!(cfg.epochs > 0);
        }
    }

    #[test]
    fn smoke_dataset_builds() {
        let cfg = CifarConfig::at(Scale::Smoke);
        let data = cfg.dataset(0).unwrap();
        assert_eq!(data.num_classes(), cfg.classes);
    }

    #[test]
    fn eng_notation() {
        assert_eq!(eng(1_230_000.0), "1.23M");
        assert_eq!(eng(4_567.0), "4.6k");
        assert_eq!(eng(12.0), "12");
        assert_eq!(eng(2.5e9), "2.50G");
    }

    #[test]
    fn hbar_clamps() {
        assert_eq!(hbar(0.0, 4), "░░░░");
        assert_eq!(hbar(1.0, 4), "████");
        assert_eq!(hbar(2.0, 4), "████");
        assert_eq!(hbar(0.5, 4), "██░░");
    }
}
