//! Table jobs: the paper's comparison tables (II, III), the headline
//! claim, and the supplementary sensitivity analysis.

use alf_baselines::api::{apply_keep_ratios, chained_cost};
use alf_baselines::sensitivity::layer_sensitivity;
use alf_baselines::{lcnn, AmcAgent, AmcConfig};
use alf_core::deploy::{Pipeline, QuantSpec};
use alf_core::models::geometry;
use alf_core::train::AlfTrainer;
use alf_core::{ConvShape, NetworkCost, Result};
use alf_data::Split;
use alf_hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};
use alf_nn::{softmax_cross_entropy, Layer, RunCtx};

use super::{ratios_to_keeps, JobCtx, JobResult, Table};
use crate::artifacts::BaselineKind;
use crate::{eng, Scale};

/// Table II — pruned CNNs on (synthetic) CIFAR-10, conv layers only.
///
/// The vanilla Plain-20/ResNet-20 and the ALF-ResNet-20 come from the
/// shared baseline artifacts; AMC and FPGM run their searches/fine-tunes
/// here on top of the shared vanilla ResNet-20.
pub fn table2(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let cfg = crate::CifarConfig::at(ctx.scale());
    let data = ctx.store.cifar()?;
    let paper_geometry = geometry::plain20_layers(32, 3);
    let baseline_cost = NetworkCost::of_layers(&paper_geometry);

    let plain = ctx.store.baseline(BaselineKind::Plain20)?;
    let resnet = ctx.store.baseline(BaselineKind::Resnet20)?;
    let alf = ctx.store.baseline(BaselineKind::AlfResnet20)?;

    // --- AMC (learned policy) on the shared vanilla ResNet-20 -------------
    let amc_cfg = match ctx.scale() {
        Scale::Smoke => AmcConfig {
            population: 6,
            elites: 2,
            iterations: 3,
            eval_batch: 32,
            ..AmcConfig::default()
        },
        Scale::Paper => AmcConfig {
            population: 16,
            elites: 4,
            iterations: 8,
            ..AmcConfig::default()
        },
    };
    let amc_out = AmcAgent::new(amc_cfg, 5).search(&resnet.model, &data)?;
    // Fine-tune the pruned model briefly, re-silencing after each epoch.
    let mut amc_model = resnet.model.clone();
    apply_keep_ratios(&mut amc_model, &amc_out.keep_ratios);
    let mut ft = AlfTrainer::new(amc_model, cfg.hyper.clone(), 6)?;
    if let Some(n) = ctx.threads {
        ft.set_eval_threads(n);
    }
    for _ in 0..(cfg.epochs / 4).max(1) {
        ft.run_epoch(&data)?;
        apply_keep_ratios(ft.model_mut(), &amc_out.keep_ratios);
    }
    let amc_acc = ctx.evaluate(ft.model(), &data, Split::Test, 64)?;
    let amc_cost = chained_cost(
        &paper_geometry,
        &ratios_to_keeps(&paper_geometry, &amc_out.keep_ratios),
    );

    // --- FPGM (handcrafted policy) -----------------------------------------
    let fpgm_keep = 0.68f32; // uniform keep ratio ⇒ ~−54% OPs via chaining
    let mut fpgm_model = resnet.model.clone();
    let fpgm_ratios = vec![fpgm_keep; paper_geometry.len()];
    alf_baselines::fpgm::prune_filters(&mut fpgm_model, fpgm_keep);
    let mut ft = AlfTrainer::new(fpgm_model, cfg.hyper.clone(), 7)?;
    if let Some(n) = ctx.threads {
        ft.set_eval_threads(n);
    }
    for _ in 0..(cfg.epochs / 4).max(1) {
        ft.run_epoch(&data)?;
        alf_baselines::fpgm::prune_filters(ft.model_mut(), fpgm_keep);
    }
    let fpgm_acc = ctx.evaluate(ft.model(), &data, Split::Test, 64)?;
    let fpgm_cost = chained_cost(
        &paper_geometry,
        &ratios_to_keeps(&paper_geometry, &fpgm_ratios),
    );

    // --- ALF (automatic) — measured ratios from the shared artifact --------
    let alf_cost = NetworkCost::of_alf_layers(
        paper_geometry
            .iter()
            .zip(ratios_to_keeps(&paper_geometry, &alf.ratios)),
    );

    // --- report -------------------------------------------------------------
    let mut out = JobResult::new("table2", ctx.scale());
    let row = |method: &str, policy: &str, cost: &NetworkCost, acc: f32| -> Vec<String> {
        let (dp, dm) = cost.reduction_vs(&baseline_cost);
        vec![
            method.into(),
            policy.into(),
            format!("{} ({:+.0}%)", eng(cost.params as f64), -dp),
            format!("{} ({:+.0}%)", eng(cost.ops() as f64), -dm),
            format!("{:.1}%", 100.0 * acc),
        ]
    };
    let plain_acc = plain.report.final_accuracy();
    let resnet_acc = resnet.report.final_accuracy();
    let alf_acc = alf.report.final_accuracy();
    let alf_label = format!("ALF (t={:.0e})", cfg.block.threshold);
    let rows = vec![
        row("Plain-20", "—", &baseline_cost, plain_acc),
        row("ResNet-20", "—", &baseline_cost, resnet_acc),
        row("AMC", "RL-Agent", &amc_cost, amc_acc),
        row("FPGM", "Handcrafted", &fpgm_cost, fpgm_acc),
        row(&alf_label, "Automatic", &alf_cost, alf_acc),
    ];
    out.push_table(Table::new(
        "Table II: pruned CNNs on synth-CIFAR (conv layers only, paper geometry)",
        &["Method", "Policy", "Params", "OPs", "Acc"],
        rows,
    ));
    for (method, cost, acc) in [
        ("Plain-20", &baseline_cost, plain_acc),
        ("ResNet-20", &baseline_cost, resnet_acc),
        ("AMC", &amc_cost, amc_acc),
        ("FPGM", &fpgm_cost, fpgm_acc),
        ("ALF", &alf_cost, alf_acc),
    ] {
        out.pareto_point(
            "cifar",
            method,
            cost.params as f64,
            cost.ops() as f64,
            f64::from(acc),
        );
    }
    let (alf_dp, alf_dm) = alf_cost.reduction_vs(&baseline_cost);
    out.metric("alf_param_reduction", alf_dp);
    out.metric("alf_ops_reduction", alf_dm);
    out.metric("alf_accuracy_drop", f64::from(resnet_acc - alf_acc));
    out.note(format!(
        "ALF reductions: params −{alf_dp:.0}% (paper: −70%), OPs −{alf_dm:.0}% (paper: −61%); \
         accuracy drop vs ResNet-20: {:.1} pts (paper: 1.9)",
        100.0 * (resnet_acc - alf_acc)
    ));
    Ok(out)
}

/// Analytic LCNN cost on a geometry: per layer, a dictionary of
/// `⌈ratio·Co⌉` filters plus a 1-sparse lookup per output channel.
fn lcnn_geometry_cost(convs: &[ConvShape], ratio: f32) -> NetworkCost {
    convs.iter().fold(NetworkCost::default(), |acc, s| {
        let dict = ((s.c_out as f32 * ratio).ceil() as usize).clamp(1, s.c_out);
        let fan = s.c_in * s.kernel * s.kernel;
        let hw = (s.h_out * s.w_out) as u64;
        NetworkCost {
            params: acc.params + (dict * fan + 2 * s.c_out) as u64,
            macs: acc.macs + (dict * fan) as u64 * hw + s.c_out as u64 * hw,
        }
    })
}

/// Table III — ImageNet benchmarking: exact 224×224 Params/OPs for the
/// comparison architectures, pruned-ResNet-18 rows measured on
/// synth-ImageNet. The vanilla and ALF ResNet-18-small come from the
/// shared ImageNet-track baselines.
pub fn table3(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let cfg = crate::ImagenetConfig::at(ctx.scale());
    let data = ctx.store.imagenet()?;

    // Exact architecture arithmetic (224×224, 1000 classes).
    let squeezenet = geometry::squeezenet_layers();
    let googlenet = geometry::googlenet_layers();
    let resnet18 = geometry::resnet18_layers();

    let vanilla = ctx.store.baseline(BaselineKind::ImagenetResnet18)?;
    let alf = ctx.store.baseline(BaselineKind::ImagenetAlfResnet18)?;

    let amc_cfg = match ctx.scale() {
        Scale::Smoke => AmcConfig {
            population: 5,
            elites: 2,
            iterations: 2,
            eval_batch: 32,
            ..AmcConfig::default()
        },
        Scale::Paper => AmcConfig::default(),
    };
    let amc_out = AmcAgent::new(amc_cfg, 3).search(&vanilla.model, &data)?;
    let mut amc_model = vanilla.model.clone();
    apply_keep_ratios(&mut amc_model, &amc_out.keep_ratios);
    // Brief fine-tune with re-silencing, as AMC does after its search.
    let mut ft = AlfTrainer::new(amc_model, cfg.hyper.clone(), 6)?;
    if let Some(n) = ctx.threads {
        ft.set_eval_threads(n);
    }
    for _ in 0..(cfg.epochs / 4).max(1) {
        ft.run_epoch(&data)?;
        apply_keep_ratios(ft.model_mut(), &amc_out.keep_ratios);
    }
    let amc_acc = ctx.evaluate(ft.model(), &data, Split::Test, 64)?;

    let fpgm_keep = 0.76f32;
    let mut fpgm_model = vanilla.model.clone();
    alf_baselines::fpgm::prune_filters(&mut fpgm_model, fpgm_keep);
    let fpgm_acc = ctx.evaluate(&fpgm_model, &data, Split::Test, 64)?;

    let lcnn_ratio = 0.2f32;
    let mut lcnn_model = vanilla.model.clone();
    lcnn::compress_model(
        &mut lcnn_model,
        lcnn_ratio,
        cfg.image_size,
        cfg.image_size,
        9,
    )?;
    let lcnn_acc = ctx.evaluate(&lcnn_model, &data, Split::Test, 64)?;

    // --- map measured keep decisions onto the exact ResNet-18 geometry -----
    // Skip the parameterised downsample convs (kept dense by every method).
    let main_keeps = |ratios: &[f32]| -> Vec<usize> {
        let mut it = ratios.iter();
        resnet18
            .convs
            .iter()
            .map(|s| {
                if s.name.ends_with("_ds") {
                    s.c_out
                } else {
                    let r = it.next().copied().unwrap_or(1.0);
                    ((s.c_out as f32 * r).round() as usize).clamp(1, s.c_out)
                }
            })
            .collect()
    };
    let fc = resnet18.fc_params;
    let with_fc = |c: NetworkCost| NetworkCost {
        params: c.params + fc,
        macs: c.macs + fc,
    };
    let alf_cost = with_fc(NetworkCost::of_alf_layers(
        resnet18
            .convs
            .iter()
            .zip(main_keeps(&alf.ratios))
            .filter(|(s, _)| !s.name.ends_with("_ds")),
    ));
    let amc_cost = with_fc(chained_cost(
        &resnet18.convs,
        &main_keeps(&amc_out.keep_ratios),
    ));
    let fpgm_cost = with_fc(chained_cost(&resnet18.convs, &main_keeps(&[fpgm_keep; 17])));
    let lcnn_cost = with_fc(lcnn_geometry_cost(&resnet18.convs, lcnn_ratio));

    // --- table --------------------------------------------------------------
    let mut out = JobResult::new("table3", ctx.scale());
    let arow = |name: &str, policy: &str, params: u64, macs: u64, acc: String| {
        vec![
            name.to_string(),
            policy.to_string(),
            eng(params as f64),
            format!("{} MOPs", 2 * macs / 1_000_000),
            acc,
        ]
    };
    let measured = |acc: f32| format!("{:.1}%*", 100.0 * acc);
    let vanilla_acc = vanilla.report.final_accuracy();
    let alf_acc = alf.report.final_accuracy();
    let rows = vec![
        arow(
            "SqueezeNet",
            "—",
            squeezenet.params(),
            squeezenet.macs(),
            "57.2% (paper)".into(),
        ),
        arow(
            "GoogleNet",
            "—",
            googlenet.params(),
            googlenet.macs(),
            "66.8% (paper)".into(),
        ),
        arow(
            "ResNet-18",
            "—",
            resnet18.params(),
            resnet18.macs(),
            measured(vanilla_acc),
        ),
        arow(
            "LCNN",
            "Automatic",
            lcnn_cost.params,
            lcnn_cost.macs,
            measured(lcnn_acc),
        ),
        arow(
            "FPGM",
            "Handcrafted",
            fpgm_cost.params,
            fpgm_cost.macs,
            measured(fpgm_acc),
        ),
        arow(
            "AMC",
            "RL-Agent",
            amc_cost.params,
            amc_cost.macs,
            measured(amc_acc),
        ),
        arow(
            "ALF (ours)",
            "Automatic",
            alf_cost.params,
            alf_cost.macs,
            measured(alf_acc),
        ),
    ];
    out.push_table(Table::new(
        "Table III: ImageNet benchmarking (Params/OPs exact at 224x224; * = accuracy measured \
         on synth-ImageNet substitute)",
        &["Method", "Policy", "Params", "OPs", "Acc"],
        rows,
    ));
    let full_cost = NetworkCost {
        params: resnet18.params(),
        macs: resnet18.macs(),
    };
    for (method, cost, acc) in [
        ("ResNet-18", &full_cost, vanilla_acc),
        ("LCNN", &lcnn_cost, lcnn_acc),
        ("FPGM", &fpgm_cost, fpgm_acc),
        ("AMC", &amc_cost, amc_acc),
        ("ALF", &alf_cost, alf_acc),
    ] {
        out.pareto_point(
            "imagenet",
            method,
            cost.params as f64,
            cost.ops() as f64,
            f64::from(acc),
        );
    }
    out.metric("alf_accuracy", f64::from(alf_acc));
    out.metric("vanilla_accuracy", f64::from(vanilla_acc));
    out.note(
        "paper reference rows: SqueezeNet 1.23M/1722, GoogleNet 6.80M/3004, ResNet-18 \
         11.83M/3743,\nLCNN –/749 (62.2%), FPGM –/2178 (67.8%), AMC 8.9M/1874 (67.7%), ALF \
         4.24M/1239 (64.3%)",
    );
    Ok(out)
}

/// Headline claim — params/OPs/execution-time/energy reductions plus the
/// accuracy drop, measured against the paper's numbers. Reuses the shared
/// vanilla and ALF ResNet-20 trainings; the per-layer wall-time profile
/// runs one fwd+bwd batch on a clone of the shared ALF model.
pub fn headline(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let cfg = crate::CifarConfig::at(ctx.scale());
    let data = ctx.store.cifar()?;
    let vanilla = ctx.store.baseline(BaselineKind::Resnet20)?;
    let alf = ctx.store.baseline(BaselineKind::AlfResnet20)?;

    // Measured per-layer cost: one profiled fwd+bwd batch through the
    // trained ALF model via a RunCtx with the profiler attached.
    let mut model = alf.model.clone();
    let batch: Vec<usize> = (0..cfg.hyper.batch_size.min(data.len_of(Split::Train))).collect();
    let (images, labels) = data.gather(Split::Train, &batch)?;
    let mut run_ctx = RunCtx::train().with_profiler();
    let logits = model.forward(&images, &mut run_ctx)?;
    let (_, grad) = softmax_cross_entropy(&logits, &labels)?;
    model.backward(&grad, &mut run_ctx)?;
    let profile = run_ctx.report().expect("profiler was attached");

    // Theoretical metrics on the paper geometry.
    let paper_geometry = geometry::plain20_layers(32, 3);
    let baseline = NetworkCost::of_layers(&paper_geometry);
    let alf_cost = NetworkCost::of_alf_layers(
        paper_geometry
            .iter()
            .zip(ratios_to_keeps(&paper_geometry, &alf.ratios)),
    );
    let (d_params, d_macs) = alf_cost.reduction_vs(&baseline);

    // Hardware metrics on the Eyeriss model.
    let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);
    let vanilla_hw = super::map_hw(NetworkReport::evaluate(
        &mapper,
        &paper_geometry
            .iter()
            .map(|s| ConvWorkload::from_shape(s, 16))
            .collect::<Vec<_>>(),
    ))?;
    let alf_workloads = alf_hwmodel::alf_network(&paper_geometry, &alf.ratios, 16);
    let alf_hw = super::map_hw(NetworkReport::evaluate(&mapper, &alf_workloads))?.merged();
    let (d_energy, d_latency) = alf_hw.reduction_vs(&vanilla_hw);

    let acc_drop = vanilla.report.final_accuracy() - alf.report.final_accuracy();
    let mut out = JobResult::new("headline", ctx.scale());
    out.push_table(Table::new(
        "Headline claims: measured vs paper",
        &["metric", "measured", "paper"],
        vec![
            vec![
                "parameters".into(),
                format!("−{d_params:.0}%"),
                "−70%".into(),
            ],
            vec!["operations".into(), format!("−{d_macs:.0}%"), "−61%".into()],
            vec![
                "execution time".into(),
                format!("−{d_latency:.0}%"),
                "−41%".into(),
            ],
            vec!["energy".into(), format!("−{d_energy:.0}%"), "−29%".into()],
            vec![
                "accuracy drop".into(),
                format!("{:.1} pts", 100.0 * acc_drop),
                "1.9 pts".into(),
            ],
        ],
    ));
    out.metric("param_reduction", d_params);
    out.metric("ops_reduction", d_macs);
    out.metric("latency_reduction", d_latency);
    out.metric("energy_reduction", d_energy);
    out.metric("accuracy_drop", f64::from(acc_drop));
    out.metric(
        "remaining_filters",
        f64::from(alf.report.final_remaining_filters()),
    );
    out.note(format!(
        "remaining filters: {:.0}% (Fig. 2c paper range ≈ 36–40% at t = 1e-4)",
        100.0 * alf.report.final_remaining_filters()
    ));

    // Per-layer measured wall time next to the Eyeriss per-layer latency
    // prediction (joined by conv-unit name; the hw columns are on the
    // paper geometry, so compare shapes, not absolute scales).
    let layer_rows: Vec<Vec<String>> = profile
        .layers
        .iter()
        .map(|l| {
            let hw = alf_hw.layers.iter().find(|r| r.name == l.name);
            vec![
                l.name.clone(),
                format!("{:.3}", l.fwd_ns as f64 / 1e6),
                format!("{:.3}", l.bwd_ns as f64 / 1e6),
                format!("{:.1}", l.flops as f64 / 1e6),
                hw.map_or_else(|| "—".into(), |r| format!("{:.0}", r.latency_cycles)),
            ]
        })
        .collect();
    out.push_table(Table::new(
        "Per-layer: measured (profiler) vs Eyeriss prediction",
        &["layer", "fwd ms", "bwd ms", "MFLOPs", "hw cycles"],
        layer_rows,
    ));
    out.metric(
        "arena_high_water_mb",
        profile.ws_high_water_bytes as f64 / 1e6,
    );
    out.note(format!(
        "arena high water: {:.2} MB",
        profile.ws_high_water_bytes as f64 / 1e6
    ));

    // Int8 deployment of the shared ALF Plain-20: measured per-layer
    // speedup of the fused int8 engine over the f32 deployment, next to
    // the hardware model's 16-bit → 8-bit Eyeriss prediction (same
    // geometry caveat as above — compare shapes, not absolute scales).
    let alf_p20 = ctx.store.baseline(BaselineKind::AlfPlain20)?;
    let mut f32_deploy = Pipeline::new().run(&alf_p20.model)?.model;
    let mut prof_ctx = RunCtx::eval().with_profiler();
    f32_deploy.forward(&images, &mut prof_ctx)?;
    let f32_profile = prof_ctx.report().expect("profiler was attached");
    let lowered = Pipeline::new()
        .fold_bn(true)
        .quantize(QuantSpec::int8(images.clone()))
        .run(&alf_p20.model)?;
    let mut qm = lowered.quantized.expect("pipeline ran with quantize");
    qm.forward(&images)?;
    let p20_workloads = alf_hwmodel::alf_network(&paper_geometry, &alf_p20.ratios, 16);
    let hw16 = super::map_hw(NetworkReport::evaluate(&mapper, &p20_workloads))?.merged();
    let mapper8 = Mapper::new(Accelerator::eyeriss_int8(), Dataflow::RowStationary);
    let hw8 = super::map_hw(NetworkReport::evaluate(&mapper8, &p20_workloads))?.merged();

    let (mut f32_total_ns, mut int8_total_ns) = (0u64, 0u64);
    let int8_rows: Vec<Vec<String>> = qm
        .layer_times_ns()
        .iter()
        .map(|(name, int8_ns)| {
            let f32_ns = f32_profile
                .layers
                .iter()
                .find(|l| &l.name == name)
                .map(|l| l.fwd_ns);
            let predicted = match (
                hw16.layers.iter().find(|r| &r.name == name),
                hw8.layers.iter().find(|r| &r.name == name),
            ) {
                (Some(a), Some(b)) if b.latency_cycles > 0.0 => {
                    Some(a.latency_cycles / b.latency_cycles)
                }
                _ => None,
            };
            if let Some(f) = f32_ns {
                f32_total_ns += f;
                int8_total_ns += int8_ns;
            }
            vec![
                name.clone(),
                f32_ns.map_or_else(|| "—".into(), |f| format!("{:.3}", f as f64 / 1e6)),
                format!("{:.3}", *int8_ns as f64 / 1e6),
                f32_ns.map_or_else(
                    || "—".into(),
                    |f| format!("{:.2}x", f as f64 / (*int8_ns).max(1) as f64),
                ),
                predicted.map_or_else(|| "—".into(), |p| format!("{:.2}x", p)),
            ]
        })
        .collect();
    out.push_table(Table::new(
        "Per-layer int8: measured speedup over f32 deployment vs Eyeriss 16b→8b prediction \
         (ALF Plain-20)",
        &["layer", "f32 ms", "int8 ms", "measured", "predicted"],
        int8_rows,
    ));
    let measured_speedup = f32_total_ns as f64 / (int8_total_ns.max(1)) as f64;
    let predicted_speedup = hw16.total_latency() / hw8.total_latency().max(1.0);
    out.metric("int8_measured_speedup", measured_speedup);
    out.metric("int8_predicted_speedup", predicted_speedup);
    out.note(format!(
        "int8 engine: {measured_speedup:.2}x measured over the f32 deployment (conv stack, \
         batch {}); Eyeriss predicts {predicted_speedup:.2}x at 8-bit words; weight footprint \
         {} bytes",
        images.dims()[0],
        qm.weight_bytes()
    ));
    Ok(out)
}

/// Supplementary analysis — per-layer magnitude-pruning sensitivity (Han
/// et al.) next to where the shared ALF Plain-20 actually pruned.
pub fn sensitivity(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let data = ctx.store.cifar()?;
    let vanilla = ctx.store.baseline(BaselineKind::Plain20)?;
    let alf = ctx.store.baseline(BaselineKind::AlfPlain20)?;

    let ratios = [0.25f32, 0.5, 0.75, 1.0];
    let curves = layer_sensitivity(&vanilla.model, &data, &ratios, 32)?;
    let stats = alf.model.filter_stats();

    let rows: Vec<Vec<String>> = curves
        .iter()
        .zip(&stats)
        .map(|(c, (name, active, total))| {
            let mut row = vec![name.clone()];
            for (r, a) in &c.points {
                row.push(format!("{:.0}%@{:.2}", 100.0 * a, r));
            }
            row.push(format!(
                "{}/{} ({:.0}%)",
                active,
                total,
                100.0 * *active as f32 / *total as f32
            ));
            row
        })
        .collect();
    let mut out = JobResult::new("sensitivity", ctx.scale());
    out.push_table(Table::new(
        "accuracy when pruning ONE layer to the given keep-ratio (others dense) | ALF kept",
        &[
            "layer", "keep .25", "keep .50", "keep .75", "keep 1.0", "ALF kept",
        ],
        rows,
    ));
    out.metric("layers_probed", curves.len() as f64);
    out.note(
        "reading: layers whose accuracy column barely moves at keep .25 are insensitive — \
         the νprune game should (and the ALF column typically does) prune those hardest.",
    );
    Ok(out)
}
