//! The paper's results grid as typed, composable job functions.
//!
//! Each figure/table binary used to own its experiment body; those bodies
//! now live here as functions from a [`JobCtx`] to a structured
//! [`JobResult`], and the binaries are thin wrappers. [`JobKind`] is the
//! declarative grid: every job has a stable id, an explicit dependency
//! list ([`JobKind::deps`] — shared `baseline:*` training jobs feed the
//! tables, figures and ablations so each reference trains exactly once),
//! and a thread lease ([`JobKind::threads`]) the `alf-lab` scheduler
//! budgets with.

use alf_core::train::Evaluator;
use alf_core::{ConvShape, Result};
use alf_data::{Dataset, Split};

use crate::artifacts::{ArtifactStore, Baseline, BaselineKind};
use crate::report::{JobResult, Table};
use crate::Scale;

pub mod ablations;
pub mod figures;
pub mod tables;

/// Everything a job function may touch: the scale-pinned artifact store
/// and the thread lease the scheduler granted.
#[derive(Debug)]
pub struct JobCtx<'a> {
    /// Shared datasets and trained baselines.
    pub store: &'a ArtifactStore,
    /// Worker cap for this job's internal fan-out (`None`: host default).
    pub threads: Option<usize>,
}

impl<'a> JobCtx<'a> {
    /// Context over a store with no thread lease.
    pub fn new(store: &'a ArtifactStore) -> Self {
        Self {
            store,
            threads: None,
        }
    }

    /// The experiment scale.
    pub fn scale(&self) -> Scale {
        self.store.scale()
    }

    /// Evaluates accuracy under this job's thread lease.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the model or data pipeline.
    pub fn evaluate(
        &self,
        model: &alf_core::CnnModel,
        data: &Dataset,
        split: Split,
        batch: usize,
    ) -> Result<f32> {
        let mut eval = match self.threads {
            Some(n) => Evaluator::with_threads(n),
            None => Evaluator::new(),
        };
        eval.evaluate(model, data, split, batch)
    }
}

/// Every job of the declared results grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Shared reference training (feeds the consumer jobs below).
    Baseline(BaselineKind),
    /// Fig. 2a — expansion-layer design-space exploration.
    Fig2a,
    /// Fig. 2b — autoencoder design-space exploration.
    Fig2b,
    /// Fig. 2c — pruning dynamics across `(lrae, t)` variants.
    Fig2c,
    /// Fig. 3 — per-layer energy/latency on the Eyeriss model.
    Fig3,
    /// Table II — pruned CNNs on synth-CIFAR.
    Table2,
    /// Table III — ImageNet-track benchmarking.
    Table3,
    /// Headline claims (params/OPs/latency/energy/accuracy).
    Headline,
    /// Per-layer pruning sensitivity vs ALF keep decisions.
    Sensitivity,
    /// Ablation A1 — straight-through estimator on/off.
    AblationSte,
    /// Ablation A2 — νprune schedule vs constant pressure.
    AblationNuprune,
    /// Ablation A3 — dataflow choice on the accelerator model.
    AblationDataflow,
    /// Ablation A4 — fused-layer scheduling of ALF blocks.
    AblationFusion,
    /// Ablation A5 — post-training quantization on deployed models.
    AblationQuant,
}

impl JobKind {
    /// The full grid in declaration order: baselines first, then every
    /// figure/table/ablation. Declaration order is the scheduler's
    /// deterministic tie-break, so this list *is* the campaign.
    pub fn grid() -> Vec<JobKind> {
        let mut jobs: Vec<JobKind> = BaselineKind::ALL
            .iter()
            .map(|&k| JobKind::Baseline(k))
            .collect();
        jobs.extend([
            JobKind::Fig2a,
            JobKind::Fig2b,
            JobKind::Fig2c,
            JobKind::Fig3,
            JobKind::Table2,
            JobKind::Table3,
            JobKind::Headline,
            JobKind::Sensitivity,
            JobKind::AblationSte,
            JobKind::AblationNuprune,
            JobKind::AblationDataflow,
            JobKind::AblationFusion,
            JobKind::AblationQuant,
        ]);
        jobs
    }

    /// Stable job id (manifest key, artifact file stem, CLI selector).
    pub fn id(self) -> &'static str {
        match self {
            JobKind::Baseline(k) => k.id(),
            JobKind::Fig2a => "fig2a",
            JobKind::Fig2b => "fig2b",
            JobKind::Fig2c => "fig2c",
            JobKind::Fig3 => "fig3",
            JobKind::Table2 => "table2",
            JobKind::Table3 => "table3",
            JobKind::Headline => "headline",
            JobKind::Sensitivity => "sensitivity",
            JobKind::AblationSte => "ablation_ste",
            JobKind::AblationNuprune => "ablation_nuprune",
            JobKind::AblationDataflow => "ablation_dataflow",
            JobKind::AblationFusion => "ablation_fusion",
            JobKind::AblationQuant => "ablation_quant",
        }
    }

    /// Looks a job up by its [`JobKind::id`].
    pub fn from_id(id: &str) -> Option<JobKind> {
        Self::grid().into_iter().find(|j| j.id() == id)
    }

    /// Explicit dependencies: the `baseline:*` jobs whose trained models
    /// this job consumes. The DAG edges are what make "each reference
    /// trains exactly once" structural rather than accidental.
    pub fn deps(self) -> Vec<JobKind> {
        use BaselineKind as B;
        let b = JobKind::Baseline;
        match self {
            JobKind::Baseline(_)
            | JobKind::Fig2a
            | JobKind::Fig2b
            | JobKind::AblationDataflow
            | JobKind::AblationFusion => Vec::new(),
            JobKind::Fig2c => vec![b(B::Plain20)],
            JobKind::Fig3 => vec![b(B::AlfPlain20), b(B::AlfResnet20)],
            JobKind::Table2 => vec![b(B::Plain20), b(B::Resnet20), b(B::AlfResnet20)],
            JobKind::Table3 => vec![b(B::ImagenetResnet18), b(B::ImagenetAlfResnet18)],
            JobKind::Headline => vec![b(B::Resnet20), b(B::AlfResnet20)],
            JobKind::Sensitivity => vec![b(B::Plain20), b(B::AlfPlain20)],
            JobKind::AblationSte | JobKind::AblationNuprune | JobKind::AblationQuant => {
                vec![b(B::AlfPlain20)]
            }
        }
    }

    /// Thread lease: how many workers the job's internal fan-out may use
    /// concurrently. Training-heavy jobs lease 2; geometry-only jobs 1.
    pub fn threads(self) -> usize {
        match self {
            JobKind::AblationDataflow | JobKind::AblationFusion => 1,
            _ => 2,
        }
    }

    /// Runs the job.
    ///
    /// # Errors
    ///
    /// Propagates model, training and mapping errors.
    pub fn run(self, ctx: &JobCtx<'_>) -> Result<JobResult> {
        match self {
            JobKind::Baseline(kind) => baseline_job(ctx, kind),
            JobKind::Fig2a => figures::fig2a(ctx),
            JobKind::Fig2b => figures::fig2b(ctx),
            JobKind::Fig2c => figures::fig2c(ctx),
            JobKind::Fig3 => figures::fig3(ctx),
            JobKind::Table2 => tables::table2(ctx),
            JobKind::Table3 => tables::table3(ctx),
            JobKind::Headline => tables::headline(ctx),
            JobKind::Sensitivity => tables::sensitivity(ctx),
            JobKind::AblationSte => ablations::ste(ctx),
            JobKind::AblationNuprune => ablations::nuprune(ctx),
            JobKind::AblationDataflow => ablations::dataflow(ctx),
            JobKind::AblationFusion => ablations::fusion(ctx),
            JobKind::AblationQuant => ablations::quant(ctx),
        }
    }
}

/// Adapts a hardware-mapper result into the workspace-wide tensor error
/// (the mapper's errors are configuration bugs, reported as such).
pub(crate) fn map_hw<T>(r: std::result::Result<T, alf_hwmodel::MapperError>) -> Result<T> {
    r.map_err(|e| alf_tensor::ShapeError::new("hwmodel", e.to_string()))
}

/// Body of every standalone figure/table binary: parse the shared CLI
/// surface, run one job against a fresh artifact store (dependencies
/// resolve lazily through the store), print the text report and write the
/// `results/<job>.{txt,json}` artifact pair.
///
/// # Panics
///
/// Panics on malformed arguments, an unknown job id, or a failing job —
/// the standalone binaries are developer tools and fail loudly.
pub fn standalone_main(id: &str) {
    let args = crate::BenchArgs::parse();
    let scale = args.scale;
    let threads = args.jobs;
    let out = args.out_dir();
    args.finish().unwrap_or_else(|e| panic!("{e}"));
    let job = JobKind::from_id(id).unwrap_or_else(|| panic!("unknown job '{id}'"));
    let store = ArtifactStore::with_threads(scale, threads);
    let ctx = JobCtx {
        store: &store,
        threads,
    };
    let result = job.run(&ctx).expect("job failed");
    print!("{}", result.to_text());
    let (txt, json) = result.write_artifacts(&out).expect("write artifacts");
    eprintln!("wrote {} and {}", txt.display(), json.display());
}

/// Maps measured keep *ratios* onto per-layer kept-filter counts of a
/// geometry (each clamped to `[1, c_out]`).
pub(crate) fn ratios_to_keeps(geometry: &[ConvShape], ratios: &[f32]) -> Vec<usize> {
    geometry
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let r = ratios.get(i).copied().unwrap_or(1.0);
            ((s.c_out as f32 * r).round() as usize).clamp(1, s.c_out)
        })
        .collect()
}

/// Training-curve table shared by the baseline jobs (full trace at smoke
/// scale, every 4th epoch at paper scale).
fn curve_table(baseline: &Baseline) -> Table {
    let step = (baseline.report.epochs.len() / 16).max(1);
    let rows: Vec<Vec<String>> = baseline
        .report
        .epochs
        .iter()
        .step_by(step)
        .map(|e| {
            vec![
                e.epoch.to_string(),
                format!("{:.3}", e.train_loss),
                format!("{:.1}%", 100.0 * e.train_accuracy),
                format!("{:.1}%", 100.0 * e.test_accuracy),
                format!("{:.0}%", 100.0 * e.remaining_filters),
            ]
        })
        .collect();
    Table::new(
        &format!("{} training curve", baseline.kind.label()),
        &["epoch", "loss", "train acc", "test acc", "filters"],
        rows,
    )
}

/// Body of every `baseline:*` job: train (or fetch) the reference, report
/// its curve and final metrics.
fn baseline_job(ctx: &JobCtx<'_>, kind: BaselineKind) -> Result<JobResult> {
    let baseline = ctx.store.baseline(kind)?;
    let mut result = JobResult::new(kind.id(), ctx.scale());
    result.push_table(curve_table(&baseline));
    result.metric(
        "final_accuracy",
        f64::from(baseline.report.final_accuracy()),
    );
    result.metric("best_accuracy", f64::from(baseline.report.best_accuracy()));
    result.metric(
        "remaining_filters",
        f64::from(baseline.report.final_remaining_filters()),
    );
    result.metric("epochs", baseline.report.epochs.len() as f64);
    result.note(format!(
        "canonical reference: every consumer job reuses this training via the artifact store \
         (model seed/trainer seed pinned; dataset seed {}).",
        if kind.is_imagenet() {
            crate::artifacts::IMAGENET_DATA_SEED
        } else {
            crate::artifacts::CIFAR_DATA_SEED
        }
    ));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_ids_are_unique_and_deps_are_in_grid() {
        let grid = JobKind::grid();
        let ids: std::collections::BTreeSet<&str> = grid.iter().map(|j| j.id()).collect();
        assert_eq!(ids.len(), grid.len());
        for job in &grid {
            for dep in job.deps() {
                assert!(
                    grid.contains(&dep),
                    "{} dep {} not in grid",
                    job.id(),
                    dep.id()
                );
                assert!(
                    matches!(dep, JobKind::Baseline(_)),
                    "non-baseline dependency"
                );
            }
            assert!(job.threads() >= 1);
            assert_eq!(JobKind::from_id(job.id()), Some(*job));
        }
    }

    #[test]
    fn baselines_precede_consumers_in_declaration_order() {
        let grid = JobKind::grid();
        let pos = |j: &JobKind| grid.iter().position(|g| g == j).unwrap();
        for job in &grid {
            for dep in job.deps() {
                assert!(pos(&dep) < pos(job));
            }
        }
    }

    #[test]
    fn ratios_map_onto_geometry() {
        let geo = vec![
            ConvShape::new("a", 3, 8, 3, 1, 16, 16),
            ConvShape::new("b", 8, 8, 3, 1, 16, 16),
        ];
        assert_eq!(ratios_to_keeps(&geo, &[0.5, 0.0]), vec![4, 1]);
        assert_eq!(ratios_to_keeps(&geo, &[2.0]), vec![8, 8]);
    }
}
