//! Ablation jobs A1–A5: STE, νprune schedule, dataflow, fusion, and
//! post-training quantization.

use alf_core::models::{geometry, plain20_alf};
use alf_core::train::AlfTrainer;
use alf_core::{deploy, quant, PruneSchedule, Result, TrainReport};
use alf_data::Split;
use alf_hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};

use super::{JobCtx, JobResult, Table};
use crate::artifacts::BaselineKind;
use crate::eng;

const BATCH: usize = 16;

/// A1 — is the straight-through estimator necessary? The STE-on arm *is*
/// the shared ALF Plain-20 baseline (identical seed/hyper); only the
/// chained-gradient arm trains here.
pub fn ste(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let cfg = crate::CifarConfig::at(ctx.scale());
    let data = ctx.store.cifar()?;
    let on = ctx.store.baseline(BaselineKind::AlfPlain20)?;

    // The chained-gradient arm: same canonical seed/hyper as the shared
    // baseline, only `ste` flipped.
    let mut block = cfg.block;
    block.ste = false;
    let model = plain20_alf(cfg.classes, cfg.width, block, 3)?;
    let mut trainer = AlfTrainer::new(model, cfg.hyper.clone(), 3)?;
    if let Some(n) = ctx.threads {
        trainer.set_eval_threads(n);
    }
    let off = trainer.run(&data, cfg.epochs)?;

    let row = |label: &str, report: &TrainReport| -> Vec<String> {
        vec![
            label.to_string(),
            format!("{:.1}%", 100.0 * report.final_accuracy()),
            format!(
                "{:.3}",
                report.epochs.last().map_or(f32::NAN, |e| e.train_loss)
            ),
            format!("{:.0}%", 100.0 * report.final_remaining_filters()),
        ]
    };
    let mut out = JobResult::new("ablation_ste", ctx.scale());
    out.push_table(Table::new(
        "STE ablation: ALF Plain-20, identical seeds/hyper-parameters",
        &[
            "task gradient",
            "test acc",
            "final train loss",
            "remaining filters",
        ],
        vec![
            row("STE (paper, Eq. 5)", &on.report),
            row("true chain gradient", &off),
        ],
    ));
    out.metric("ste_accuracy", f64::from(on.report.final_accuracy()));
    out.metric("chain_accuracy", f64::from(off.final_accuracy()));
    out.note(
        "expected: the STE run trains better — the chained gradient is mask-zeroised and \
         encoder-mixed.",
    );
    Ok(out)
}

/// A2 — the νprune schedule vs constant pruning pressure. The paper
/// schedule's arm is the shared ALF Plain-20 baseline; the near-constant
/// and early-cut-off variants train here under the same canonical seed.
pub fn nuprune(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let cfg = crate::CifarConfig::at(ctx.scale());
    let data = ctx.store.cifar()?;
    let paper = ctx.store.baseline(BaselineKind::AlfPlain20)?;

    let row = |label: &str, report: &TrainReport| -> Vec<String> {
        let trajectory: Vec<String> = report
            .epochs
            .iter()
            .step_by((report.epochs.len() / 6).max(1))
            .map(|e| format!("{:.0}", 100.0 * e.remaining_filters))
            .collect();
        vec![
            label.to_string(),
            trajectory.join("→"),
            format!("{:.0}%", 100.0 * report.final_remaining_filters()),
            format!("{:.1}%", 100.0 * report.final_accuracy()),
        ]
    };
    let mut rows = vec![row("paper schedule (m=8, prmax=0.85)", &paper.report)];
    let variants: [(&str, &str, PruneSchedule); 2] = [
        (
            "near-constant pressure (m=1, prmax=1.0)",
            "constant",
            PruneSchedule::new(1.0, 1.0),
        ),
        (
            "early cut-off (m=8, prmax=0.5)",
            "early_cutoff",
            PruneSchedule::new(8.0, 0.5),
        ),
    ];
    let mut out = JobResult::new("ablation_nuprune", ctx.scale());
    out.metric(
        "final_filters_paper",
        f64::from(paper.report.final_remaining_filters()),
    );
    for (label, key, schedule) in variants {
        let mut hyper = cfg.hyper.clone();
        hyper.prune_schedule = schedule;
        let model = plain20_alf(cfg.classes, cfg.width, cfg.block, 3)?;
        let mut trainer = AlfTrainer::new(model, hyper, 3)?;
        if let Some(n) = ctx.threads {
            trainer.set_eval_threads(n);
        }
        let report = trainer.run(&data, cfg.epochs)?;
        out.metric(
            &format!("final_filters_{key}"),
            f64::from(report.final_remaining_filters()),
        );
        rows.push(row(label, &report));
    }
    out.push_table(Table::new(
        "νprune ablation: remaining-filter trajectory (sampled epochs, %)",
        &["schedule", "trajectory", "final filters", "test acc"],
        rows,
    ));
    out.note(
        "expected: constant pressure keeps pruning past the target (more filters lost, lower \
         accuracy); an early cut-off stops pruning at ~50% zeros.",
    );
    Ok(out)
}

/// A3 — how much of Fig. 3's result depends on the row-stationary
/// dataflow? Geometry-only: re-maps vanilla Plain-20 under all three
/// dataflows.
pub fn dataflow(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let workloads: Vec<ConvWorkload> = geometry::plain20_layers(32, 3)
        .iter()
        .map(|s| ConvWorkload::from_shape(s, BATCH))
        .collect();
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for dataflow in [
        Dataflow::RowStationary,
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
    ] {
        let mapper = Mapper::new(Accelerator::eyeriss(), dataflow);
        let report = super::map_hw(NetworkReport::evaluate(&mapper, &workloads))?;
        let rf: f64 = report.layers.iter().map(|l| l.energy_rf).sum();
        let gb: f64 = report.layers.iter().map(|l| l.energy_buffer).sum();
        let dram: f64 = report.layers.iter().map(|l| l.energy_dram).sum();
        rows.push(vec![
            dataflow.label().to_string(),
            eng(report.total_energy()),
            format!("{}/{}/{}", eng(rf), eng(gb), eng(dram)),
            eng(report.total_latency()),
        ]);
        reports.push((dataflow, report));
    }
    let mut out = JobResult::new("ablation_dataflow", ctx.scale());
    out.push_table(Table::new(
        "dataflow ablation: total energy and latency (Plain-20, batch 16, normalised units)",
        &["dataflow", "total energy", "RF/GB/DRAM", "latency"],
        rows,
    ));
    let best = reports
        .iter()
        .min_by(|a, b| a.1.total_energy().total_cmp(&b.1.total_energy()))
        .expect("non-empty");
    for (dataflow, report) in &reports {
        out.metric(
            &format!("energy_{}", dataflow.label().replace('-', "_")),
            report.total_energy(),
        );
    }
    out.note(format!(
        "minimum-energy dataflow: {} (Eyeriss implements row-stationary for this reason)",
        best.0
    ));
    Ok(out)
}

/// A4 — fused-layer scheduling of the ALF block's codependent
/// `code → expansion` pair (geometry-only, ≈40% remaining filters).
pub fn fusion(ctx: &JobCtx<'_>) -> Result<JobResult> {
    const REMAINING: f32 = 0.4;
    let layers = geometry::plain20_layers(32, 3);
    let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);

    let pairs: Vec<(ConvWorkload, ConvWorkload)> = layers
        .iter()
        .map(|s| {
            let c_code = ((s.c_out as f32 * REMAINING).round() as usize).clamp(1, s.c_out);
            alf_hwmodel::alf_pair(s, c_code, BATCH)
        })
        .collect();
    let flat: Vec<ConvWorkload> = pairs
        .iter()
        .flat_map(|(c, e)| [c.clone(), e.clone()])
        .collect();
    let unfused = super::map_hw(NetworkReport::evaluate(&mapper, &flat))?.merged();
    let fused = super::map_hw(NetworkReport::evaluate_fused_pairs(&mapper, &pairs))?;
    let vanilla = super::map_hw(NetworkReport::evaluate(
        &mapper,
        &layers
            .iter()
            .map(|s| ConvWorkload::from_shape(s, BATCH))
            .collect::<Vec<_>>(),
    ))?;

    let rows: Vec<Vec<String>> = unfused
        .layers
        .iter()
        .zip(&fused.layers)
        .map(|(u, f)| {
            vec![
                u.name.to_uppercase(),
                eng(u.energy_dram),
                eng(f.energy_dram),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - f.energy_dram / u.energy_dram.max(1.0))
                ),
                eng(u.total_energy()),
                eng(f.total_energy()),
            ]
        })
        .collect();
    let mut out = JobResult::new("ablation_fusion", ctx.scale());
    out.push_table(Table::new(
        "fusion ablation: per-layer DRAM and total energy (Plain-20, 40% filters, batch 16)",
        &[
            "layer",
            "DRAM unfused",
            "DRAM fused",
            "DRAM cut",
            "E unfused",
            "E fused",
        ],
        rows,
    ));
    for (label, key, r) in [
        ("unfused (Fig. 3 schedule)", "unfused", &unfused),
        ("fused", "fused", &fused),
    ] {
        let (de, dl) = r.reduction_vs(&vanilla);
        out.metric(&format!("energy_{key}"), r.total_energy());
        out.note(format!(
            "{label}: total energy {} ({:+.0}% vs vanilla), latency {} ({:+.0}% vs vanilla)",
            eng(r.total_energy()),
            -de,
            eng(r.total_latency()),
            -dl
        ));
    }
    out.note(
        "expected: fusion removes the expansion layer's off-chip round trip, recovering the \
         paper's 'overhead eliminated' scenario — the early-layer DRAM penalty disappears.",
    );
    Ok(out)
}

/// A5 — post-training quantization composes with ALF: deploys the shared
/// ALF Plain-20 and fake-quantizes the deployed weights at 16/8/6/4/3
/// bits.
pub fn quant(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let data = ctx.store.cifar()?;
    let baseline = ctx.store.baseline(BaselineKind::AlfPlain20)?;
    let deployed = deploy::Pipeline::new().run(&baseline.model)?.model;
    let f32_acc = ctx.evaluate(&deployed, &data, Split::Test, 32)?;

    let mut out = JobResult::new("ablation_quant", ctx.scale());
    let mut rows = vec![vec![
        "f32 (reference)".to_string(),
        "—".into(),
        format!("{:.1}%", 100.0 * f32_acc),
        "—".into(),
    ]];
    for bits in [16u8, 8, 6, 4, 3] {
        let mut q_model = deployed.clone();
        let report = quant::fake_quantize_model(&mut q_model, bits)
            .map_err(|e| alf_tensor::ShapeError::new("quantize", e.to_string()))?;
        let acc = ctx.evaluate(&q_model, &data, Split::Test, 32)?;
        out.metric(&format!("accuracy_int{bits}"), f64::from(acc));
        rows.push(vec![
            format!("int{bits}"),
            eng(report.footprint_bytes() as f64),
            format!("{:.1}%", 100.0 * acc),
            format!("{:+.1} pts", 100.0 * (acc - f32_acc)),
        ]);
    }
    out.metric("accuracy_f32", f64::from(f32_acc));
    out.push_table(Table::new(
        "quantization of the deployed ALF model (weights only)",
        &["precision", "weight bytes", "accuracy", "Δacc vs f32"],
        rows,
    ));
    out.note(
        "expected: int8 is accuracy-neutral on top of ALF compression (the paper's \
         orthogonality claim); degradation appears only at very low bit-widths.",
    );
    Ok(out)
}
