//! Figure jobs: design-space explorations (Fig. 2a/2b), pruning dynamics
//! (Fig. 2c) and the Eyeriss energy/latency breakdown (Fig. 3).

use alf_core::explore::{explore_autoencoder, explore_expansion, ConfigResult, ExploreSetup};
use alf_core::models::{geometry, plain20_alf};
use alf_core::train::AlfTrainer;
use alf_core::Result;
use alf_hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};
use alf_nn::activation::ActivationKind;

use super::{JobCtx, JobResult, Table};
use crate::artifacts::BaselineKind;
use crate::{hbar, Scale};

const BATCH: usize = 16;

fn explore_table(title: &str, results: &[ConfigResult]) -> Table {
    let best = results
        .iter()
        .map(ConfigResult::mean)
        .fold(f32::NEG_INFINITY, f32::max) as f64;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let (lo, hi) = r.spread();
            vec![
                r.label.clone(),
                format!("{:.1}%", 100.0 * r.mean()),
                format!("[{:.1}, {:.1}]", 100.0 * lo, 100.0 * hi),
                hbar(f64::from(r.mean()) / best.max(1e-9), 30),
            ]
        })
        .collect();
    Table::new(title, &["config", "mean acc", "spread", "bar"], rows)
}

fn winner(results: &[ConfigResult]) -> &ConfigResult {
    results
        .iter()
        .max_by(|a, b| a.mean().total_cmp(&b.mean()))
        .expect("non-empty results")
}

/// Fig. 2a — expansion-layer design-space exploration:
/// `[Wexp,init | σinter | BNinter]` accuracy for Plain-20 ALF blocks.
pub fn fig2a(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let setup = match ctx.scale() {
        Scale::Smoke => ExploreSetup::smoke(),
        Scale::Paper => ExploreSetup::paper(),
    };
    let results = explore_expansion(&setup)?;
    let mut out = JobResult::new("fig2a", ctx.scale());
    out.push_table(explore_table(
        "Fig. 2a: accuracy by [Wexp,init | σinter | BNinter]",
        &results,
    ));
    let win = winner(&results);
    out.metric("best_accuracy", f64::from(win.mean()));
    out.metric("configs", results.len() as f64);
    out.note(format!(
        "winner: {}  (paper selects xavier init; BNinter showed no perceivable advantage)",
        win.label
    ));
    Ok(out)
}

/// Fig. 2b — autoencoder design-space exploration: `[Wae,init | σae]`
/// accuracy for both `σinter = none` and `σinter = ReLU` series.
pub fn fig2b(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let setup = match ctx.scale() {
        Scale::Smoke => ExploreSetup::smoke(),
        Scale::Paper => ExploreSetup::paper(),
    };
    let mut out = JobResult::new("fig2b", ctx.scale());
    for sigma_inter in [ActivationKind::Identity, ActivationKind::Relu] {
        let results = explore_autoencoder(&setup, sigma_inter)?;
        out.push_table(explore_table(
            &format!("Fig. 2b: accuracy by [Wae,init | σae], σinter = {sigma_inter}"),
            &results,
        ));
        let win = winner(&results);
        out.metric(
            &format!("best_accuracy_{}", sigma_inter.to_string().to_lowercase()),
            f64::from(win.mean()),
        );
        out.note(format!(
            "series σinter = {sigma_inter} winner: {}",
            win.label
        ));
    }
    out.note("paper finding: xavier|tanh with σinter = none wins — compare above.");
    Ok(out)
}

/// Fig. 2c — pruning dynamics over training epochs for five ALF variants
/// differing in `lrae` and clip threshold `t`, against the uncompressed
/// Plain-20 (the shared `baseline:plain20` artifact).
pub fn fig2c(ctx: &JobCtx<'_>) -> Result<JobResult> {
    let cfg = crate::CifarConfig::at(ctx.scale());
    let data = ctx.store.cifar()?;
    let vanilla = ctx.store.baseline(BaselineKind::Plain20)?;

    // The five (lrae, t) variants of the paper, rescaled at smoke scale so
    // the dynamics complete within the shortened schedule (same ordering).
    let (lr_hi, lr_mid, lr_lo) = match ctx.scale() {
        Scale::Smoke => (5e-2, 2e-2, 5e-3),
        Scale::Paper => (1e-3, 1e-4, 1e-5),
    };
    let (t_hi, t_mid, t_lo) = match ctx.scale() {
        Scale::Smoke => (5e-2, 2e-2, 1e-2),
        Scale::Paper => (5e-4, 1e-4, 5e-5),
    };
    let variants: Vec<(String, f64, f64)> = vec![
        (format!("lr={lr_hi:.0e},t={t_lo:.0e}"), lr_hi, t_lo),
        (format!("lr={lr_hi:.0e},t={t_mid:.0e}"), lr_hi, t_mid),
        (format!("lr={lr_hi:.0e},t={t_hi:.0e}"), lr_hi, t_hi),
        (format!("lr={lr_mid:.0e},t={t_mid:.0e}"), lr_mid, t_mid),
        (format!("lr={lr_lo:.0e},t={t_mid:.0e}"), lr_lo, t_mid),
    ];

    let mut out = JobResult::new("fig2c", ctx.scale());
    let mut summary_rows = Vec::new();
    for (label, lr, t) in &variants {
        let mut block = cfg.block;
        block.threshold = *t as f32;
        let mut hyper = cfg.hyper.clone();
        hyper.ae_lr = *lr as f32;
        let model = plain20_alf(cfg.classes, cfg.width, block, 7)?;
        let mut trainer = AlfTrainer::new(model, hyper, 7)?;
        if let Some(n) = ctx.threads {
            trainer.set_eval_threads(n);
        }
        let report = trainer.run(&data, cfg.epochs)?;
        let rows: Vec<Vec<String>> = report
            .epochs
            .iter()
            .map(|e| {
                vec![
                    e.epoch.to_string(),
                    format!("{:.1}", 100.0 * e.remaining_filters),
                    format!("{:.1}", 100.0 * e.test_accuracy),
                ]
            })
            .collect();
        out.push_table(Table::new(
            &format!("ALF({label}) dynamics"),
            &["epoch", "remaining-filters%", "test-acc%"],
            rows,
        ));
        summary_rows.push(vec![
            label.clone(),
            format!("{:.1}%", 100.0 * report.final_remaining_filters()),
            format!("{:.1}%", 100.0 * report.final_accuracy()),
        ]);
    }
    summary_rows.push(vec![
        "Plain-20 (uncompressed)".into(),
        "100.0%".into(),
        format!("{:.1}%", 100.0 * vanilla.report.final_accuracy()),
    ]);
    out.push_table(Table::new(
        "Fig. 2c summary: final remaining filters and accuracy",
        &["variant", "remaining filters", "accuracy"],
        summary_rows,
    ));
    out.metric(
        "vanilla_accuracy",
        f64::from(vanilla.report.final_accuracy()),
    );
    out.note(
        "paper trends to check: higher t ⇒ fewer filters; lower lrae ⇒ more filters; \
         paper keeps lr=1e-3, t=1e-4 as the trade-off.",
    );
    Ok(out)
}

/// Fig. 3 — per-layer energy breakdown (RF / buffer / DRAM) and
/// normalised latency of vanilla vs ALF-compressed Plain-20/ResNet-20 on
/// the Eyeriss model, batch 16. Consumes the two shared ALF baselines
/// instead of retraining them.
pub fn fig3(ctx: &JobCtx<'_>) -> Result<JobResult> {
    use crate::eng;
    let plain_ratios = ctx.store.baseline(BaselineKind::AlfPlain20)?.ratios.clone();
    let resnet_ratios = ctx
        .store
        .baseline(BaselineKind::AlfResnet20)?
        .ratios
        .clone();

    // Map the measured ratios onto the paper's width-16 / 32×32 geometry.
    let paper_geometry = geometry::plain20_layers(32, 3);
    let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);

    let vanilla_workloads: Vec<ConvWorkload> = paper_geometry
        .iter()
        .map(|s| ConvWorkload::from_shape(s, BATCH))
        .collect();
    let vanilla = super::map_hw(NetworkReport::evaluate(&mapper, &vanilla_workloads))?;

    let alf_report = |ratios: &[f32]| -> Result<NetworkReport> {
        let workloads = alf_hwmodel::alf_network(&paper_geometry, ratios, BATCH);
        Ok(super::map_hw(NetworkReport::evaluate(&mapper, &workloads))?.merged())
    };
    let alf_plain = alf_report(&plain_ratios)?;
    let alf_resnet = alf_report(&resnet_ratios)?;

    let rows: Vec<Vec<String>> = vanilla
        .layers
        .iter()
        .zip(&alf_plain.layers)
        .zip(&alf_resnet.layers)
        .map(|((v, ap), ar)| {
            vec![
                v.name.to_uppercase(),
                format!(
                    "{}/{}/{}",
                    eng(v.energy_rf),
                    eng(v.energy_buffer),
                    eng(v.energy_dram)
                ),
                format!(
                    "{}/{}/{}",
                    eng(ap.energy_rf),
                    eng(ap.energy_buffer),
                    eng(ap.energy_dram)
                ),
                format!(
                    "{}/{}/{}",
                    eng(ar.energy_rf),
                    eng(ar.energy_buffer),
                    eng(ar.energy_dram)
                ),
                eng(v.latency_cycles),
                eng(ap.latency_cycles),
                eng(ar.latency_cycles),
                format!("{:.0}%", 100.0 * ap.utilization),
            ]
        })
        .collect();
    let mut out = JobResult::new("fig3", ctx.scale());
    out.push_table(Table::new(
        "Fig. 3: per-layer energy (RF/GB/DRAM) and latency, batch 16",
        &[
            "layer",
            "vanilla E",
            "ALF-Plain E",
            "ALF-ResNet E",
            "van lat",
            "ALF-P lat",
            "ALF-R lat",
            "ALF-P util",
        ],
        rows,
    ));

    for (label, key, report) in [
        ("ALF-Plain-20", "plain", &alf_plain),
        ("ALF-ResNet-20", "resnet", &alf_resnet),
    ] {
        let (de, dl) = report.reduction_vs(&vanilla);
        out.metric(&format!("energy_reduction_{key}"), de);
        out.metric(&format!("latency_reduction_{key}"), dl);
        out.note(format!(
            "{label}: total energy change {:+.0}% (paper: −29%), total latency change {:+.0}% \
             (paper: −41%)",
            -de, -dl
        ));
    }
    let anomalies: Vec<&str> = vanilla
        .layers
        .iter()
        .zip(&alf_plain.layers)
        .filter(|(v, a)| a.latency_cycles > v.latency_cycles)
        .map(|(v, _)| v.name.as_str())
        .collect();
    out.metric("latency_anomalies", anomalies.len() as f64);
    if anomalies.is_empty() {
        out.note("no per-layer latency anomaly at this compression profile");
    } else {
        out.note(format!(
            "latency anomalies (compressed slower than vanilla, cf. the paper's conv312): {}",
            anomalies.join(", ")
        ));
    }
    Ok(out)
}
