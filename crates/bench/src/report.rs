//! Structured results: what a job *returns* instead of printing.
//!
//! Every figure/table job produces a [`JobResult`] — named tables, a flat
//! metrics map, free-text notes, and the [`ParetoPoint`]s it contributes
//! to the campaign-level accuracy-vs-cost frontier. The thin binary
//! wrappers (and the `alf-lab` scheduler) render the same result twice:
//! [`JobResult::to_text`] for humans, [`JobResult::to_json`] (through
//! `alf_obs::JsonWriter`) for machines, written side by side as
//! `<out>/<job>.txt` and `<out>/<job>.json`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use alf_obs::JsonWriter;

use crate::Scale;

/// One fixed-width table artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (ragged rows are padded with empty cells on render).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds a table from string-ish parts.
    pub fn new(title: &str, headers: &[&str], rows: Vec<Vec<String>>) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows,
        }
    }

    /// Renders the fixed-width form (the old `print_table` body).
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("\n== {} ==\n", self.title);
        let line = |cells: &[String], out: &mut String| {
            let mut s = String::new();
            for (w, c) in widths.iter().zip(cells) {
                s.push_str(&format!("{c:<width$}  ", width = w));
            }
            out.push_str(s.trim_end());
            out.push('\n');
        };
        line(&self.headers, &mut out);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// One (method, cost, accuracy) point a job contributes to the
/// consolidated Pareto report.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Evaluation track (`cifar` or `imagenet`).
    pub track: String,
    /// Method label (`ALF`, `AMC`, `FPGM`, `ResNet-20`, …).
    pub method: String,
    /// Parameter count on the paper geometry.
    pub params: f64,
    /// Operation count (OPs) on the paper geometry.
    pub ops: f64,
    /// Measured top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Id of the job that measured the point.
    pub source: String,
}

/// Structured output of one results job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Job id (`table2`, `fig2a`, `baseline:plain20`, …).
    pub job: String,
    /// Scale the job ran at.
    pub scale: &'static str,
    /// Rendered tables, in presentation order.
    pub tables: Vec<Table>,
    /// Flat machine-readable metrics.
    pub metrics: BTreeMap<String, f64>,
    /// Human commentary (the old trailing `println!`s).
    pub notes: Vec<String>,
    /// Contributions to the campaign Pareto frontier.
    pub pareto: Vec<ParetoPoint>,
}

impl JobResult {
    /// Empty result for a job at a scale.
    pub fn new(job: &str, scale: Scale) -> Self {
        Self {
            job: job.to_string(),
            scale: scale.label(),
            tables: Vec::new(),
            metrics: BTreeMap::new(),
            notes: Vec::new(),
            pareto: Vec::new(),
        }
    }

    /// Appends a table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Records a metric (overwrites on key collision).
    pub fn metric(&mut self, key: &str, value: f64) {
        self.metrics.insert(key.to_string(), value);
    }

    /// Appends a note line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Appends a Pareto contribution, stamping this job as its source.
    pub fn pareto_point(&mut self, track: &str, method: &str, params: f64, ops: f64, acc: f64) {
        self.pareto.push(ParetoPoint {
            track: track.to_string(),
            method: method.to_string(),
            params,
            ops,
            accuracy: acc,
            source: self.job.clone(),
        });
    }

    /// Full human-readable rendering: header, tables, then notes.
    pub fn to_text(&self) -> String {
        let mut out = format!("{} ({} scale)\n", self.job, self.scale);
        for t in &self.tables {
            out.push_str(&t.to_text());
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(n);
                out.push('\n');
            }
        }
        out
    }

    /// Machine-readable rendering (one JSON object).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("job", &self.job);
        w.field_str("scale", self.scale);
        w.key("metrics");
        w.begin_object();
        for (k, v) in &self.metrics {
            w.field_f64(k, *v);
        }
        w.end_object();
        w.key("pareto");
        w.begin_array();
        for p in &self.pareto {
            w.begin_object();
            w.field_str("track", &p.track);
            w.field_str("method", &p.method);
            w.field_f64("params", p.params);
            w.field_f64("ops", p.ops);
            w.field_f64("accuracy", p.accuracy);
            w.field_str("source", &p.source);
            w.end_object();
        }
        w.end_array();
        w.key("tables");
        w.begin_array();
        for t in &self.tables {
            w.begin_object();
            w.field_str("title", &t.title);
            w.key("headers");
            w.begin_array();
            for h in &t.headers {
                w.value_str(h);
            }
            w.end_array();
            w.key("rows");
            w.begin_array();
            for row in &t.rows {
                w.begin_array();
                for cell in row {
                    w.value_str(cell);
                }
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("notes");
        w.begin_array();
        for n in &self.notes {
            w.value_str(n);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Writes the `<job>.txt` / `<job>.json` artifact pair under `dir`
    /// (created if missing). `:` in job ids becomes `_` so baseline jobs
    /// produce portable file names.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_artifacts(&self, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let stem = self.job.replace(':', "_");
        let txt = dir.join(format!("{stem}.txt"));
        let json = dir.join(format!("{stem}.json"));
        std::fs::write(&txt, self.to_text())?;
        std::fs::write(&json, self.to_json())?;
        Ok((txt, json))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobResult {
        let mut r = JobResult::new("table2", Scale::Smoke);
        r.push_table(Table::new(
            "t",
            &["a", "bb"],
            vec![vec!["1".into(), "2".into()]],
        ));
        r.metric("acc", 0.5);
        r.note("done");
        r.pareto_point("cifar", "ALF", 100.0, 200.0, 0.75);
        r
    }

    #[test]
    fn text_contains_tables_and_notes() {
        let text = sample().to_text();
        assert!(text.starts_with("table2 (smoke scale)"));
        assert!(text.contains("== t =="));
        assert!(text.contains("a  bb"));
        assert!(text.ends_with("done\n"));
    }

    #[test]
    fn json_is_structured() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"job\":\"table2\",\"scale\":\"smoke\""));
        assert!(json.contains("\"metrics\":{\"acc\":0.5}"));
        assert!(json.contains(
            "\"pareto\":[{\"track\":\"cifar\",\"method\":\"ALF\",\"params\":100,\"ops\":200,\
             \"accuracy\":0.75,\"source\":\"table2\"}]"
        ));
        assert!(json.contains("\"rows\":[[\"1\",\"2\"]]"));
    }

    #[test]
    fn artifacts_write_side_by_side() {
        let dir = std::env::temp_dir().join(format!("alf_bench_report_{}", std::process::id()));
        let mut r = sample();
        r.job = "baseline:plain20".into();
        let (txt, json) = r.write_artifacts(&dir).unwrap();
        assert!(txt.ends_with("baseline_plain20.txt"));
        assert!(json.ends_with("baseline_plain20.json"));
        assert!(txt.exists() && json.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
