//! Criterion micro-benchmarks for the computational kernels underpinning
//! the experiments: convolution, ALF block forward/backward, autoencoder
//! steps, the mapping search, deployment stripping, and the `RunCtx`
//! execution path (profiler overhead, evaluator replica reuse).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use alf_core::block::{AlfBlock, AlfBlockConfig};
use alf_core::models::{geometry, plain20_alf};
use alf_core::train::{evaluate, Evaluator};
use alf_core::{deploy, PruneSchedule, WeightAutoencoder};
use alf_data::{Dataset, Split};
use alf_hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper};
use alf_nn::activation::ActivationKind;
use alf_nn::{softmax_cross_entropy, Conv2d, Layer, RunCtx};
use alf_tensor::init::Init;
use alf_tensor::ops::{conv2d, matmul, matmul_sparse_lhs, reference, Conv2dSpec};
use alf_tensor::rng::Rng;
use alf_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::new(0);
    for size in [128usize, 256] {
        let a = Tensor::randn(&[size, size], Init::He, &mut rng);
        let b = Tensor::randn(&[size, size], Init::He, &mut rng);
        // Blocked production kernel vs the preserved seed loops.
        c.bench_function(&format!("matmul_blocked_{size}"), |bench| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
        });
        c.bench_function(&format!("matmul_reference_{size}"), |bench| {
            bench.iter(|| reference::matmul(black_box(&a), black_box(&b)).unwrap())
        });
    }
}

fn bench_sparse_lhs(c: &mut Criterion) {
    // The masked-Wcode case the matmul_sparse_lhs split exists for: the
    // code conv's weight matrix with half its output-channel rows pruned
    // to zero. Dense pays full flops; the sparse path compacts live rows.
    // Compare against the same matrix through the dense kernel to see what
    // the split buys (and run a dense *unmasked* control to confirm the
    // dense kernel itself no longer branches on zeros).
    let mut rng = Rng::new(5);
    let (m, k, n) = (64, 288, 1024);
    let mut a = Tensor::randn(&[m, k], Init::He, &mut rng);
    for i in (0..m).step_by(2) {
        for v in a.data_mut()[i * k..(i + 1) * k].iter_mut() {
            *v = 0.0;
        }
    }
    let b = Tensor::randn(&[k, n], Init::He, &mut rng);
    c.bench_function("wcode_masked_dense_64x288x1024", |bench| {
        bench.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
    });
    c.bench_function("wcode_masked_sparse_64x288x1024", |bench| {
        bench.iter(|| matmul_sparse_lhs(black_box(&a), black_box(&b)).unwrap())
    });
    c.bench_function("wcode_masked_seed_zeroskip_64x288x1024", |bench| {
        bench.iter(|| reference::matmul(black_box(&a), black_box(&b)).unwrap())
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let x = Tensor::randn(&[4, 16, 32, 32], Init::He, &mut rng);
    let w = Tensor::randn(&[16, 16, 3, 3], Init::He, &mut rng);
    let spec = Conv2dSpec::new(3, 1, 1);
    c.bench_function("conv2d_16x32x32_b4", |bench| {
        bench.iter(|| conv2d(black_box(&x), black_box(&w), None, spec).unwrap())
    });
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let x = Tensor::randn(&[4, 16, 16, 16], Init::He, &mut rng);
    let conv = Conv2d::new(16, 16, 3, 1, 1, false, Init::He, &mut rng);
    c.bench_function("conv2d_backward_16x16x16_b4", |bench| {
        // One ctx outside the timed closure: the shared arena stays warm so
        // the loop measures the steady-state (zero-allocation) path.
        let mut ctx = RunCtx::train();
        bench.iter_batched(
            || conv.clone(),
            |mut conv| {
                let y = conv.forward(black_box(&x), &mut ctx).unwrap();
                conv.backward(&y, &mut ctx).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_alf_block_forward(c: &mut Criterion) {
    let mut rng = Rng::new(3);
    let block = AlfBlock::new(16, 16, 3, 1, 1, AlfBlockConfig::paper_default(), &mut rng);
    let plain = Conv2d::new(16, 16, 3, 1, 1, false, Init::He, &mut rng);
    let x = Tensor::randn(&[4, 16, 16, 16], Init::He, &mut rng);
    // The ALF-block overhead vs a standard convolution (code refresh +
    // expansion conv).
    c.bench_function("alf_block_forward_16x16x16_b4", |bench| {
        let mut ctx = RunCtx::train();
        bench.iter_batched(
            || block.clone(),
            |mut b| b.forward(black_box(&x), &mut ctx).unwrap(),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("standard_conv_forward_16x16x16_b4", |bench| {
        let mut ctx = RunCtx::train();
        bench.iter_batched(
            || plain.clone(),
            |mut conv| conv.forward(black_box(&x), &mut ctx).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_autoencoder_step(c: &mut Criterion) {
    let mut rng = Rng::new(4);
    let ae = WeightAutoencoder::new(
        16,
        32,
        3,
        Init::Xavier,
        ActivationKind::Tanh,
        1e-4,
        &mut rng,
    );
    let w = Tensor::randn(&[32, 16, 3, 3], Init::He, &mut rng);
    c.bench_function("autoencoder_step_32f", |bench| {
        bench.iter_batched(
            || ae.clone(),
            |mut ae| ae.step(black_box(&w), 1e-3, 0.5).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_training_step(c: &mut Criterion) {
    // Whole-model task-player step (forward + CE loss + backward) through
    // the shared RunCtx, profiler off vs on. The off/on delta is the
    // profiler's overhead budget: the acceptance bar is <2% per step.
    let mut rng = Rng::new(6);
    let mut model = plain20_alf(10, 8, AlfBlockConfig::paper_default(), 5).unwrap();
    let x = Tensor::randn(&[8, 3, 32, 32], Init::He, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let mut ctx = RunCtx::train();
    let step = |model: &mut alf_core::CnnModel, ctx: &mut RunCtx| {
        let logits = model.forward(black_box(&x), ctx).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        model.backward(&grad, ctx).unwrap()
    };
    // Warm the arena so both variants measure steady state.
    step(&mut model, &mut ctx);
    c.bench_function("train_step_plain20_w8_b8_profile_off", |bench| {
        bench.iter(|| step(&mut model, &mut ctx))
    });
    ctx.enable_profiler();
    c.bench_function("train_step_plain20_w8_b8_profile_on", |bench| {
        bench.iter(|| step(&mut model, &mut ctx))
    });
}

fn bench_evaluator(c: &mut Criterion) {
    // Test-set evaluation: persistent Evaluator replicas vs the
    // clone-per-call compat wrapper. The reuse path only re-copies weights
    // into existing thread slots, so per-call allocation drops from
    // "whole model × threads" to a flat state copy in steady state.
    let mut rng = Rng::new(7);
    let n = 64;
    let images = Tensor::randn(&[n * 3 * 32 * 32], Init::Rand, &mut rng)
        .data()
        .to_vec();
    let labels: Vec<usize> = (0..n).map(|i| i % 10).collect();
    let data = Dataset::from_parts(vec![], vec![], images, labels, 3, 32, 32, 10).unwrap();
    let model = plain20_alf(10, 8, AlfBlockConfig::paper_default(), 5).unwrap();
    c.bench_function("evaluate_reuse_slots_plain20_w8_n64", |bench| {
        let mut ev = Evaluator::new();
        ev.evaluate(&model, &data, Split::Test, 32).unwrap();
        bench.iter(|| ev.evaluate(&model, &data, Split::Test, 32).unwrap())
    });
    c.bench_function("evaluate_clone_per_call_plain20_w8_n64", |bench| {
        bench.iter(|| evaluate(&model, &data, Split::Test, 32).unwrap())
    });
}

fn bench_mapper_search(c: &mut Criterion) {
    let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);
    let layers = geometry::plain20_layers(32, 3);
    let deep = ConvWorkload::from_shape(&layers[14], 16); // a 64-channel layer
    c.bench_function("mapper_search_conv64", |bench| {
        bench.iter(|| mapper.search(black_box(&deep)).unwrap())
    });
}

fn bench_deploy(c: &mut Criterion) {
    let mut model = plain20_alf(10, 8, AlfBlockConfig::paper_default(), 5).unwrap();
    // Prune a little so stripping has work to do.
    for block in model.alf_blocks_mut() {
        for _ in 0..50 {
            block
                .autoencoder_step(5e-3, &PruneSchedule::paper_default())
                .unwrap();
        }
    }
    c.bench_function("deploy_compress_plain20_w8", |bench| {
        bench.iter(|| {
            deploy::Pipeline::new()
                .run(black_box(&model))
                .unwrap()
                .model
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul,
    bench_sparse_lhs,
    bench_conv2d,
    bench_conv_backward,
    bench_alf_block_forward,
    bench_autoencoder_step,
    bench_training_step,
    bench_evaluator,
    bench_mapper_search,
    bench_deploy
);
criterion_main!(benches);
