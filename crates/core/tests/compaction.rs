//! End-to-end properties of mid-training compaction.
//!
//! Two guarantees the sparsity-aware path makes and this file enforces:
//!
//! 1. **Scheduling compaction is trajectory-invisible until it fires.**
//!    A trainer running the sparse execution path with compaction armed
//!    must replay the *exact* per-step loss sequence of a fully dense
//!    trainer (sparse execution off, no compaction) for every step
//!    before the first `train.compact` event — f32-exact, compared
//!    through the shortest-roundtrip decimal the telemetry JSONL emits,
//!    which is injective on f32 bit patterns (modulo ±0).
//!
//! 2. **Checkpoint v2 round-trips a compacted model.** Saving a model
//!    whose blocks have been physically compacted and loading the blob
//!    into an identically-compacted clone restores every state tensor
//!    bitwise. Loading the same blob into an *uncompacted* model must be
//!    rejected by shape validation — block geometry (`c_code`, `kept`)
//!    is structural, not serialized, so the load target must already
//!    have the compacted geometry.

use alf_core::block::AlfBlockConfig;
use alf_core::models::plain20_alf;
use alf_core::{checkpoint, AlfHyper, AlfTrainer, PruneSchedule};
use alf_data::{Dataset, SynthVision};
use alf_nn::layer::Layer;
use alf_obs::MemorySink;
use proptest::prelude::*;

fn small_data(seed: u64) -> Dataset {
    SynthVision::cifar_like(seed)
        .with_image_size(12)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(36)
        .with_test_size(12)
        .with_noise(0.05)
        .build()
        .unwrap()
}

fn quick_hyper() -> AlfHyper {
    AlfHyper {
        task_lr: 0.05,
        batch_size: 6,
        lr_schedule: alf_nn::LrSchedule::Constant,
        ..AlfHyper::default()
    }
}

/// A wide clip band: channels forced to 0.05 stay clipped across the
/// handful of autoencoder steps a short run takes (the mask moves by
/// O(lr) per step), while the untouched channels start at 1.0 and
/// cannot drift below the threshold either.
fn wide_band_config() -> AlfBlockConfig {
    AlfBlockConfig {
        threshold: 0.5,
        ..AlfBlockConfig::paper_default()
    }
}

/// Extracts the raw text of a scalar or flat-array JSON field from one
/// JSONL record. Comparing these strings compares the underlying f32s
/// exactly: Rust's float formatting is shortest-roundtrip, so distinct
/// bit patterns (other than ±0) never collapse to the same text.
fn json_field(line: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no field {key} in {line}"))
        + pat.len();
    let rest = &line[start..];
    let end = if rest.starts_with('[') {
        rest.find(']').map(|i| i + 1)
    } else {
        rest.find([',', '}'])
    }
    .unwrap_or_else(|| panic!("unterminated field {key} in {line}"));
    rest[..end].to_string()
}

/// `(task_loss, mask_occupancy)` of every `train.step` record strictly
/// before the first `train.compact` record (all of them when no
/// compaction fired).
fn steps_before_first_compact(lines: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in lines {
        if line.contains("\"event\":\"train.compact\"") {
            break;
        }
        if line.contains("\"event\":\"train.step\"") {
            out.push((
                json_field(line, "task_loss"),
                json_field(line, "mask_occupancy"),
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Sparse trainer with compaction armed vs. dense trainer without:
    /// identical loss sequence for every step before the compaction
    /// fires, and the compaction really does fire and shrink geometry.
    #[test]
    fn compacting_trajectory_matches_dense_until_first_compaction(
        data_seed in 0u64..1000,
        model_seed in 0u64..1000,
    ) {
        let data = small_data(data_seed);
        let model = plain20_alf(4, 4, wide_band_config(), model_seed).unwrap();

        let mut dense_model = model.clone();
        dense_model.set_sparse_execution(false);

        let mut sparse = AlfTrainer::new(model, quick_hyper(), data_seed).unwrap();
        let mut dense = AlfTrainer::new(dense_model, quick_hyper(), data_seed).unwrap();
        let (sink_s, lines_s) = MemorySink::bounded(4096);
        let (sink_d, lines_d) = MemorySink::bounded(4096);
        sparse.set_telemetry_sink(Box::new(sink_s));
        dense.set_telemetry_sink(Box::new(sink_d));

        // Epoch 1: all masks at ~1.0, nothing clipped anywhere.
        sparse.run_epoch(&data).unwrap();
        dense.run_epoch(&data).unwrap();

        // Force two channels of the first block into the clip band in
        // BOTH trainers, identically.
        for t in [&mut sparse, &mut dense] {
            let block = &mut t.model_mut().alf_blocks_mut()[0];
            block.autoencoder_mut().set_mask_value(1, 0.05);
            block.autoencoder_mut().set_mask_value(3, 0.05);
        }

        // Epoch 2: sparse path now elides the clipped rows while the
        // dense reference multiplies through their exact zeros. No
        // compaction yet — trajectories must stay f32-identical.
        sparse.run_epoch(&data).unwrap();
        dense.run_epoch(&data).unwrap();

        // Epoch 3: arm compaction on the sparse trainer only. Block 0
        // sits at 2/4 live < 0.95, so the first batch compacts it.
        sparse.set_compact_below(Some(0.95));
        sparse.run_epoch(&data).unwrap();
        dense.run_epoch(&data).unwrap();

        let lines_s = lines_s.lines();
        let lines_d = lines_d.lines();
        prop_assert!(
            lines_s.iter().any(|l| l.contains("\"event\":\"train.compact\"")),
            "compaction never fired on the sparse trainer"
        );
        prop_assert!(
            !lines_d.iter().any(|l| l.contains("\"event\":\"train.compact\"")),
            "dense trainer must never compact"
        );

        let prefix_s = steps_before_first_compact(&lines_s);
        // 6 steps/epoch, compaction at the first batch of epoch 3.
        prop_assert_eq!(prefix_s.len(), 12, "compaction fired at the wrong step");
        let prefix_d = steps_before_first_compact(&lines_d);
        prop_assert_eq!(&prefix_s[..], &prefix_d[..prefix_s.len()]);

        // Geometry really shrank: block 0 now runs 2 physical code
        // channels against its original budget of 4, and occupancy
        // accounting stays continuous across the compaction.
        let blocks = sparse.model().alf_blocks();
        prop_assert_eq!(blocks[0].code_channels(), 2);
        prop_assert_eq!(blocks[0].total_filters(), 4);
        prop_assert_eq!(blocks[0].active_filters(), 2);
    }

    /// Checkpoint v2 of a compacted model: bitwise restore into an
    /// identically-compacted clone; rejection for an uncompacted target.
    #[test]
    fn checkpoint_v2_roundtrips_a_compacted_model(model_seed in 0u64..1000) {
        let mut model = plain20_alf(4, 4, wide_band_config(), model_seed).unwrap();
        {
            let block = &mut model.alf_blocks_mut()[0];
            block.autoencoder_mut().set_mask_value(0, 0.05);
            block.autoencoder_mut().set_mask_value(2, 0.05);
        }
        let compacted = model.compact_blocks_below(0.95).unwrap();
        prop_assert_eq!(compacted, 1);

        let state = checkpoint::TrainerState {
            momentum: Vec::new(),
            schedule: PruneSchedule::paper_default(),
            epoch: 3,
            step: 2,
            data_seed: model_seed,
        };
        let blob = checkpoint::save_trainer(&model, &state);

        // Clone carries the compacted geometry; scrambling its state
        // tensors proves the load really rewrites them.
        let mut twin = model.clone();
        twin.visit_state(&mut |t| {
            for v in t.data_mut() {
                *v = 0.25 * *v + 1.0;
            }
        });
        let restored = checkpoint::load_trainer(&mut twin, &blob).unwrap();
        prop_assert_eq!(restored, Some(state));

        let mut want: Vec<(Vec<usize>, Vec<u32>)> = Vec::new();
        model.visit_state_ref(&mut |t| {
            want.push((t.dims().to_vec(), t.data().iter().map(|v| v.to_bits()).collect()));
        });
        let mut got: Vec<(Vec<usize>, Vec<u32>)> = Vec::new();
        twin.visit_state_ref(&mut |t| {
            got.push((t.dims().to_vec(), t.data().iter().map(|v| v.to_bits()).collect()));
        });
        prop_assert_eq!(want, got);
        prop_assert_eq!(twin.alf_blocks()[0].code_channels(), 2);

        // Geometry is structural, not serialized: an uncompacted model
        // has differently-shaped state tensors and must be rejected.
        let mut fresh = plain20_alf(4, 4, wide_band_config(), model_seed).unwrap();
        prop_assert!(checkpoint::load(&mut fresh, &blob).is_err());
    }
}
