//! Post-training weight quantization — the orthogonal technique the paper
//! points to ("quantization and binarization are orthogonal to this work
//! and can be applied in conjunction with the proposed ALF method", §II).
//!
//! Symmetric per-tensor linear quantization to a configurable bit-width:
//! `q = clamp(round(x / s), −2^{b−1}+1, 2^{b−1}−1)` with
//! `s = max|x| / (2^{b−1}−1)`. [`fake_quantize_model`] rewrites every
//! persistent tensor of a model with its dequantised value so accuracy
//! under quantization can be measured with the ordinary f32 inference
//! path, while [`QuantReport::footprint_bytes`] accounts the deployed storage win.

use alf_nn::layer::Layer;
use alf_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::model::CnnModel;

/// Typed quantization failure, carrying bit-width / tensor context. The
/// facade crate surfaces this as `alf::Error::Quant`.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// Bit-width outside the supported `[2, 16]` range.
    BadBits {
        /// The rejected bit-width.
        bits: u8,
    },
    /// A tensor held a NaN or infinity — fitting a scale to it would
    /// silently poison every quantized value downstream.
    NonFinite {
        /// Shape of the offending tensor.
        tensor: String,
        /// Flat index of the first non-finite element.
        index: usize,
    },
    /// A calibration pass produced no usable activation statistics.
    EmptyCalibration {
        /// The layer whose activation range came up empty.
        layer: String,
    },
    /// A model form the int8 engine does not support.
    Unsupported {
        /// What was encountered and why it cannot be quantized.
        what: String,
    },
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::BadBits { bits } => write!(f, "bit-width {bits} outside [2, 16]"),
            QuantError::NonFinite { tensor, index } => {
                write!(
                    f,
                    "non-finite value at flat index {index} of tensor {tensor}"
                )
            }
            QuantError::EmptyCalibration { layer } => {
                write!(
                    f,
                    "calibration produced no activation range for layer '{layer}'"
                )
            }
            QuantError::Unsupported { what } => write!(f, "unsupported for int8: {what}"),
        }
    }
}

impl std::error::Error for QuantError {}

/// A symmetric linear quantizer for one tensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    /// Bit-width `b ∈ [2, 16]`.
    pub bits: u8,
    /// Scale `s` (the value of one quantization step).
    pub scale: f32,
}

impl Quantizer {
    /// Fits a quantizer to a tensor's range.
    ///
    /// # Errors
    ///
    /// [`QuantError::BadBits`] when `bits` is outside `[2, 16]`;
    /// [`QuantError::NonFinite`] when the tensor holds a NaN or infinity
    /// (a NaN would otherwise propagate through the `max_abs` scan and
    /// poison the scale silently).
    pub fn fit(t: &Tensor, bits: u8) -> Result<Self, QuantError> {
        if !(2..=16).contains(&bits) {
            return Err(QuantError::BadBits { bits });
        }
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        let mut max_abs = 0.0f32;
        for (i, &v) in t.data().iter().enumerate() {
            if !v.is_finite() {
                return Err(QuantError::NonFinite {
                    tensor: t.shape().to_string(),
                    index: i,
                });
            }
            max_abs = max_abs.max(v.abs());
        }
        Ok(Self {
            bits,
            scale: if max_abs == 0.0 { 1.0 } else { max_abs / qmax },
        })
    }

    /// Largest representable integer level.
    pub fn q_max(&self) -> i32 {
        (1 << (self.bits - 1)) - 1
    }

    /// Quantizes one value to its integer level.
    pub fn quantize(&self, x: f32) -> i32 {
        let q = (x / self.scale).round() as i32;
        q.clamp(-self.q_max(), self.q_max())
    }

    /// Reconstructs the real value of an integer level.
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }

    /// Quantize-then-dequantize (the "fake quantization" used for accuracy
    /// evaluation).
    pub fn round_trip(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }
}

/// Summary of quantizing a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantReport {
    /// Bit-width applied.
    pub bits: u8,
    /// Number of tensors rewritten.
    pub tensors: usize,
    /// Total scalar count.
    pub scalars: u64,
    /// Worst per-element absolute rounding error observed.
    pub max_abs_error: f32,
}

impl QuantReport {
    /// Deployed weight storage at this bit-width, in bytes (scales stored
    /// as one f32 per tensor).
    pub fn footprint_bytes(&self) -> u64 {
        (self.scalars * self.bits as u64).div_ceil(8) + 4 * self.tensors as u64
    }

    /// Storage at the accelerator's native 16-bit width, for comparison.
    pub fn baseline_footprint_bytes(&self) -> u64 {
        self.scalars * 2
    }
}

/// Rewrites the model's *weight* tensors (rank ≥ 2 trainable parameters —
/// convolution and linear weights) with their quantize-dequantize image at
/// the given bit-width. Rank-1 parameters (biases, batch-norm affine) and
/// the BN running statistics stay in full precision, the standard
/// deployment practice: they are tiny, and quantizing running variances in
/// particular is numerically destructive.
///
/// # Errors
///
/// [`QuantError::BadBits`] when `bits` is outside `[2, 16]` (checked
/// before any tensor is touched); [`QuantError::NonFinite`] when a weight
/// tensor holds a NaN or infinity — tensors visited before the offender
/// have already been rewritten in that case.
///
/// # Example
///
/// ```
/// use alf_core::models::plain20;
/// use alf_core::quant;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut model = plain20(10, 4)?;
/// let report = quant::fake_quantize_model(&mut model, 8)?;
/// assert!(report.footprint_bytes() < report.baseline_footprint_bytes());
/// # Ok(())
/// # }
/// ```
pub fn fake_quantize_model(model: &mut CnnModel, bits: u8) -> Result<QuantReport, QuantError> {
    if !(2..=16).contains(&bits) {
        return Err(QuantError::BadBits { bits });
    }
    let mut report = QuantReport {
        bits,
        tensors: 0,
        scalars: 0,
        max_abs_error: 0.0,
    };
    let mut failure: Option<QuantError> = None;
    model.visit_params(&mut |p| {
        let t = &mut p.value;
        if t.shape().rank() < 2 || failure.is_some() {
            return;
        }
        let q = match Quantizer::fit(t, bits) {
            Ok(q) => q,
            Err(e) => {
                failure = Some(e);
                return;
            }
        };
        report.tensors += 1;
        report.scalars += t.len() as u64;
        for v in t.data_mut() {
            let rounded = q.round_trip(*v);
            report.max_abs_error = report.max_abs_error.max((rounded - *v).abs());
            *v = rounded;
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::plain20;
    use alf_nn::RunCtx;
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    #[test]
    fn quantizer_round_trip_error_is_bounded_by_half_step() {
        let mut rng = Rng::new(0);
        let t = Tensor::randn(&[512], Init::He, &mut rng);
        let q = Quantizer::fit(&t, 8).unwrap();
        for &v in t.data() {
            let err = (q.round_trip(v) - v).abs();
            assert!(
                err <= q.scale / 2.0 + 1e-7,
                "err {err} > step/2 {}",
                q.scale / 2.0
            );
        }
    }

    #[test]
    fn extremes_are_representable() {
        let t = Tensor::from_vec(vec![-3.0, 0.0, 3.0], &[3]).unwrap();
        let q = Quantizer::fit(&t, 8).unwrap();
        assert!((q.round_trip(3.0) - 3.0).abs() < 1e-6);
        assert!((q.round_trip(-3.0) + 3.0).abs() < 1e-6);
        assert_eq!(q.round_trip(0.0), 0.0);
    }

    #[test]
    fn zero_tensor_quantizes_safely() {
        let t = Tensor::zeros(&[4]);
        let q = Quantizer::fit(&t, 8).unwrap();
        assert_eq!(q.round_trip(0.0), 0.0);
    }

    #[test]
    fn more_bits_less_error() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn(&[1024], Init::He, &mut rng);
        let err = |bits| {
            let q = Quantizer::fit(&t, bits).unwrap();
            t.data()
                .iter()
                .map(|&v| (q.round_trip(v) - v).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err(4) > err(8));
        assert!(err(8) > err(12));
    }

    #[test]
    fn rejects_bad_bit_widths() {
        let t = Tensor::ones(&[1]);
        assert_eq!(Quantizer::fit(&t, 1), Err(QuantError::BadBits { bits: 1 }));
        assert_eq!(
            Quantizer::fit(&t, 17),
            Err(QuantError::BadBits { bits: 17 })
        );
        let mut model = plain20(4, 4).unwrap();
        assert_eq!(
            fake_quantize_model(&mut model, 1),
            Err(QuantError::BadBits { bits: 1 })
        );
    }

    #[test]
    fn non_finite_values_are_a_typed_error_not_a_poisoned_scale() {
        // A NaN used to slide through the max_abs fold (f32::max keeps the
        // accumulator's NaN) and emerge as a silently-NaN scale.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let t = Tensor::from_vec(vec![1.0, bad, 2.0], &[3]).unwrap();
            match Quantizer::fit(&t, 8) {
                Err(QuantError::NonFinite { index, .. }) => assert_eq!(index, 1),
                other => panic!("expected NonFinite, got {other:?}"),
            }
        }
        let mut model = plain20(4, 4).unwrap();
        model.visit_params(&mut |p| {
            if p.value.shape().rank() >= 2 {
                p.value.data_mut()[0] = f32::NAN;
            }
        });
        assert!(matches!(
            fake_quantize_model(&mut model, 8),
            Err(QuantError::NonFinite { .. })
        ));
    }

    #[test]
    fn int8_model_output_stays_close_to_f32() {
        let mut model = plain20(4, 4).unwrap();
        let x = Tensor::randn(&[2, 3, 12, 12], Init::Rand, &mut Rng::new(2));
        let y_f32 = model.forward(&x, &mut RunCtx::eval()).unwrap();
        let report = fake_quantize_model(&mut model, 8).unwrap();
        let y_q = model.forward(&x, &mut RunCtx::eval()).unwrap();
        assert!(report.max_abs_error > 0.0);
        // Logit perturbation should be small relative to the logit scale.
        let diff = y_q.sub(&y_f32).unwrap().norm() / y_f32.norm().max(1e-6);
        assert!(diff < 0.2, "relative logit drift {diff}");
    }

    #[test]
    fn footprint_accounting() {
        let mut model = plain20(4, 4).unwrap();
        let report = fake_quantize_model(&mut model, 8).unwrap();
        // 8-bit weights halve the 16-bit footprint (plus tiny scale
        // overhead).
        assert!(report.footprint_bytes() < report.baseline_footprint_bytes());
        assert!(report.footprint_bytes() as f64 > 0.45 * report.baseline_footprint_bytes() as f64);
        // 4-bit quarters it.
        let mut model = plain20(4, 4).unwrap();
        let r4 = fake_quantize_model(&mut model, 4).unwrap();
        assert!(r4.footprint_bytes() < report.footprint_bytes());
    }
}
