//! The two-player training scheme (paper §III-B).
//!
//! Each optimisation step plays one round of the two-player game:
//!
//! 1. **Task player** — forward the CNN (ALF blocks convolve with the
//!    current code `Wcode`), compute `Ltask = LCE + νwd·Lreg`, backprop,
//!    and update `W` (via the STE), `Wexp`, BN and classifier parameters
//!    with SGD + momentum. Weight decay implements `νwd·Lreg` and is
//!    *skipped* for `W` (the paper regularises neither `W` nor `Wcode`).
//! 2. **Autoencoder player** — every ALF block runs one dedicated SGD step
//!    on `Lae = Lrec + νprune·Lprune`, updating `Wenc`, `Wdec` and `M`.

use alf_data::{Dataset, Split};
use alf_nn::layer::Layer;
use alf_nn::loss::{correct_count, softmax_cross_entropy};
use alf_nn::optim::{LrSchedule, Sgd};
use alf_nn::{ProfileReport, RunCtx};
use alf_obs::events::{EventLog, TelemetrySink};
use alf_tensor::rng::Rng;
use alf_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::autoencoder::AeStats;
use crate::model::CnnModel;
use crate::schedule::PruneSchedule;
use crate::Result;

/// Hyper-parameters of the two-player game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlfHyper {
    /// Task-player learning rate.
    pub task_lr: f32,
    /// Task-player momentum.
    pub momentum: f32,
    /// Weight-decay factor `νwd` (L2, applied to decaying params only).
    pub weight_decay: f32,
    /// Task learning-rate schedule.
    pub lr_schedule: LrSchedule,
    /// Autoencoder-player learning rate `lrae` (paper trade-off: `1e-3`).
    pub ae_lr: f32,
    /// Pruning-pressure schedule (paper: `m = 8`, `prmax = 0.85`).
    pub prune_schedule: PruneSchedule,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Autoencoder optimisation steps per task step. The paper uses 1 (one
    /// round of the two-player game per batch); shortened smoke schedules
    /// use more to give the autoencoder player the same number of moves it
    /// would get over a full-length training run.
    pub ae_steps_per_batch: usize,
    /// Optional training-time augmentation applied to each batch.
    pub augment: Option<alf_data::Augment>,
}

impl Default for AlfHyper {
    fn default() -> Self {
        Self {
            task_lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_schedule: LrSchedule::Step {
                every: 40,
                gamma: 0.1,
            },
            ae_lr: 1e-3,
            prune_schedule: PruneSchedule::paper_default(),
            batch_size: 32,
            ae_steps_per_batch: 1,
            augment: None,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean task loss over the epoch.
    pub train_loss: f32,
    /// Training accuracy over the epoch (running, on training batches).
    pub train_accuracy: f32,
    /// Held-out accuracy after the epoch.
    pub test_accuracy: f32,
    /// Fraction of code filters still active (1.0 when no ALF blocks).
    pub remaining_filters: f32,
    /// Mean autoencoder reconstruction loss over the epoch (0 when no ALF
    /// blocks).
    pub mean_l_rec: f32,
}

/// Full training trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Name of the trained model.
    pub model_name: String,
    /// Per-epoch statistics, in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Test accuracy after the last epoch (0.0 for an empty report).
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.test_accuracy)
    }

    /// Remaining-filter fraction after the last epoch.
    pub fn final_remaining_filters(&self) -> f32 {
        self.epochs.last().map_or(1.0, |e| e.remaining_filters)
    }

    /// Best test accuracy across epochs.
    pub fn best_accuracy(&self) -> f32 {
        self.epochs
            .iter()
            .map(|e| e.test_accuracy)
            .fold(0.0, f32::max)
    }

    /// Renders the trace as CSV
    /// (`epoch,train_loss,train_accuracy,test_accuracy,remaining_filters,
    /// mean_l_rec`) for external plotting of Fig. 2c-style curves.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "epoch,train_loss,train_accuracy,test_accuracy,remaining_filters,mean_l_rec\n",
        );
        for e in &self.epochs {
            out.push_str(&format!(
                "{},{:.6},{:.4},{:.4},{:.4},{:.6}\n",
                e.epoch,
                e.train_loss,
                e.train_accuracy,
                e.test_accuracy,
                e.remaining_filters,
                e.mean_l_rec
            ));
        }
        out
    }
}

/// Drives the two-player training of a [`CnnModel`].
///
/// Works for vanilla models too: with no ALF blocks the autoencoder player
/// is a no-op and the loop degenerates to ordinary SGD training.
///
/// # Example
///
/// ```no_run
/// use alf_core::models::plain20_alf;
/// use alf_core::{AlfBlockConfig, AlfHyper, AlfTrainer};
/// use alf_data::SynthVision;
///
/// # fn main() -> alf_core::Result<()> {
/// let data = SynthVision::cifar_like(0).with_train_size(256).build()?;
/// let model = plain20_alf(10, 8, AlfBlockConfig::paper_default(), 7)?;
/// let mut trainer = AlfTrainer::new(model, AlfHyper::default(), 7)?;
/// let report = trainer.run(&data, 3)?;
/// println!("acc {:.2}, filters {:.0}%",
///          report.final_accuracy(),
///          100.0 * report.final_remaining_filters());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AlfTrainer {
    model: CnnModel,
    hyper: AlfHyper,
    task_opt: Sgd,
    rng: Rng,
    epoch: usize,
    // One execution context for the whole run: the arena reaches its
    // steady state during the first batch and every later step reuses it.
    ctx: RunCtx,
    eval: Evaluator,
    // Per-step JSONL telemetry; disabled (one branch per step) by default.
    telemetry: EventLog,
    // Reused per-step buffer for the autoencoder players' stats, filled
    // only while telemetry is enabled.
    ae_stats_buf: Vec<AeStats>,
    // Occupancy threshold below which blocks physically compact after the
    // autoencoder step (None = never; see `set_compact_below`).
    compact_below: Option<f32>,
}

impl AlfTrainer {
    /// Creates a trainer over a model.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid hyper-parameters; kept fallible for
    /// forward compatibility with validated configs.
    pub fn new(model: CnnModel, hyper: AlfHyper, seed: u64) -> Result<Self> {
        let task_opt = Sgd::new(hyper.task_lr, hyper.momentum, hyper.weight_decay);
        Ok(Self {
            model,
            hyper,
            task_opt,
            rng: Rng::new(seed ^ 0xa1f0_0000),
            epoch: 0,
            ctx: RunCtx::train(),
            eval: Evaluator::new(),
            telemetry: EventLog::disabled(),
            ae_stats_buf: Vec::new(),
            compact_below: None,
        })
    }

    /// Pins the trainer's internal per-epoch evaluator to `threads`
    /// workers (clamped to at least 1), overriding `ALF_EVAL_THREADS` and
    /// the host default. Campaign schedulers use this to keep a job's
    /// total worker fan-out inside its thread lease when several trainings
    /// run concurrently; a thread count never changes results (all
    /// threaded paths are bitwise deterministic).
    pub fn set_eval_threads(&mut self, threads: usize) {
        self.eval = Evaluator::with_threads(threads);
    }

    /// Enables (or disables, with `None`) mid-training physical compaction:
    /// after each autoencoder step, any ALF block whose live occupancy
    /// fell strictly below `occupancy` is shrunk in place
    /// ([`AlfBlock::compact_if_below`](crate::AlfBlock::compact_if_below)),
    /// so downstream GEMMs lose the dead dimensions for real. Momentum is
    /// realigned automatically: slots whose parameter shapes changed
    /// restart, all others keep their velocity. Off by default — it is a
    /// performance feature, deliberately *not* an [`AlfHyper`] field, since
    /// it never changes which channels are live.
    pub fn set_compact_below(&mut self, occupancy: Option<f32>) {
        self.compact_below = occupancy;
    }

    /// Streams per-step and per-epoch telemetry (`train.step` /
    /// `train.epoch` JSONL events) into `sink`. Telemetry is read-only —
    /// it observes losses and mask statistics the step already computed —
    /// so enabling it never changes trained weights.
    pub fn set_telemetry_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.telemetry = EventLog::new(sink);
    }

    /// Disables telemetry (the default), restoring the one-branch-per-step
    /// off path.
    pub fn clear_telemetry(&mut self) {
        self.telemetry = EventLog::disabled();
    }

    /// The trainer's event log (e.g. to flush the sink mid-run).
    pub fn telemetry_mut(&mut self) -> &mut EventLog {
        &mut self.telemetry
    }

    /// Turns per-layer profiling on or off. While on, every training step
    /// records per-layer wall time, FLOPs and bytes into the trainer's
    /// [`RunCtx`]; read the result with [`AlfTrainer::profile_report`].
    pub fn set_profile(&mut self, on: bool) {
        if on {
            self.ctx.enable_profiler();
        } else {
            self.ctx.take_profiler();
        }
    }

    /// Whether per-layer profiling is currently enabled.
    pub fn profiling(&self) -> bool {
        self.ctx.profiling()
    }

    /// Snapshot of the per-layer profile accumulated so far (`None` unless
    /// [`AlfTrainer::set_profile`] was switched on).
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.ctx.report()
    }

    /// The trainer's execution context (arena + profiler). Exposed so
    /// tests can freeze the arena and benches can inspect its high-water
    /// mark.
    pub fn ctx_mut(&mut self) -> &mut RunCtx {
        &mut self.ctx
    }

    /// The model being trained.
    pub fn model(&self) -> &CnnModel {
        &self.model
    }

    /// Mutable access to the model (e.g. for deployment after training).
    pub fn model_mut(&mut self) -> &mut CnnModel {
        &mut self.model
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> CnnModel {
        self.model
    }

    /// Runs `epochs` additional epochs, returning the statistics for the
    /// epochs run in *this* call.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the model or data pipeline.
    pub fn run(&mut self, data: &Dataset, epochs: usize) -> Result<TrainReport> {
        let mut report = TrainReport {
            model_name: self.model.name().to_string(),
            epochs: Vec::with_capacity(epochs),
        };
        for _ in 0..epochs {
            report.epochs.push(self.run_epoch(data)?);
        }
        Ok(report)
    }

    /// Runs a single epoch (all training batches + one evaluation).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the model or data pipeline.
    pub fn run_epoch(&mut self, data: &Dataset) -> Result<EpochStats> {
        let lr = self.hyper.lr_schedule.lr_at(self.hyper.task_lr, self.epoch);
        self.task_opt.set_lr(lr);
        let mut loss_sum = 0.0;
        let mut correct = 0usize;
        let mut seen = 0usize;
        let mut l_rec_sum = 0.0;
        let mut batches = 0usize;
        let mut shuffle_rng = self.rng.split();
        // Only consume an RNG split when augmentation is on, so enabling it
        // is the sole thing that changes the training trajectory.
        let mut augment_rng = self.hyper.augment.map(|_| self.rng.split());
        for batch in data.batches(Split::Train, self.hyper.batch_size, Some(&mut shuffle_rng)) {
            let (mut images, labels) = batch?;
            if let (Some(policy), Some(rng)) = (&self.hyper.augment, augment_rng.as_mut()) {
                policy.apply(&mut images, rng)?;
            }
            // --- task player ---
            self.model.zero_grads();
            let logits = self.model.forward(&images, &mut self.ctx)?;
            let (loss, grad) = softmax_cross_entropy(&logits, &labels)?;
            correct += correct_count(&logits, &labels)?;
            seen += labels.len();
            self.model.backward(&grad, &mut self.ctx)?;
            self.task_opt.step_layer(&mut self.model);
            // --- autoencoder player ---
            let ae_lr = self.hyper.ae_lr;
            let schedule = self.hyper.prune_schedule;
            let mut block_l_rec = 0.0;
            let ae_steps = self.hyper.ae_steps_per_batch.max(1);
            // Stats are collected (read-only) only while telemetry is on;
            // the arithmetic of the step itself is identical either way.
            let collect = self.telemetry.is_enabled();
            let ae_stats = &mut self.ae_stats_buf;
            ae_stats.clear();
            let ctx = &mut self.ctx;
            let blocks = self.model.alf_blocks_mut();
            let n_blocks = blocks.len();
            for block in blocks {
                let mut last = None;
                for _ in 0..ae_steps {
                    last = Some(block.autoencoder_step_in(ae_lr, &schedule, ctx)?);
                }
                let last = last.expect("ae_steps >= 1");
                block_l_rec += last.l_rec;
                if collect {
                    ae_stats.push(last);
                }
            }
            if n_blocks > 0 {
                l_rec_sum += block_l_rec / n_blocks as f32;
            }
            // --- physical compaction (optional) ---
            if let Some(occ) = self.compact_below {
                let compacted = self.model.compact_blocks_below(occ)?;
                if compacted > 0 {
                    // Expansion / inter-BN parameter shapes changed:
                    // momentum restarts for exactly those slots.
                    let reset = self.task_opt.realign(&mut self.model);
                    if let Some(mut ev) = self.telemetry.event("train.compact") {
                        ev.field_u64("epoch", self.epoch as u64);
                        ev.field_u64("step", batches as u64);
                        ev.field_u64("blocks_compacted", compacted as u64);
                        ev.field_u64("momentum_slots_reset", reset as u64);
                        ev.field_f32("remaining_filters", self.model.remaining_filter_fraction());
                    }
                }
            }
            if let Some(mut ev) = self.telemetry.event("train.step") {
                ev.field_u64("epoch", self.epoch as u64);
                ev.field_u64("step", batches as u64);
                ev.field_f32("task_loss", loss);
                ev.field_f32("lr", lr);
                ev.field_f32s("l_rec", self.ae_stats_buf.iter().map(|s| s.l_rec));
                ev.field_f32s("l_prune", self.ae_stats_buf.iter().map(|s| s.l_prune));
                ev.field_f32s("nu_prune", self.ae_stats_buf.iter().map(|s| s.nu_prune));
                ev.field_f32s(
                    "mask_occupancy",
                    self.ae_stats_buf.iter().map(|s| 1.0 - s.zero_fraction),
                );
            }
            loss_sum += loss;
            batches += 1;
        }
        let test_accuracy =
            self.eval
                .evaluate(&self.model, data, Split::Test, self.hyper.batch_size)?;
        let stats = EpochStats {
            epoch: self.epoch,
            train_loss: loss_sum / batches.max(1) as f32,
            train_accuracy: correct as f32 / seen.max(1) as f32,
            test_accuracy,
            remaining_filters: self.model.remaining_filter_fraction(),
            mean_l_rec: l_rec_sum / batches.max(1) as f32,
        };
        if let Some(mut ev) = self.telemetry.event("train.epoch") {
            ev.field_u64("epoch", stats.epoch as u64);
            ev.field_f32("train_loss", stats.train_loss);
            ev.field_f32("train_accuracy", stats.train_accuracy);
            ev.field_f32("test_accuracy", stats.test_accuracy);
            ev.field_f32("remaining_filters", stats.remaining_filters);
            ev.field_f32("mean_l_rec", stats.mean_l_rec);
        }
        self.telemetry.flush();
        self.epoch += 1;
        Ok(stats)
    }
}

// `resolve_threads` moved to `alf_obs::runtime` so `ALF_GEMM_THREADS`,
// `ALF_EVAL_THREADS` and `ALF_DP_THREADS` all route through one parser;
// re-exported here to keep the old `core::train::resolve_threads` path
// compiling.
pub use alf_obs::runtime::resolve_threads;

/// A flattened copy of a model's state tensors, used to refresh long-lived
/// model replicas in place instead of re-cloning them.
///
/// This is the weight-sync half of the replica pattern shared by
/// [`Evaluator`], `alf-serve`'s worker pool and `alf-dp`'s training
/// workers: capture the source model once per round through the read-only
/// visitor, then copy the flat buffer into each replica. Capture reuses
/// the snapshot's allocation, so the steady-state cost is one memcpy per
/// replica.
#[derive(Debug, Default, Clone)]
pub struct StateSnapshot {
    state: Vec<f32>,
    shapes: Vec<Vec<usize>>,
}

impl StateSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-captures `model`'s state tensors, reusing the buffers.
    pub fn capture(&mut self, model: &CnnModel) {
        self.state.clear();
        self.shapes.clear();
        let (state, shapes) = (&mut self.state, &mut self.shapes);
        model.visit_state_ref(&mut |t: &Tensor| {
            state.extend_from_slice(t.data());
            shapes.push(t.dims().to_vec());
        });
    }

    /// Copies the snapshot into `model` in place. Returns `false` (leaving
    /// the model partially updated) when the snapshot does not match the
    /// model's structure — the caller re-clones in that case.
    pub fn restore(&self, model: &mut CnnModel) -> bool {
        let mut offset = 0usize;
        let mut idx = 0usize;
        let mut ok = true;
        model.visit_state(&mut |t: &mut Tensor| {
            let len = t.len();
            match self.shapes.get(idx) {
                Some(dims) if t.dims() == &dims[..] && offset + len <= self.state.len() => {
                    t.data_mut()
                        .copy_from_slice(&self.state[offset..offset + len]);
                    offset += len;
                }
                _ => ok = false,
            }
            idx += 1;
        });
        ok && idx == self.shapes.len() && offset == self.state.len()
    }
}

/// Parallel evaluator with persistent per-thread model replicas.
///
/// The seed's `evaluate` cloned the full model into every spawned thread on
/// every call — an epoch loop paid `threads × params` heap traffic per
/// evaluation. `Evaluator` clones each replica **once**, then refreshes it
/// before each run by copying the source model's state tensors into the
/// replica in place (re-cloning only if the architecture changed, e.g.
/// after deployment surgery). Each replica keeps its own [`RunCtx`], so
/// the per-thread arenas also stay warm across evaluations.
///
/// The worker count follows [`resolve_threads`]: an explicit
/// [`Evaluator::with_threads`] value, else `ALF_EVAL_THREADS`, else the
/// host's available parallelism. Accuracy never depends on the choice.
#[derive(Debug, Default)]
pub struct Evaluator {
    slots: Vec<(CnnModel, RunCtx)>,
    snapshot: StateSnapshot,
    threads: Option<usize>,
}

impl Evaluator {
    /// Creates an evaluator with no replicas; they are built lazily on the
    /// first [`Evaluator::evaluate`] call.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an evaluator pinned to `threads` workers (clamped to at
    /// least 1), overriding both `ALF_EVAL_THREADS` and the host default.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads.max(1)),
            ..Self::default()
        }
    }

    /// Number of live per-thread replicas (0 before the first evaluation).
    pub fn replicas(&self) -> usize {
        self.slots.len()
    }

    /// Evaluates classification accuracy of `model` on a dataset split,
    /// fanning batches out over `crossbeam` scoped threads.
    ///
    /// The source model is only read (through [`Layer::visit_state_ref`]),
    /// so callers holding a shared borrow — e.g. a serving loop evaluating
    /// the live model — can evaluate without cloning.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the model or data pipeline.
    pub fn evaluate(
        &mut self,
        model: &CnnModel,
        data: &Dataset,
        split: Split,
        batch_size: usize,
    ) -> Result<f32> {
        let n = data.len_of(split);
        if n == 0 {
            return Ok(0.0);
        }
        let threads = resolve_threads(self.threads, "ALF_EVAL_THREADS")
            .min(n.div_ceil(batch_size.max(1)))
            .max(1);
        self.sync_slots(model, threads);
        let chunk = n.div_ceil(threads);
        let results = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, slot) in self.slots.iter_mut().enumerate() {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move |_| -> Result<(usize, usize)> {
                    let (local, ctx) = slot;
                    let mut correct = 0usize;
                    let mut start = lo;
                    while start < hi {
                        let end = (start + batch_size.max(1)).min(hi);
                        let idx: Vec<usize> = (start..end).collect();
                        let (images, labels) = data.gather(split, &idx)?;
                        let logits = local.forward(&images, ctx)?;
                        correct += correct_count(&logits, &labels)?;
                        start = end;
                    }
                    Ok((correct, hi - lo))
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("evaluation thread panicked"))
                .collect::<Result<Vec<_>>>()
        })
        .expect("evaluation scope panicked")?;
        let (correct, total) = results
            .into_iter()
            .fold((0usize, 0usize), |(c, t), (dc, dt)| (c + dc, t + dt));
        Ok(correct as f32 / total.max(1) as f32)
    }

    /// Brings `threads` replicas up to date with `model`: in-place state
    /// copy where shapes line up, full re-clone otherwise.
    fn sync_slots(&mut self, model: &CnnModel, threads: usize) {
        self.snapshot.capture(model);
        self.slots.truncate(threads);
        for (replica, _) in &mut self.slots {
            if !self.snapshot.restore(replica) {
                *replica = model.clone();
            }
        }
        while self.slots.len() < threads {
            self.slots.push((model.clone(), RunCtx::eval()));
        }
    }
}

/// Evaluates classification accuracy of a model on a dataset split.
///
/// Thin compatibility wrapper over [`Evaluator`] for one-shot callers; it
/// pays the per-thread replica clones every call. Loops that evaluate
/// repeatedly should hold an [`Evaluator`] instead.
///
/// # Errors
///
/// Propagates shape errors from the model or data pipeline.
pub fn evaluate(model: &CnnModel, data: &Dataset, split: Split, batch_size: usize) -> Result<f32> {
    Evaluator::new().evaluate(model, data, split, batch_size)
}

/// Trains `model` for `epochs` epochs under a fixed seed and returns the
/// trained model together with its full per-epoch trace.
///
/// This is the shared-baseline reuse hook: every results job that needs
/// "the trained vanilla/ALF reference" goes through this one function with
/// a canonical `(model, hyper, seed)` triple, so a campaign scheduler can
/// train each reference exactly once and hand the `(CnnModel,
/// TrainReport)` pair to all consumers. Training is deterministic for a
/// given triple — two calls produce bitwise-identical weights — which is
/// what makes the artifact cacheable in the first place. `threads` caps
/// the trainer's evaluator fan-out ([`AlfTrainer::set_eval_threads`]);
/// `None` keeps the `ALF_EVAL_THREADS`/host default.
///
/// # Errors
///
/// Propagates shape errors from the model or data pipeline.
pub fn train_seeded(
    model: CnnModel,
    hyper: &AlfHyper,
    seed: u64,
    data: &Dataset,
    epochs: usize,
    threads: Option<usize>,
) -> Result<(CnnModel, TrainReport)> {
    let mut trainer = AlfTrainer::new(model, hyper.clone(), seed)?;
    if let Some(n) = threads {
        trainer.set_eval_threads(n);
    }
    let report = trainer.run(data, epochs)?;
    Ok((trainer.into_model(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::AlfBlockConfig;
    use crate::models::{plain20, plain20_alf};
    use alf_data::SynthVision;

    fn small_data(seed: u64) -> Dataset {
        SynthVision::cifar_like(seed)
            .with_image_size(12)
            .with_max_shift(1)
            .with_num_classes(4)
            .with_train_size(128)
            .with_test_size(64)
            .with_noise(0.05)
            .build()
            .unwrap()
    }

    fn quick_hyper() -> AlfHyper {
        AlfHyper {
            task_lr: 0.05,
            batch_size: 16,
            lr_schedule: alf_nn::LrSchedule::Constant,
            ..AlfHyper::default()
        }
    }

    #[test]
    fn vanilla_training_learns_above_chance() {
        let data = small_data(1);
        let model = plain20(4, 8).unwrap();
        let mut trainer = AlfTrainer::new(model, quick_hyper(), 1).unwrap();
        let report = trainer.run(&data, 10).unwrap();
        assert_eq!(report.epochs.len(), 10);
        // 4 classes ⇒ chance = 25%.
        assert!(
            report.final_accuracy() > 0.4,
            "accuracy {} not above chance",
            report.final_accuracy()
        );
        // Loss should drop.
        assert!(report.epochs.last().unwrap().train_loss < report.epochs[0].train_loss);
    }

    #[test]
    fn alf_training_learns_and_tracks_filters() {
        let data = small_data(2);
        let model = plain20_alf(4, 8, AlfBlockConfig::paper_default(), 3).unwrap();
        let mut trainer = AlfTrainer::new(model, quick_hyper(), 3).unwrap();
        let report = trainer.run(&data, 10).unwrap();
        assert!(
            report.final_accuracy() > 0.35,
            "accuracy {}",
            report.final_accuracy()
        );
        let rf = report.final_remaining_filters();
        assert!((0.0..=1.0).contains(&rf));
        assert!(report.epochs.iter().all(|e| e.mean_l_rec.is_finite()));
    }

    #[test]
    fn prune_pressure_reduces_filters_over_time() {
        let data = small_data(4);
        // A wide clip dead-zone (threshold ≫ lrae·ν/Co) so clipped channels
        // stay clipped, and a large lrae so the mask travels from 1 to 0
        // within the few hundred steps this test can afford.
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 5e-2;
        let model = plain20_alf(4, 4, cfg, 5).unwrap();
        let mut hyper = quick_hyper();
        hyper.ae_lr = 2e-2;
        hyper.batch_size = 8;
        let mut trainer = AlfTrainer::new(model, hyper, 5).unwrap();
        let report = trainer.run(&data, 15).unwrap();
        assert!(
            report.final_remaining_filters() < 1.0,
            "no pruning happened: {:?}",
            report.epochs.last()
        );
    }

    #[test]
    fn evaluate_is_deterministic_and_bounded() {
        let data = small_data(6);
        let model = plain20(4, 4).unwrap();
        let a = evaluate(&model, &data, Split::Test, 8).unwrap();
        let b = evaluate(&model, &data, Split::Test, 8).unwrap();
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
        // Different batch size must not change the result.
        let c = evaluate(&model, &data, Split::Test, 5).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn evaluator_reuses_replicas_and_matches_wrapper() {
        let data = small_data(7);
        let model = plain20(4, 4).unwrap();
        let mut ev = Evaluator::new();
        let a = ev.evaluate(&model, &data, Split::Test, 8).unwrap();
        let replicas = ev.replicas();
        assert!(replicas > 0);
        // Second run refreshes the same replicas in place.
        let b = ev.evaluate(&model, &data, Split::Test, 8).unwrap();
        assert_eq!(a, b);
        assert_eq!(ev.replicas(), replicas);
        // The compat wrapper agrees.
        let c = evaluate(&model, &data, Split::Test, 8).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn evaluator_thread_count_does_not_change_accuracy() {
        let data = small_data(12);
        let model = plain20(4, 4).unwrap();
        let base = evaluate(&model, &data, Split::Test, 8).unwrap();
        for threads in [1usize, 2, 3, 7] {
            let mut ev = Evaluator::with_threads(threads);
            let acc = ev.evaluate(&model, &data, Split::Test, 8).unwrap();
            assert_eq!(acc, base, "accuracy changed at {threads} threads");
            assert!(ev.replicas() <= threads);
        }
    }

    #[test]
    fn resolve_threads_precedence() {
        // Explicit wins regardless of environment; zero clamps to one.
        assert_eq!(resolve_threads(Some(3), "ALF_TEST_THREADS_UNSET"), 3);
        assert_eq!(resolve_threads(Some(0), "ALF_TEST_THREADS_UNSET"), 1);
        // With neither explicit nor env the host default applies (≥ 1).
        assert!(resolve_threads(None, "ALF_TEST_THREADS_UNSET") >= 1);
    }

    #[test]
    fn state_snapshot_round_trips_and_rejects_mismatch() {
        let model = plain20(4, 4).unwrap();
        let mut snap = StateSnapshot::new();
        snap.capture(&model);
        // Restore into a differently-seeded same-architecture model.
        let mut other = plain20(4, 4).unwrap();
        assert!(snap.restore(&mut other));
        let mut a = Vec::new();
        model.visit_state_ref(&mut |t: &Tensor| a.extend_from_slice(t.data()));
        let mut b = Vec::new();
        other.visit_state_ref(&mut |t: &Tensor| b.extend_from_slice(t.data()));
        assert_eq!(a, b);
        // A different architecture is refused.
        let mut wide = plain20(4, 8).unwrap();
        assert!(!snap.restore(&mut wide));
    }

    #[test]
    fn profiling_can_be_toggled_and_reports_layers() {
        let data = small_data(8);
        let model = plain20(4, 4).unwrap();
        let mut trainer = AlfTrainer::new(model, quick_hyper(), 9).unwrap();
        assert!(!trainer.profiling());
        assert!(trainer.profile_report().is_none());
        trainer.set_profile(true);
        trainer.run(&data, 1).unwrap();
        let report = trainer.profile_report().expect("profile enabled");
        assert!(!report.layers.is_empty());
        assert!(report.total_ns() > 0);
        trainer.set_profile(false);
        assert!(trainer.profile_report().is_none());
    }

    #[test]
    fn augmented_training_still_learns() {
        let data = small_data(10);
        let mut hyper = quick_hyper();
        hyper.augment = Some(alf_data::Augment {
            hflip_prob: 0.5,
            max_shift: 1,
            noise: 0.02,
        });
        let model = plain20(4, 8).unwrap();
        let mut trainer = AlfTrainer::new(model, hyper, 11).unwrap();
        let report = trainer.run(&data, 10).unwrap();
        assert!(
            report.final_accuracy() > 0.35,
            "accuracy {} under augmentation",
            report.final_accuracy()
        );
    }

    #[test]
    fn report_csv_has_header_and_rows() {
        let report = TrainReport {
            model_name: "m".into(),
            epochs: vec![EpochStats {
                epoch: 0,
                train_loss: 1.0,
                train_accuracy: 0.3,
                test_accuracy: 0.5,
                remaining_filters: 0.9,
                mean_l_rec: 0.1,
            }],
        };
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("epoch,"));
        assert!(lines[1].starts_with("0,"));
        assert_eq!(lines[1].split(',').count(), 6);
    }

    #[test]
    fn report_helpers() {
        let report = TrainReport {
            model_name: "m".into(),
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 1.0,
                    train_accuracy: 0.3,
                    test_accuracy: 0.5,
                    remaining_filters: 1.0,
                    mean_l_rec: 0.1,
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 0.5,
                    train_accuracy: 0.6,
                    test_accuracy: 0.4,
                    remaining_filters: 0.7,
                    mean_l_rec: 0.05,
                },
            ],
        };
        assert_eq!(report.final_accuracy(), 0.4);
        assert_eq!(report.best_accuracy(), 0.5);
        assert_eq!(report.final_remaining_filters(), 0.7);
        let empty = TrainReport {
            model_name: "e".into(),
            epochs: vec![],
        };
        assert_eq!(empty.final_accuracy(), 0.0);
        assert_eq!(empty.final_remaining_filters(), 1.0);
    }
}
