//! Model checkpointing: save and restore the full persistent state of a
//! [`CnnModel`] — task parameters, batch-norm running statistics and the
//! ALF autoencoders (`Wenc`, `Wdec`, `M`) — as a compact binary blob.
//!
//! The format is `magic | u32 tensor count | per tensor (u32 rank,
//! u32 dims…, f32 data…)`, little-endian. Restoring validates that the
//! target model has exactly the same state structure, so loading a
//! checkpoint into a mismatched architecture fails loudly instead of
//! silently corrupting weights.

use alf_nn::layer::Layer;
use alf_tensor::{ShapeError, Tensor};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::model::CnnModel;
use crate::Result;

const MAGIC: &[u8; 8] = b"ALFCKPT1";

/// Serialises the model's persistent state.
///
/// Reads the model through the read-only state visitor
/// ([`Layer::visit_state_ref`]), so a model that is merely borrowed —
/// e.g. one being served by worker threads, snapshotted for a hot swap —
/// can be checkpointed without exclusive access.
///
/// # Example
///
/// ```
/// use alf_core::models::plain20;
/// use alf_core::checkpoint;
///
/// # fn main() -> alf_core::Result<()> {
/// let model = plain20(10, 4)?;
/// let blob = checkpoint::save(&model);
/// let mut clone = plain20(10, 4)?;
/// checkpoint::load(&mut clone, &blob)?;
/// # Ok(())
/// # }
/// ```
pub fn save(model: &CnnModel) -> Bytes {
    let mut count = 0u32;
    model.visit_state_ref(&mut |_| count += 1);
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(count);
    model.visit_state_ref(&mut |t: &Tensor| {
        buf.put_u32_le(t.dims().len() as u32);
        for &d in t.dims() {
            buf.put_u32_le(d as u32);
        }
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    });
    buf.freeze()
}

/// Restores a model's persistent state from a blob produced by [`save`].
///
/// # Errors
///
/// Returns an error when the blob is malformed, truncated, carries bytes
/// past the last tensor, or its tensor structure does not exactly match
/// the model's.
pub fn load(model: &mut CnnModel, blob: &[u8]) -> Result<()> {
    let mut bytes = Bytes::copy_from_slice(blob);
    let fail = |detail: String| ShapeError::new("checkpoint", detail);
    if bytes.remaining() < MAGIC.len() {
        return Err(fail("truncated header".into()));
    }
    let mut magic = [0u8; 8];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic".into()));
    }
    if bytes.remaining() < 4 {
        return Err(fail("truncated tensor count".into()));
    }
    let count = bytes.get_u32_le() as usize;
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        if bytes.remaining() < 4 {
            return Err(fail(format!("truncated rank of tensor {i}")));
        }
        let rank = bytes.get_u32_le() as usize;
        if bytes.remaining() < 4 * rank {
            return Err(fail(format!("truncated dims of tensor {i}")));
        }
        let dims: Vec<usize> = (0..rank).map(|_| bytes.get_u32_le() as usize).collect();
        let len: usize = dims.iter().product();
        if bytes.remaining() < 4 * len {
            return Err(fail(format!("truncated data of tensor {i}")));
        }
        let data: Vec<f32> = (0..len).map(|_| bytes.get_f32_le()).collect();
        tensors.push(Tensor::from_vec(data, &dims)?);
    }
    // A well-formed blob ends exactly at the last tensor; trailing bytes
    // mean the blob was produced by something else (or corrupted in a way
    // the per-tensor checks cannot see), so reject loudly.
    if bytes.remaining() > 0 {
        return Err(fail(format!(
            "{} trailing bytes after the last tensor",
            bytes.remaining()
        )));
    }
    // First pass: validate the structure without touching the model.
    let mut expected: Vec<Vec<usize>> = Vec::new();
    model.visit_state(&mut |t: &mut Tensor| expected.push(t.dims().to_vec()));
    if expected.len() != tensors.len() {
        return Err(fail(format!(
            "model has {} state tensors, checkpoint has {}",
            expected.len(),
            tensors.len()
        )));
    }
    for (i, (dims, t)) in expected.iter().zip(&tensors).enumerate() {
        if dims.as_slice() != t.dims() {
            return Err(fail(format!(
                "state tensor {i} shape mismatch: model {dims:?} vs checkpoint {:?}",
                t.dims()
            )));
        }
    }
    // Second pass: commit.
    let mut iter = tensors.into_iter();
    model.visit_state(&mut |t: &mut Tensor| {
        *t = iter.next().expect("validated count");
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::AlfBlockConfig;
    use crate::models::{plain20, plain20_alf, resnet20};
    use alf_nn::RunCtx;
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    fn probe_output(model: &mut CnnModel) -> Tensor {
        let x = Tensor::randn(&[2, 3, 12, 12], Init::Rand, &mut Rng::new(42));
        model.forward(&x, &mut RunCtx::eval()).expect("forward")
    }

    #[test]
    fn round_trip_restores_outputs_exactly() {
        let mut original = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 1).unwrap();
        let blob = save(&original);
        let before = probe_output(&mut original);
        // A freshly-initialised model with a different seed…
        let mut restored = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 999).unwrap();
        assert!(!probe_output(&mut restored).allclose(&before, 1e-6));
        // …becomes identical after loading the checkpoint.
        load(&mut restored, &blob).unwrap();
        assert_eq!(probe_output(&mut restored), before);
    }

    #[test]
    fn checkpoint_includes_autoencoder_state() {
        let mut a = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 2).unwrap();
        // Mutate one block's mask, checkpoint, restore into a fresh model.
        a.alf_blocks_mut()[0]
            .autoencoder_mut()
            .set_mask_value(0, 0.0);
        let blob = save(&a);
        let mut b = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 3).unwrap();
        load(&mut b, &blob).unwrap();
        assert_eq!(b.alf_blocks_mut()[0].autoencoder().mask().data()[0], 0.0);
        assert_eq!(b.filter_stats()[0].1, 3); // channel 0 clipped
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let small = plain20(4, 4).unwrap();
        let blob = save(&small);
        let mut wide = plain20(4, 8).unwrap();
        assert!(load(&mut wide, &blob).is_err());
        // Vanilla vs ALF differ in state structure too.
        let mut alf = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 4).unwrap();
        assert!(load(&mut alf, &blob).is_err());
        // Residual model has the same parameter multiset as plain but
        // batch-norm buffers line up, so this *does* load; architecture
        // sameness up to the state structure is the contract.
        let mut res = resnet20(4, 4).unwrap();
        assert!(load(&mut res, &blob).is_ok());
    }

    #[test]
    fn corrupted_blobs_are_rejected() {
        let mut model = plain20(4, 4).unwrap();
        let blob = save(&model);
        assert!(load(&mut model, b"garbage").is_err());
        assert!(load(&mut model, &blob[..blob.len() / 2]).is_err());
        let mut bad_magic = blob.to_vec();
        bad_magic[0] = b'X';
        assert!(load(&mut model, &bad_magic).is_err());
    }

    #[test]
    fn failed_load_leaves_model_untouched() {
        let mut model = plain20(4, 4).unwrap();
        let before = probe_output(&mut model);
        let other = plain20(4, 8).unwrap();
        let blob = save(&other);
        assert!(load(&mut model, &blob).is_err());
        assert_eq!(probe_output(&mut model), before);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut model = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 5).unwrap();
        let blob = save(&model);
        // A structurally-valid blob followed by garbage must not load,
        // for any amount of garbage (1 byte up to a whole extra tensor).
        for extra in [1usize, 3, 4, 64] {
            let mut padded = blob.to_vec();
            padded.resize(padded.len() + extra, 0xAB);
            let err = load(&mut model, &padded).unwrap_err();
            assert!(
                err.to_string().contains("trailing bytes"),
                "unexpected error for {extra} extra bytes: {err}"
            );
        }
        // The untouched blob still loads.
        assert!(load(&mut model, &blob).is_ok());
    }

    #[test]
    fn read_only_save_agrees_with_mut_visitor() {
        // `save` reads through `visit_state_ref`; the load path walks
        // `visit_state`. The two visitor orders are contractually
        // identical — compare them tensor by tensor over a model that
        // exercises every unit kind with state (conv, ALF block, BN,
        // residual, classifier).
        let mut model = resnet20(4, 4).unwrap();
        let mut via_mut: Vec<(Vec<usize>, Vec<f32>)> = Vec::new();
        model.visit_state(&mut |t: &mut Tensor| {
            via_mut.push((t.dims().to_vec(), t.data().to_vec()));
        });
        let mut via_ref: Vec<(Vec<usize>, Vec<f32>)> = Vec::new();
        model.visit_state_ref(&mut |t: &Tensor| {
            via_ref.push((t.dims().to_vec(), t.data().to_vec()));
        });
        assert_eq!(via_mut, via_ref);
        // Same for the parameter visitors (order and identity).
        let mut params_mut = Vec::new();
        model.visit_params(&mut |p| params_mut.push(p.value.data().to_vec()));
        let mut params_ref = Vec::new();
        model.visit_params_ref(&mut |p| params_ref.push(p.value.data().to_vec()));
        assert_eq!(params_mut, params_ref);
    }
}
